//! Integration test: the fixed-point conditioning chain tracking a
//! *drifting* electrical carrier — the pure-DSP equivalent of a temperature
//! ramp moving the ring's resonance while the platform operates.

use ascp::core::chain::{ChainConfig, ConditioningChain};
use ascp::dsp::fixed::Q15;

/// Drives the chain with a synthetic primary (0.8 FS, swept frequency) and
/// a secondary carrying −0.2·cos rate AM; checks the PLL follows the sweep
/// and the rate output stays put.
#[test]
fn chain_tracks_swept_carrier() {
    let fs = 250_000.0;
    let mut chain = ConditioningChain::new(ChainConfig::default());
    let mut phase = 0.0f64;
    let mut rates = Vec::new();
    let total = (2.0 * fs) as usize;
    for k in 0..total {
        // Sweep 15.00 kHz -> 14.95 kHz over 2 s (a −40 °C-style drift).
        let f = 15_000.0 - 50.0 * k as f64 / total as f64;
        phase += 2.0 * std::f64::consts::PI * f / fs;
        let primary = Q15::from_f64(0.8 * phase.sin());
        let secondary = Q15::from_f64(-0.2 * phase.cos());
        chain.process(primary, secondary);
        if k > total / 2 && k % 2500 == 0 {
            rates.push(chain.rate_out().to_f64());
        }
    }
    assert!(chain.is_locked(), "lost lock during sweep");
    assert!(
        (chain.frequency() - 14_950.0).abs() < 10.0,
        "PLL at {} Hz after sweep",
        chain.frequency()
    );
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    assert!(
        (mean - 0.2).abs() < 0.02,
        "rate output drifted during sweep: {mean}"
    );
}

/// Amplitude steps on the primary (AGC disturbances) must not leak into the
/// rate output: the CORDIC envelope detector and PLL normalize them away.
#[test]
fn primary_amplitude_steps_do_not_leak_into_rate() {
    let fs = 250_000.0;
    let mut chain = ConditioningChain::new(ChainConfig::default());
    let w = 2.0 * std::f64::consts::PI * 15_000.0 / fs;
    let mut rate_readings = Vec::new();
    for k in 0..(1.5 * fs) as usize {
        let t = k as f64;
        // Primary amplitude steps between 0.7 and 0.9 every 0.25 s.
        let seg = (t / (0.25 * fs)) as usize;
        let amp = if seg.is_multiple_of(2) { 0.7 } else { 0.9 };
        let primary = Q15::from_f64(amp * (w * t).sin());
        let secondary = Q15::from_f64(-0.15 * (w * t).cos());
        chain.process(primary, secondary);
        if k > (0.5 * fs) as usize && k % 5000 == 0 {
            rate_readings.push(chain.rate_out().to_f64());
        }
    }
    let mean = rate_readings.iter().sum::<f64>() / rate_readings.len() as f64;
    let worst = rate_readings
        .iter()
        .fold(0.0f64, |m, v| m.max((v - mean).abs()));
    assert!((mean - 0.15).abs() < 0.02, "rate mean {mean}");
    assert!(worst < 0.03, "amplitude steps leaked into rate: ±{worst}");
}

/// Saturating inputs (overrange shock) must not wedge the chain: it
/// re-locks and reports sane rate after the overload clears.
#[test]
fn chain_recovers_from_input_overload() {
    let fs = 250_000.0;
    let mut chain = ConditioningChain::new(ChainConfig::default());
    let w = 2.0 * std::f64::consts::PI * 15_000.0 / fs;
    // Lock normally.
    for k in 0..(0.6 * fs) as usize {
        let t = k as f64;
        chain.process(
            Q15::from_f64(0.8 * (w * t).sin()),
            Q15::from_f64(-0.1 * (w * t).cos()),
        );
    }
    assert!(chain.is_locked());
    // 100 ms of rail-to-rail garbage (mechanical shock).
    for k in 0..(0.1 * fs) as usize {
        let v = if k % 3 == 0 { Q15::MAX } else { Q15::MIN };
        chain.process(v, v);
    }
    // Recovery.
    let mut last = 0.0;
    for k in 0..(1.0 * fs) as usize {
        let t = k as f64;
        chain.process(
            Q15::from_f64(0.8 * (w * t).sin()),
            Q15::from_f64(-0.1 * (w * t).cos()),
        );
        last = chain.rate_out().to_f64();
    }
    assert!(chain.is_locked(), "did not re-lock after overload");
    assert!((last - 0.1).abs() < 0.03, "rate after recovery: {last}");
}
