//! Cross-crate integration tests: the full platform exercised end to end
//! through the facade crate, the way a downstream user would.

use ascp::core::calibrate::{calibrate, install, CalibrationConfig};
use ascp::core::chain::SenseMode;
use ascp::core::characterize::{characterize, CharacterizationConfig};
use ascp::core::platform::{taps, Platform, PlatformConfig, PlatformVariant};
use ascp::core::registers::{AfeRegsJtag, DspReg, DspRegsJtag};
use ascp::jtag::device::{instructions, RegAccessDevice};
use ascp::sim::stats;
use ascp::sim::units::{Celsius, DegPerSec};

fn quiet() -> PlatformConfig {
    PlatformConfig::builder().quiet().build().expect("valid")
}

#[test]
fn end_to_end_rate_measurement_with_cpu_and_jtag() {
    let cfg = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");

    // Apply a rate; read it three ways: analog output, CPU UART frame,
    // JTAG register — all must agree.
    p.set_rate(DegPerSec(200.0));
    p.run(0.4);
    p.cpu_mut().uart_take_tx();
    let analog = stats::mean(&p.sample_rate_output(0.1, 200));

    // CPU view (UART frame rate register, FS ±500 °/s).
    p.run(0.02);
    let tx = p.cpu_mut().uart_take_tx();
    let pos = tx
        .iter()
        .position(|&b| b == ascp::core::firmware::FRAME_HEADER)
        .expect("frame");
    let cpu_rate_raw = i16::from_le_bytes([tx[pos + 2], tx[pos + 3]]);
    let cpu_rate = f64::from(cpu_rate_raw) / 32768.0 * 500.0;

    // JTAG view of the same register.
    let jtag = p.jtag_mut();
    jtag.select(taps::DSP, instructions::REG_ACCESS)
        .expect("select");
    jtag.scan_dr(
        taps::DSP,
        RegAccessDevice::<DspRegsJtag>::pack_read(DspReg::RateOut.addr()),
    )
    .expect("request");
    let dr = jtag.scan_dr(taps::DSP, 0).expect("data");
    let jtag_rate =
        f64::from(RegAccessDevice::<DspRegsJtag>::unpack_data(dr) as i16) / 32768.0 * 500.0;

    assert!((analog.abs() - 200.0).abs() < 20.0, "analog {analog}");
    assert!(
        (cpu_rate - analog).abs() < 15.0,
        "cpu {cpu_rate} vs {analog}"
    );
    assert!(
        (jtag_rate - analog).abs() < 15.0,
        "jtag {jtag_rate} vs {analog}"
    );
}

#[test]
fn full_characterization_matches_paper_shape() {
    // Realistic mechanical noise: below ~0.01 °/s/√Hz the 12-bit rate DAC
    // quantizes the zero-rate output to a constant and the PSD reads zero.
    let cfg = PlatformConfig::builder()
        .quiet()
        .noise_density(0.05)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    let cal = calibrate(&mut p, &CalibrationConfig::fast());
    install(&mut p, &cal);
    let mut cfg = CharacterizationConfig::fast();
    cfg.rate_points = vec![-300.0, -100.0, 0.0, 100.0, 300.0];
    let ds = characterize(&mut p, &cfg);

    let sens = ds.sensitivity_initial.expect("sens").typ.abs();
    assert!((sens - 5.0).abs() < 0.5, "sensitivity {sens} mV/°/s");
    let null = ds.null_initial.expect("null").typ;
    assert!((null - 2.5).abs() < 0.1, "null {null} V");
    let noise = ds.noise_density.expect("noise").typ;
    assert!(noise > 0.01 && noise < 0.2, "noise {noise} °/s/√Hz");
    let ton = ds.turn_on_time_ms.expect("turn-on");
    assert!(ton > 30.0 && ton < 1000.0, "turn-on {ton} ms");
}

#[test]
fn prototype_variant_boots_over_uart_and_runs_monitor() {
    let cfg = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .variant(PlatformVariant::Prototype)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    // Download the monitor firmware via the boot loader.
    let app = ascp::core::firmware::monitor_image().expect("assembles");
    // Relocate: the boot loader jumps to 0x1000; build a trampoline image
    // whose reset vector logic lives there. Simplest: download a program
    // that sets P1 = 0x42 so we can observe execution.
    let payload =
        ascp::mcu8051::asm::assemble("org 0x1000\nmov p1, #0x42\nspin: sjmp spin\n").unwrap();
    let body = &payload[0x1000..];
    let _ = app;
    p.cpu_mut().uart_inject_rx(body.len() as u8);
    p.cpu_mut().uart_inject_rx((body.len() >> 8) as u8);
    for &b in body {
        p.cpu_mut().uart_inject_rx(b);
    }
    p.run(0.2);
    assert_eq!(p.cpu_mut().sfr(0x90), 0x42, "downloaded code did not run");
    // The DSP chain locked meanwhile, CPU or not.
    assert!(p.wait_for_ready(2.0).is_some());
}

#[test]
fn closed_loop_holds_rate_accuracy_after_trim() {
    let cfg = PlatformConfig::builder()
        .quiet()
        .loop_mode(SenseMode::ClosedLoop)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    p.run(0.5);
    ascp::core::calibrate::trim_rebalance_phase(&mut p, 200.0, 2);
    p.set_rate(DegPerSec(150.0));
    p.run(0.6);
    let out = stats::mean(&p.sample_rate_output(0.1, 500));
    assert!(
        (out.abs() - 150.0).abs() < 25.0,
        "closed-loop read {out} for 150 °/s"
    );
}

#[test]
fn temperature_step_keeps_lock_and_output() {
    let mut p = Platform::new(quiet());
    p.wait_for_ready(2.0).expect("lock");
    p.set_rate(DegPerSec(100.0));
    for t in [-40.0, 85.0, 25.0] {
        p.set_temperature(Celsius(t));
        p.run(0.4);
        assert!(p.chain().is_locked(), "lost lock at {t} °C");
        let out = stats::mean(&p.sample_rate_output(0.1, 200));
        assert!((out.abs() - 100.0).abs() < 25.0, "output {out} at {t} °C");
    }
}

#[test]
fn jtag_full_readback_over_both_taps() {
    let mut p = Platform::new(quiet());
    let jtag = p.jtag_mut();
    // IDCODEs identify both banks.
    let ids = jtag.read_idcodes().expect("idcodes");
    assert_eq!(ids.len(), 2);
    assert_ne!(ids[0], ids[1]);
    // Write/read-back every writable AFE register.
    jtag.select(taps::AFE, instructions::REG_ACCESS)
        .expect("select");
    for (addr, value) in [(0x00u8, 3u16), (0x01, 6), (0x02, 14), (0x03, 250)] {
        jtag.scan_dr(
            taps::AFE,
            RegAccessDevice::<AfeRegsJtag>::pack_write(addr, value),
        )
        .expect("write");
        jtag.scan_dr(taps::AFE, RegAccessDevice::<AfeRegsJtag>::pack_read(addr))
            .expect("request");
        let dr = jtag.scan_dr(taps::AFE, 0).expect("data");
        assert_eq!(
            RegAccessDevice::<AfeRegsJtag>::unpack_data(dr),
            value,
            "read-back mismatch at {addr:#x}"
        );
    }
}

#[test]
fn watchdog_recovers_a_hung_monitor() {
    // Firmware that kicks once, then hangs forever.
    let cfg = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .firmware(
            ascp::mcu8051::asm::assemble(
                "
            mov 0xa1, #0x11     ; watchdog reload register
            mov 0xa2, #0x10     ; 4096+ ticks
            mov 0xa3, #0x00
            mov 0xa4, #2
            mov 0xa1, #0x10     ; enable
            mov 0xa2, #1
            mov 0xa4, #2
            hang: sjmp hang
        ",
            )
            .expect("assembles"),
        )
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    p.run(0.2);
    assert!(p.watchdog_resets() > 0, "watchdog never fired");
}

#[test]
fn sram_captures_rate_stream_for_readback() {
    let mut p = Platform::new(quiet());
    p.wait_for_ready(2.0).expect("lock");
    p.set_rate(DegPerSec(120.0));
    p.run(0.3);
    // Host-side (prototype GUI) arms the capture through the bus.
    {
        use ascp::mcu8051::periph::Bus16Device;
        p.bus_mut().sram.write16(0, 0b11); // enable + reset pointer
    }
    p.run(0.1);
    let samples = p.bus_mut().sram.samples().to_vec();
    assert!(samples.len() > 1000, "captured only {}", samples.len());
    // Decode the captured Q15 stream back to °/s and compare to the output.
    let decoded: Vec<f64> = samples
        .iter()
        .map(|&s| f64::from(s as i16) / 32768.0 * 500.0)
        .collect();
    let mean = stats::mean(&decoded[decoded.len() / 2..]);
    assert!((mean.abs() - 120.0).abs() < 20.0, "captured mean {mean}");
}

#[test]
fn channel_autodetect_boots_platform_firmware() {
    let cfg = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .firmware(ascp::core::firmware::autodetect_boot_image().expect("assembles"))
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    // Feed the monitor-sized payload marker over the UART.
    let payload =
        ascp::mcu8051::asm::assemble("org 0x1000\norl p1, #0x01\nspin: sjmp spin\n").unwrap();
    let body = &payload[0x1000..];
    p.cpu_mut().uart_inject_rx(body.len() as u8);
    p.cpu_mut().uart_inject_rx((body.len() >> 8) as u8);
    for &b in body {
        p.cpu_mut().uart_inject_rx(b);
    }
    p.run(0.4);
    let p1 = p.cpu_mut().sfr(0x90);
    assert_eq!(p1 & 0x30, 0x10, "UART channel flag: {p1:#04x}");
    assert_eq!(p1 & 0x01, 0x01, "payload marker: {p1:#04x}");
}

#[test]
fn default_run_populates_telemetry() {
    // The default platform (telemetry enabled out of the box) must yield a
    // meaningful snapshot after an ordinary lock + measure session: stage
    // timing, a metric set spanning every subsystem, and the lock event.
    let cfg = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    p.set_rate(DegPerSec(100.0));
    p.run(0.3);
    let snap = p.telemetry_snapshot();

    // Lock accounting: the PLL locked at least once, and the event log saw it.
    assert!(snap.counter("pll.lock_transitions") >= 1, "{snap}");
    assert!(snap.count_events("PllLocked") >= 1, "{snap}");
    // The streaming UART must not flood the ring (edge-triggered events);
    // a flood here would evict the lock event on longer runs.
    assert!(snap.count_events("UartTx") <= 8, "{snap}");

    // Profiling: the sampled spans accumulated real wall time per stage.
    for stage in [
        "analog_ode",
        "acquisition",
        "dsp_chain",
        "dac_update",
        "cpu",
    ] {
        let row = snap
            .stages
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert!(row.samples > 0, "stage {stage} never sampled");
        assert!(row.seconds > 0.0, "stage {stage} has zero time");
    }

    // Breadth: metrics from AFE, DSP, CPU and JTAG all present.
    for name in [
        "sim.ticks",
        "adc.conversions",
        "dac.updates",
        "pll.lock_transitions",
        "chain.saturation_events",
        "cpu.instructions",
        "spi.transfers",
        "jtag.tck_cycles",
    ] {
        assert!(
            snap.counters.iter().any(|(n, _)| *n == name),
            "missing metric {name}"
        );
    }
    assert!(snap.counter("sim.ticks") > 0);
    assert!(snap.counter("adc.conversions") > 0);
    assert!(snap.counter("cpu.instructions") > 0);
    assert!(snap.gauge("pll.frequency_hz").is_some());
}

#[test]
fn telemetry_exports_parse_and_disabled_is_silent() {
    let mut p = Platform::new(quiet());
    p.wait_for_ready(2.0).expect("lock");
    let snap = p.telemetry_snapshot();

    // Prometheus exposition: every non-comment line is `name{labels} value`.
    let prom = snap.to_prometheus();
    let mut metric_lines = 0;
    for line in prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name_part, value_part) = line.rsplit_once(' ').expect("name value split");
        let bare = name_part.split('{').next().unwrap();
        assert!(
            !bare.is_empty()
                && bare
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        assert!(value_part.parse::<f64>().is_ok(), "bad value in {line:?}");
        metric_lines += 1;
    }
    assert!(metric_lines >= 8, "only {metric_lines} prometheus lines");

    // JSON export mentions the same counters.
    let json = snap.to_json();
    assert!(json.contains("\"sim.ticks\""), "{json}");
    assert!(json.contains("\"events\""), "{json}");

    // A disabled collector records nothing for the same scenario.
    let cfg = PlatformConfig::builder()
        .quiet()
        .telemetry(ascp::sim::telemetry::TelemetryConfig::disabled())
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    let snap = p.telemetry_snapshot();
    assert!(snap.counters.is_empty(), "{snap}");
    assert!(snap.events.is_empty());
    assert!(snap.stages.is_empty());
}
