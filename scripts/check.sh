#!/usr/bin/env sh
# Repository gate: formatting, lints, build, tests. Everything runs offline
# (no registry access — the only external crate, proptest, is vendored as a
# shim under vendor/ behind an off-by-default feature).
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fault campaign (smoke: every fault class must be detected) =="
cargo run --release -q -p ascp-bench --bin fault_campaign -- --smoke --threads 4

echo "== kernel benches (short mode: build + run smoke, perf guard) =="
# --short shrinks the measurement protocol ~10x; --check compares the
# committed baseline and fails only on a >50% min-ns regression (the
# guard is deliberately noise-tolerant — see ascp_bench::harness).
cargo bench -p ascp-bench --bench platform_sim -- --short --check BENCH_platform_sim.json
cargo bench -p ascp-bench --bench dsp_blocks -- --short

echo "All checks passed."
