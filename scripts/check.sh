#!/usr/bin/env sh
# Repository gate: formatting, lints, build, tests. Everything runs offline
# (no registry access — the only external crate, proptest, is vendored as a
# shim under vendor/ behind an off-by-default feature).
#
# Usage: scripts/check.sh [--docs]
#   --docs   additionally build the API docs with rustdoc warnings denied
#            (the same gate CI runs; catches broken intra-doc links).
set -eu

cd "$(dirname "$0")/.."

RUN_DOCS=0
for arg in "$@"; do
    case "$arg" in
    --docs) RUN_DOCS=1 ;;
    *)
        echo "unknown flag: $arg (supported: --docs)" >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fault campaign (smoke: detection + coverage vs committed baseline) =="
# Emits the Chrome trace, flight-recorder captures and the coverage matrix
# under target/experiments/; fails if any fault class goes undetected OR
# if a (fault class x supervisor transition) cell exercised by the
# committed COVERAGE_fault_campaign.csv baseline goes dark.
cargo run --release -q -p ascp-bench --bin fault_campaign -- --smoke --threads 4 \
    --check-coverage COVERAGE_fault_campaign.csv

echo "== kernel benches (short mode: build + run smoke, perf guard) =="
# --short shrinks the measurement protocol ~10x; --check compares the
# committed baseline and fails only on a >50% min-ns regression (the
# guard is deliberately noise-tolerant — see ascp_bench::harness).
cargo bench -p ascp-bench --bench platform_sim -- --short --check BENCH_platform_sim.json
cargo bench -p ascp-bench --bench dsp_blocks -- --short
cargo bench -p ascp-bench --bench campaign_warmstart -- --short

if [ "$RUN_DOCS" = 1 ]; then
    echo "== cargo doc (rustdoc warnings are errors) =="
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
fi

echo "All checks passed."
