#!/usr/bin/env sh
# Repository gate: formatting, lints, build, tests. Everything runs offline
# (no registry access — the only external crate, proptest, is vendored as a
# shim under vendor/ behind an off-by-default feature).
#
# Usage: scripts/check.sh [--docs]
#   --docs   additionally build the API docs with rustdoc warnings denied
#            (the same gate CI runs; catches broken intra-doc links).
set -eu

cd "$(dirname "$0")/.."

RUN_DOCS=0
for arg in "$@"; do
    case "$arg" in
    --docs) RUN_DOCS=1 ;;
    *)
        echo "unknown flag: $arg (supported: --docs)" >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fault campaign (smoke: detection + coverage vs committed baseline) =="
# Emits the Chrome trace, flight-recorder captures and the coverage matrix
# under target/experiments/; fails if any fault class goes undetected OR
# if a (fault class x supervisor transition) cell exercised by the
# committed COVERAGE_fault_campaign.csv baseline goes dark.
cargo run --release -q -p ascp-bench --bin fault_campaign -- --smoke --threads 4 \
    --check-coverage COVERAGE_fault_campaign.csv
cp target/experiments/fault_campaign.csv target/experiments/fault_campaign.reference.csv

echo "== sensor datasheet (smoke: three sensor families + wire-fault coverage) =="
# One campaign sweeps the gyro, the MAP/IAT pressure/temperature pair and
# the capacitive accelerometer through the shared conditioning portfolio;
# fails if a sensor family fails to characterize, a scheduled wire fault
# (not_connected / short_to_ground / reverse_polarity) goes undetected, or
# a cell of the committed COVERAGE_sensor_datasheet.csv baseline goes dark.
cargo run --release -q -p ascp-bench --bin sensor_datasheet -- --smoke --threads 4 \
    --check-coverage COVERAGE_sensor_datasheet.csv

echo "== chaos campaign (seeded worker panics + stalls; retry must make it invisible) =="
# The supervision layer's chaos mode injects worker panics and stalls;
# every scenario must recover on its deterministic retry, so the CSV is
# byte-identical to the undisturbed smoke run above.
cargo run --release -q -p ascp-bench --bin fault_campaign -- --chaos --smoke --threads 4
cmp target/experiments/fault_campaign.csv target/experiments/fault_campaign.reference.csv \
    || { echo "chaos campaign CSV differs from the undisturbed run" >&2; exit 1; }

echo "== exit-code taxonomy (0 ok, 1 scenario failures, 2 infra errors) =="
# An unwritable journal path is an infrastructure error: exit 2, no sweep.
set +e
target/release/fault_campaign --smoke --journal /nonexistent/dir/fc.journal >/dev/null 2>&1
infra_code=$?
set -e
[ "$infra_code" -eq 2 ] \
    || { echo "expected exit 2 for journal infra error, got $infra_code" >&2; exit 1; }

echo "== kill -9 + resume (crash-recoverable journal) =="
# SIGKILL the campaign mid-run, then re-run the same command line: the
# journal resumes the completed scenarios and the merged CSV must be
# byte-identical to the undisturbed run. The binary is exec'd directly so
# the kill hits the campaign process, not a cargo wrapper.
JOURNAL=target/experiments/kill_resume.journal
rm -f "$JOURNAL"
target/release/fault_campaign --smoke --threads 4 --journal "$JOURNAL" >/dev/null 2>&1 &
campaign_pid=$!
sleep 2
kill -9 "$campaign_pid" 2>/dev/null || true
wait "$campaign_pid" 2>/dev/null || true
target/release/fault_campaign --smoke --threads 4 --journal "$JOURNAL"
cmp target/experiments/fault_campaign.csv target/experiments/fault_campaign.reference.csv \
    || { echo "resumed campaign CSV differs from the undisturbed run" >&2; exit 1; }
rm -f "$JOURNAL"

echo "== kernel benches (short mode: build + run smoke, perf guard) =="
# --short shrinks the measurement protocol ~10x; --check compares the
# committed baseline and fails only on a >50% min-ns regression (the
# guard is deliberately noise-tolerant — see ascp_bench::harness).
# platform_sim covers the 8051 ISS translation-cache entries
# (mcu8051/instruction_step, _uncached, block_replay) so an ISS perf
# regression fails this gate.
cargo bench -p ascp-bench --bench platform_sim -- --short --check BENCH_platform_sim.json
cargo bench -p ascp-bench --bench dsp_blocks -- --short
cargo bench -p ascp-bench --bench campaign_warmstart -- --short
cargo bench -p ascp-bench --bench campaign_supervised -- --short
cargo bench -p ascp-bench --bench campaign_montecarlo -- --short

if [ "$RUN_DOCS" = 1 ]; then
    echo "== cargo doc (rustdoc warnings are errors) =="
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
fi

echo "All checks passed."
