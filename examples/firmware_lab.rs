//! Firmware development lab: the paper's software-download stories.
//!
//! §4.2: the 'prototype' variant boots from a small ROM and downloads
//! application code over the UART; images can also be stored in an SPI
//! EEPROM to "reboot directly from EEPROM instead of downloading each time
//! after reset"; and the SRAM controller captures real-time DSP data "with
//! chance of later read-back for analysis purposes".
//!
//! ```sh
//! cargo run --release --example firmware_lab
//! ```

use ascp::core::firmware;
use ascp::mcu8051::asm::assemble;
use ascp::mcu8051::cpu::Cpu;
use ascp::mcu8051::periph::{Bus16Device, SpiEeprom, SystemBus};

/// A tiny application: count loop iterations into R7 and blink P1.
const APP: &str = "
        org 0x1000
        mov a, #0
blink:  cpl p1.7
        inc r7
        mov r6, #50
wait:   djnz r6, wait
        sjmp blink
";

fn run_until<F: Fn(&Cpu) -> bool>(cpu: &mut Cpu, bus: &mut SystemBus, max: u64, done: F) -> bool {
    for _ in 0..max {
        cpu.step(bus);
        for (addr, byte) in bus.cache.take_writes() {
            cpu.code_write(addr, byte);
        }
        if done(cpu) {
            return true;
        }
    }
    false
}

fn main() {
    let app = assemble(APP).expect("application assembles");
    let body = &app[0x1000..];
    println!("application: {} bytes at 0x1000", body.len());

    // --- 1. UART download boot (prototype variant) ---
    println!("\n[1] UART download boot");
    let mut cpu = Cpu::new();
    cpu.load_code(&firmware::uart_boot_image().expect("boot ROM"));
    let mut bus = SystemBus::new();
    cpu.uart_inject_rx(body.len() as u8);
    cpu.uart_inject_rx((body.len() >> 8) as u8);
    for &b in body {
        cpu.uart_inject_rx(b);
    }
    let ok = run_until(&mut cpu, &mut bus, 500_000, |c| c.iram(7) > 3);
    println!(
        "  downloaded {} bytes, app running: {ok} (R7 = {})",
        bus.cache.total_written(),
        cpu.iram(7)
    );

    // --- 2. EEPROM boot ---
    println!("\n[2] SPI EEPROM boot");
    let mut image = vec![body.len() as u8, (body.len() >> 8) as u8];
    image.extend_from_slice(body);
    let mut rom = SpiEeprom::new(8192);
    rom.load(&image);
    let mut cpu = Cpu::new();
    cpu.load_code(&firmware::eeprom_boot_image().expect("boot ROM"));
    let mut bus = SystemBus::new();
    bus.spi.attach(Box::new(rom));
    let ok = run_until(&mut cpu, &mut bus, 500_000, |c| c.iram(7) > 3);
    println!(
        "  booted from EEPROM over {} SPI transfers, app running: {ok}",
        bus.spi.transfers()
    );

    // --- 3. SRAM capture + CPU read-back ---
    println!("\n[3] real-time SRAM capture and read-back");
    let mut bus = SystemBus::new();
    // Hardware side: capture a ramp as the DSP would stream it.
    bus.sram.write16(0, 0b11); // enable + reset pointer
    for k in 0..500u16 {
        bus.sram.capture(k.wrapping_mul(3));
    }
    // Firmware side: read sample 123 through the bridge.
    let reader = assemble(
        "
BR_ADDR EQU 0xa1
BR_DLO  EQU 0xa2
BR_DHI  EQU 0xa3
BR_CTRL EQU 0xa4
        ; SRAM controller: reg 2 = read addr, reg 3 = read data (base 0x20)
        mov BR_ADDR, #0x22
        mov BR_DLO, #123
        mov BR_DHI, #0
        mov BR_CTRL, #2
        mov BR_ADDR, #0x23
        mov BR_CTRL, #1
        mov a, BR_DLO
        mov r0, a
        mov a, BR_DHI
        mov r1, a
        done: sjmp done
",
    )
    .expect("reader assembles");
    let mut cpu = Cpu::new();
    cpu.load_code(&reader);
    // Run to the final spin loop (fixed budget: the read sequence is short).
    run_until(&mut cpu, &mut bus, 10_000, |c| {
        c.pc() >= reader.len() as u16 - 2
    });
    let value = u16::from_le_bytes([cpu.iram(0), cpu.iram(1)]);
    println!(
        "  captured {} samples; firmware read sample[123] = {value} (expected {})",
        bus.sram.count(),
        123 * 3
    );

    // --- 4. watchdog demonstration ---
    println!("\n[4] watchdog supervision");
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble("dead: sjmp dead\n").expect("assembles"));
    let mut bus = SystemBus::new();
    bus.watchdog.write16(1, 10_000);
    bus.watchdog.write16(0, 1);
    let mut resets = 0u32;
    for _ in 0..100_000u32 {
        let c = cpu.step(&mut bus);
        if bus.watchdog.tick(c) {
            cpu.reset();
            cpu.load_code(&firmware::monitor_image().expect("monitor"));
            resets += 1;
        }
    }
    println!(
        "  hung firmware was reset {resets} time(s); monitor now kicks the dog: {}",
        !bus.watchdog.expired() || resets > 0
    );
}
