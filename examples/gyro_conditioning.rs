//! The full gyro case study (paper §4): lock waveforms, JTAG trimming,
//! temperature calibration, and the open-loop vs closed-loop comparison.
//!
//! ```sh
//! cargo run --release --example gyro_conditioning
//! ```
//!
//! Writes the lock waveforms (the Fig. 6 "measured" traces) to
//! `target/experiments/gyro_conditioning_lock.csv`.

use ascp::core::calibrate::{calibrate, install, trim_rebalance_phase, CalibrationConfig};
use ascp::core::platform::taps;
use ascp::core::prelude::*;
use ascp::core::registers::AfeRegsJtag;
use ascp::jtag::device::{instructions, RegAccessDevice};
use ascp::sim::stats;
use ascp::sim::units::{Celsius, DegPerSec};

fn measure_linearity(platform: &mut Platform, label: &str) -> f64 {
    let rates = [-300.0, -200.0, -100.0, 0.0, 100.0, 200.0, 300.0];
    let mut outs = Vec::new();
    for &r in &rates {
        platform.set_rate(DegPerSec(r));
        outs.push(stats::mean(&platform.sample_rate_output(0.3, 300)));
    }
    platform.set_rate(DegPerSec(0.0));
    let fit = stats::linear_fit(&rates, &outs);
    let nonlin = fit.max_residual / (fit.slope.abs() * 300.0) * 100.0;
    println!(
        "  {label:<12} sensitivity {:.3} (out °/s per applied °/s), nonlinearity {:.3} % FS",
        fit.slope, nonlin
    );
    nonlin
}

fn main() {
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false) // the monitor is shown in `quickstart`
        .build()
        .expect("valid config");
    let mut platform = Platform::new(cfg);

    // --- 1. power-on: record the measured PLL/AGC waveforms (Fig. 6) ---
    println!("recording lock transient ...");
    let traces = platform.run_traces(1.2, 8);
    traces
        .save_csv("target/experiments/gyro_conditioning_lock.csv")
        .expect("write CSV");
    println!(
        "  locked: {}  (f = {:.1} Hz), traces -> target/experiments/gyro_conditioning_lock.csv",
        platform.chain().is_locked(),
        platform.chain().frequency()
    );

    // --- 2. JTAG trimming: drop the secondary PGA one step and read back ---
    println!("JTAG: trimming secondary PGA gain ×512 -> ×256 and reading back ...");
    let jtag = platform.jtag_mut();
    jtag.select(taps::AFE, instructions::REG_ACCESS)
        .expect("select AFE tap");
    jtag.scan_dr(
        taps::AFE,
        RegAccessDevice::<AfeRegsJtag>::pack_write(0x01, 8),
    )
    .expect("write gain code");
    jtag.scan_dr(taps::AFE, RegAccessDevice::<AfeRegsJtag>::pack_read(0x01))
        .expect("request read-back");
    let dr = jtag.scan_dr(taps::AFE, 0).expect("read data");
    println!(
        "  read-back gain code = {} (full read-back over 4 wires)",
        RegAccessDevice::<AfeRegsJtag>::unpack_data(dr)
    );
    // Restore ×512 (the dimensioned value) the same way.
    let jtag = platform.jtag_mut();
    jtag.scan_dr(
        taps::AFE,
        RegAccessDevice::<AfeRegsJtag>::pack_write(0x01, 9),
    )
    .expect("restore gain code");
    platform.run(0.01);

    // --- 3. temperature behaviour, before and after calibration ---
    println!("null drift across -40/25/85 °C, uncalibrated:");
    let mut raw = Vec::new();
    for t in [-40.0, 25.0, 85.0] {
        platform.set_temperature(Celsius(t));
        platform.run(0.3);
        let null = stats::mean(&platform.sample_rate_output(0.2, 200));
        println!("  {t:>6.1} °C : null = {null:+.3} °/s");
        raw.push(null);
    }
    platform.set_temperature(Celsius(25.0));
    platform.run(0.3);

    println!("running final-test calibration (climate-chamber sweep) ...");
    let cal = calibrate(&mut platform, &CalibrationConfig::default());
    install(&mut platform, &cal);

    println!("null drift, calibrated:");
    for t in [-40.0, 25.0, 85.0] {
        platform.set_temperature(Celsius(t));
        platform.run(0.3);
        let null = stats::mean(&platform.sample_rate_output(0.2, 200));
        println!("  {t:>6.1} °C : null = {null:+.3} °/s");
    }
    platform.set_temperature(Celsius(25.0));
    platform.run(0.3);

    // --- 4. open loop vs closed loop (the paper's §4.1 motivation) ---
    println!("linearity, open loop vs force rebalance:");
    let nl_open = measure_linearity(&mut platform, "open loop");
    platform.chain_mut().set_mode(SenseMode::ClosedLoop);
    platform.run(0.5);
    // Production trim: align the rebalance axes (paper's on-line trimming).
    let theta = trim_rebalance_phase(&mut platform, 200.0, 2);
    println!("  (rebalance axis trimmed to {:.1}°)", theta.to_degrees());
    let nl_closed = measure_linearity(&mut platform, "closed loop");
    println!(
        "  ratio open/closed = {:.1}x — comparable on this electrode quality;",
        nl_open / nl_closed.max(1e-6)
    );
    println!("  see `ablation_loop_mode` for the sweep where force rebalance pulls ahead");
}
