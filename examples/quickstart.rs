//! Quickstart: power on the platform, wait for lock, measure a rate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ascp::core::prelude::*;
use ascp::sim::stats;
use ascp::sim::units::DegPerSec;

fn main() {
    // The platform as the paper's case study configures it: 15 kHz ring
    // gyro, 12-bit SAR ADCs, ×512 secondary PGA, open-loop sense path,
    // 8051 monitor running the built-in firmware.
    let cfg = PlatformConfig::builder().build().expect("valid config");
    let mut platform = Platform::new(cfg);

    println!("powering on ...");
    let turn_on = platform
        .wait_for_ready(2.0)
        .expect("PLL/AGC failed to lock");
    println!(
        "ready in {:.0} ms  (PLL at {:.1} Hz, drive envelope {:.3} FS)",
        turn_on.to_millis(),
        platform.chain().frequency(),
        platform.chain().envelope(),
    );

    for rate in [0.0, 75.0, -150.0, 300.0] {
        platform.set_rate(DegPerSec(rate));
        let samples = platform.sample_rate_output(0.3, 400);
        let measured = stats::mean(&samples);
        println!(
            "applied {rate:>7.1} °/s  ->  output {:>7.2} °/s  ({:.4} V at the rate pin)",
            measured,
            platform.rate_output().0
        );
    }

    // The 8051 monitor has been streaming status frames the whole time.
    let tx = platform.cpu_mut().uart_take_tx();
    let frames = tx
        .iter()
        .filter(|&&b| b == ascp::core::firmware::FRAME_HEADER)
        .count();
    println!("monitor CPU streamed ~{frames} UART status frames");
}
