//! Platform genericity #2: an inductive (LVDT-style) position channel.
//!
//! The gyro chain's core trick — synchronous carrier demodulation — is
//! exactly how inductive sensors are conditioned: excite the primary with a
//! carrier, demodulate the secondary coherently, read amplitude (position
//! magnitude) and phase (direction). This example reuses the *same* NCO and
//! demodulator IPs from the gyro chain on an
//! [`ascp::mems::generic::InductivePositionSensor`].
//!
//! ```sh
//! cargo run --release --example position_sensor
//! ```

use ascp::afe::adc::{AdcConfig, SarAdc};
use ascp::dsp::demod::Demodulator;
use ascp::dsp::nco::Nco;
use ascp::mems::generic::{AnalogSensor, InductivePositionSensor};
use ascp::sim::stats;
use ascp::sim::units::Volts;

/// LVDT conditioning channel from the portfolio: NCO excitation at 5 kHz,
/// SAR acquisition at 100 kHz, coherent I/Q demodulation.
struct PositionChannel {
    sensor: InductivePositionSensor,
    nco: Nco,
    adc: SarAdc,
    demod: Demodulator,
    fs: f64,
}

impl PositionChannel {
    fn new() -> Self {
        let fs = 100_000.0;
        let mut nco = Nco::new();
        nco.set_frequency(5_000.0, fs);
        Self {
            sensor: InductivePositionSensor::new(5.0, 0.05, 17),
            nco,
            adc: SarAdc::new(AdcConfig::default()),
            // 200 Hz channel filter, decimate to 2 kHz.
            demod: Demodulator::new(200.0 / fs, 101, 50),
            fs,
        }
    }

    /// Averaged position reading in millimetres (sign from the I channel).
    fn read_mm(&mut self, n: usize) -> f64 {
        let mut outs = Vec::with_capacity(n);
        while outs.len() < n {
            let (s, c) = self.nco.tick();
            // Excite the primary with the NCO carrier at 3 V amplitude.
            let excitation = Volts(3.0 * s.to_f64());
            let secondary = self.sensor.sample(excitation);
            let q = self.adc.convert_q15(Volts(secondary.0));
            if let Some(out) = self.demod.process(q, s, c) {
                outs.push(out.i.to_f64());
            }
        }
        // Transfer: ratio = sensitivity·x (0.05/mm), excitation 3 V into a
        // ±2.5 V ADC: I = 0.05·x·3/2.5.
        stats::mean(&outs) / (0.05 * 3.0 / 2.5)
    }

    fn fs(&self) -> f64 {
        self.fs
    }
}

fn main() {
    let mut ch = PositionChannel::new();
    println!(
        "LVDT channel: 5 kHz excitation, coherent demodulation at {} kHz",
        ch.fs() / 1000.0
    );
    println!(
        "  {:>12} {:>12} {:>10}",
        "applied mm", "read mm", "error µm"
    );
    let mut worst = 0.0f64;
    for x in [-5.0, -3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, 5.0] {
        ch.sensor.set_stimulus(x);
        let r = ch.read_mm(40);
        let err_um = (r - x).abs() * 1000.0;
        worst = worst.max(err_um);
        println!("  {x:>12.2} {r:>12.3} {err_um:>10.1}");
    }
    println!("worst-case error: {worst:.1} µm over the ±5 mm stroke");
    println!("(same NCO + demodulator IPs as the gyro chain — the paper's reusable portfolio)");
}
