//! Platform genericity #2: an inductive (LVDT-style) position channel.
//!
//! The gyro chain's core trick — synchronous carrier demodulation — is
//! exactly how inductive sensors are conditioned: excite the primary with
//! a carrier, demodulate the secondary coherently, read amplitude and
//! sign. Earlier revisions of this example wired the NCO, ADC and
//! demodulator together by hand and inverted the transfer with a constant
//! baked into the example. The sensor now implements
//! [`ascp::mems::frontend::SensorFrontEnd`] — it *declares* carrier
//! excitation (5 kHz, 3 V) and a linear conditioning recipe, and the
//! generic [`SensorChannel`] instantiates the same NCO + demodulator IPs
//! the gyro chain uses, plus open-wire supervision.
//!
//! ```sh
//! cargo run --release --example position_sensor
//! ```

use ascp::core::prelude::*;
use ascp::mems::generic::InductivePositionSensor;

fn main() {
    let cfg = ChannelConfig::new("position", 17);
    let mut ch = SensorChannel::new(cfg, Box::new(InductivePositionSensor::new(5.0, 0.05, 17)));
    println!(
        "LVDT channel from the shared portfolio: {} ({}), {:?} excitation",
        ch.frontend().kind(),
        ch.frontend().unit(),
        ch.frontend().excitation(),
    );
    ch.settle(0.05);

    println!(
        "  {:>12} {:>12} {:>10}",
        "applied mm", "read mm", "error µm"
    );
    let mut worst = 0.0f64;
    for x in [-5.0, -3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, 5.0] {
        ch.set_stimulus(x);
        ch.settle(0.02);
        let r = ch.read(40);
        let err_um = (r - x).abs() * 1000.0;
        worst = worst.max(err_um);
        println!("  {x:>12.2} {r:>12.3} {err_um:>10.1}");
    }
    println!("worst-case error: {worst:.1} µm over the ±5 mm stroke");

    // An LVDT has no pilot imbalance and a genuine null at mid-stroke, so
    // only the open-wire check is armed — the channel still catches a
    // broken harness from the same monitor path the other sensors use.
    let mut plan = FaultPlan::new();
    // The plan is scheduled in absolute channel time.
    plan.one_shot(FaultKind::WireNotConnected, ch.time() + 0.01, 0.05);
    ch.set_fault_plan(plan);
    ch.settle(0.04);
    println!("during open-wire fault: status {:?}", ch.status());
    ch.settle(0.05);
    println!("after the fault clears: status {:?}", ch.status());
    println!("(same NCO + demodulator IPs as the gyro chain — the paper's reusable portfolio)");
}
