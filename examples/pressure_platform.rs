//! Platform genericity: conditioning a capacitive pressure sensor from the
//! same IP portfolio (paper §3 — "the generic platform ... is intended to
//! address the design of the sensor interface for a wide range of
//! automotive applications").
//!
//! Earlier revisions of this example hand-assembled the channel (bandgap +
//! PGA + ADC + CIC, with an ad-hoc transfer inversion and a two-point
//! calibration baked into the example itself). The sensor now implements
//! [`ascp::mems::frontend::SensorFrontEnd`], so the whole datapath — plus
//! the dbus-adc-style wire-harness supervisor the hand-rolled channel
//! never had — comes from one [`SensorChannel`] instantiation. The
//! conditioning recipe (an exact half-bridge inversion table) lives on the
//! sensor, where a platform retarget can swap it over JTAG.
//!
//! ```sh
//! cargo run --release --example pressure_platform
//! ```

use ascp::core::prelude::*;
use ascp::mems::generic::CapacitivePressureSensor;
use ascp::sim::units::Celsius;

fn channel() -> SensorChannel {
    let mut cfg = ChannelConfig::new("pressure", 7);
    // Bridge output is ~0.23 V at full scale: amplify ×8 before the ADC.
    cfg.gain_code = 3;
    SensorChannel::new(cfg, Box::new(CapacitivePressureSensor::new(400.0, 0.2, 3)))
}

fn main() {
    let mut ch = channel();
    println!(
        "pressure channel from the shared portfolio: {} ({}), {:?} excitation",
        ch.frontend().kind(),
        ch.frontend().unit(),
        ch.frontend().excitation(),
    );
    ch.settle(0.01);

    println!("conditioned transfer (table inversion on the front-end):");
    let mut worst = 0.0f64;
    for p in [0.0, 100.0, 200.0, 300.0, 400.0] {
        ch.set_stimulus(p);
        ch.settle(0.005);
        let r = ch.read(40);
        worst = worst.max((r - p).abs());
        println!("  applied {p:>5.0} kPa -> read {r:>7.2} kPa");
    }
    println!("worst-case error: {worst:.2} kPa over the 400 kPa span");

    println!("temperature sensitivity at 200 kPa:");
    ch.set_stimulus(200.0);
    for t in [-40.0, 25.0, 125.0] {
        ch.set_temperature(Celsius(t));
        ch.settle(0.005);
        println!("  {t:>6.1} °C -> {:>7.2} kPa", ch.read(40));
    }
    ch.set_temperature(Celsius(25.0));

    // The hand-rolled channel had no harness diagnostics at all. The
    // generic channel's monitor ADC classifies wire faults from the same
    // node the signal path conditions.
    println!("wire-harness supervision (new with the generic channel):");
    let mut plan = FaultPlan::new();
    // The plan is scheduled in absolute channel time.
    plan.one_shot(FaultKind::WireNotConnected, ch.time() + 0.01, 0.05);
    ch.set_fault_plan(plan);
    ch.settle(0.04);
    println!("  during open-wire fault: status {:?}", ch.status());
    ch.settle(0.05);
    println!("  after the fault clears: status {:?}", ch.status());
    for (from, to) in ch.transitions() {
        println!("  transition {from} -> {to}");
    }
}
