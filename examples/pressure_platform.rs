//! Platform genericity: conditioning a capacitive pressure sensor from the
//! same IP portfolio (paper §3 — "the generic platform ... is intended to
//! address the design of the sensor interface for a wide range of
//! automotive applications").
//!
//! The gyro needed a PLL and demodulators; a manifold-pressure channel
//! needs excitation, a PGA, an ADC and decimating filters. Both are drawn
//! from the same crates — that is the platform-based-design claim.
//!
//! ```sh
//! cargo run --release --example pressure_platform
//! ```

use ascp::afe::adc::{AdcConfig, SarAdc};
use ascp::afe::amp::Pga;
use ascp::afe::refs::VoltageReference;
use ascp::dsp::cic::CicDecimator;
use ascp::dsp::comp::{Compensator, TempPolynomial};
use ascp::mems::generic::{AnalogSensor, CapacitivePressureSensor};
use ascp::sim::stats;
use ascp::sim::units::{Celsius, Volts};

/// A pressure-conditioning channel assembled from the portfolio.
struct PressureChannel {
    sensor: CapacitivePressureSensor,
    excitation: VoltageReference,
    pga: Pga,
    adc: SarAdc,
    cic: CicDecimator,
    comp: Compensator,
    fs: f64,
}

impl PressureChannel {
    fn new() -> Self {
        let mut pga = Pga::new(50_000.0, 50.0e-6, 1.0e-6, 10.0e-6, 7);
        pga.set_gain_code(3); // ×8: bridge output is ~0.24 V at FS
        Self {
            sensor: CapacitivePressureSensor::new(400.0, 0.2, 3),
            excitation: VoltageReference::bandgap_2v5(11),
            pga,
            adc: SarAdc::new(AdcConfig::default()),
            cic: CicDecimator::new(3, 64),
            comp: Compensator::identity(),
            fs: 100_000.0,
        }
    }

    /// One decimated pressure reading in kPa (averaging `n` outputs).
    fn read_kpa(&mut self, n: usize) -> f64 {
        let mut outs = Vec::with_capacity(n);
        while outs.len() < n {
            let exc = self.excitation.output();
            let v = self.sensor.sample(exc);
            let amp = self.pga.process(v, 1.0 / self.fs);
            let q = self.adc.convert_q15(amp);
            if let Some(y) = self.cic.process(q) {
                outs.push(self.comp.apply(y).to_f64());
            }
        }
        // Transfer: ratio ≈ sens/(2+sens·p/FS)·exc; inverted linearly after
        // compensation. Scale factor from the design dimensioning:
        // FS (400 kPa) maps to code 0.2/(2.2)·2.5V·8/2.5 = 0.727.
        stats::mean(&outs) / 0.727 * 400.0
    }

    /// Two-point calibration against applied pressure references, like a
    /// final-test trim: solves offset and gain directly and installs them
    /// as constant compensation polynomials.
    fn calibrate(&mut self) {
        let (p_lo, p_hi) = (50.0, 350.0);
        self.sensor.set_stimulus(p_lo);
        let r_lo = self.read_kpa(40);
        self.sensor.set_stimulus(p_hi);
        let r_hi = self.read_kpa(40);
        // Work in the chain's Q15 domain (kPa × 0.727/400 per the transfer).
        let to_q = 0.727 / 400.0;
        let gain = (p_hi - p_lo) / (r_hi - r_lo);
        let offset = (r_lo - p_lo / gain) * to_q;
        self.comp = Compensator::new(
            TempPolynomial::constant(offset),
            TempPolynomial::constant(gain),
        );
        self.comp.set_temperature(25.0);
    }
}

fn main() {
    let mut ch = PressureChannel::new();

    println!("uncalibrated transfer:");
    for p in [0.0, 100.0, 200.0, 300.0, 400.0] {
        ch.sensor.set_stimulus(p);
        println!(
            "  applied {p:>5.0} kPa -> read {:>7.2} kPa",
            ch.read_kpa(40)
        );
    }

    ch.sensor.set_stimulus(0.0);
    ch.calibrate();

    println!("after two-point calibration:");
    let mut worst = 0.0f64;
    for p in [0.0, 100.0, 200.0, 300.0, 400.0] {
        ch.sensor.set_stimulus(p);
        let r = ch.read_kpa(40);
        worst = worst.max((r - p).abs());
        println!("  applied {p:>5.0} kPa -> read {:>7.2} kPa", r);
    }
    println!("worst-case error after calibration: {worst:.2} kPa");

    println!("temperature sensitivity at 200 kPa:");
    ch.sensor.set_stimulus(200.0);
    for t in [-40.0, 25.0, 125.0] {
        ch.sensor.set_temperature(Celsius(t));
        println!("  {t:>6.1} °C -> {:>7.2} kPa", ch.read_kpa(40));
    }

    // The same excitation reference the gyro platform uses.
    let exc: Volts = ch.excitation.output();
    println!("(excitation from the shared bandgap IP: {:.4} V)", exc.0);
}
