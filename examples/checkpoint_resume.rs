//! Checkpoint & resume: snapshot a settled platform, restore it
//! bit-exactly, and warm-start a rate-table campaign from a shared
//! settle prefix.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use std::time::Instant;

use ascp::core::checkpoint;
use ascp::core::prelude::*;
use ascp::sim::units::DegPerSec;

fn main() {
    let cfg = PlatformConfig::builder().build().expect("valid config");

    // ---- 1. Settle once, checkpoint the whole platform -----------------
    let mut original = Platform::new(cfg.clone());
    println!("settling (PLL lock + AGC convergence) ...");
    let turn_on = original.wait_for_ready(2.0).expect("lock");
    println!("ready in {:.0} ms", turn_on.to_millis());

    let path = std::env::temp_dir().join("ascp_checkpoint_resume.ckpt");
    checkpoint::save_to_file(&original, &path).expect("write checkpoint");
    let size = std::fs::metadata(&path).expect("stat").len();
    println!("checkpoint -> {} ({size} bytes)", path.display());

    // ---- 2. Restore in a "new process" and prove bit-exactness ---------
    let mut restored = checkpoint::restore_from_file(cfg.clone(), &path).expect("restore");
    for p in [&mut original, &mut restored] {
        p.set_rate(DegPerSec(120.0));
        p.run(0.2);
    }
    assert_eq!(
        checkpoint::save(&original),
        checkpoint::save(&restored),
        "restored platform must stay byte-identical to the original"
    );
    println!(
        "restored platform tracks the original bit-exactly: both read {:.3} °/s",
        restored.rate_output_dps()
    );

    // ---- 3. Warm-start a rate table from the shared settle prefix ------
    let scenarios = |tag: &str| -> Vec<ScenarioSpec> {
        [-150.0, -50.0, 50.0, 150.0]
            .iter()
            .map(|&dps| {
                ScenarioSpec::new(format!("{tag}_{dps:+.0}dps"), cfg.clone())
                    .with_seed(0xa5c)
                    .with_steps([
                        Step::WaitReady { timeout_s: 2.0 },
                        Step::Run { seconds: 0.05 },
                        Step::SetRate { dps },
                        Step::MeasureMeanRate {
                            label: "mean_dps".into(),
                            window_s: 0.05,
                        },
                    ])
            })
            .collect()
    };

    let t = Instant::now();
    let cold = CampaignRunner::new().run(scenarios("rate"));
    let cold_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let warm = CampaignRunner::with_options(
        CampaignOptions::builder()
            .warm_start(true)
            .build()
            .expect("valid options"),
    )
    .run(scenarios("rate"));
    let warm_s = t.elapsed().as_secs_f64();

    assert_eq!(
        cold.to_csv(),
        warm.to_csv(),
        "warm-start must not change any result"
    );
    println!(
        "\n4-point rate table: cold {cold_s:.2} s, warm {warm_s:.2} s \
         ({:.1}x, {} cache hits), results byte-identical",
        cold_s / warm_s,
        warm.warm_hits
    );
    for o in &warm.outcomes {
        println!(
            "  {:<14} -> {:+8.2} °/s",
            o.name,
            o.metric("mean_dps").expect("measured")
        );
    }

    std::fs::remove_file(&path).ok();
}
