//! Property tests of the simulation kernel: statistics invariants, noise
//! reproducibility and trace bookkeeping for arbitrary inputs.

use ascp_sim::noise::{PinkNoise, RandomWalk, WhiteNoise};
use ascp_sim::stats;
use ascp_sim::trace::Trace;
use ascp_sim::{RateDivider, TimeBase};
use proptest::prelude::*;

proptest! {
    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 2usize..64,
    ) {
        let xs: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = stats::linear_fit(&xs, &ys);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        prop_assert!(fit.max_residual < 1e-6 * (1.0 + slope.abs() + intercept.abs()));
    }

    #[test]
    fn interp_stays_within_hull(
        ys in proptest::collection::vec(-10.0f64..10.0, 2..16),
        q in -2.0f64..18.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|k| k as f64).collect();
        let v = stats::interp(&xs, &ys, q);
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..64),
        shift in -1000.0f64..1000.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((stats::variance(&xs) - stats::variance(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn rms_bounds_mean(xs in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        prop_assert!(stats::rms(&xs) + 1e-12 >= stats::mean(&xs).abs());
    }

    #[test]
    fn white_noise_deterministic(seed in any::<u64>(), sigma in 0.0f64..10.0) {
        let mut a = WhiteNoise::new(sigma, seed);
        let mut b = WhiteNoise::new(sigma, seed);
        for _ in 0..32 {
            prop_assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn pink_noise_deterministic(seed in any::<u64>()) {
        let mut a = PinkNoise::new(1.0, 12, seed);
        let mut b = PinkNoise::new(1.0, 12, seed);
        for _ in 0..32 {
            prop_assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn random_walk_bounded(limit in 0.1f64..10.0, seed in any::<u64>()) {
        let mut w = RandomWalk::new(limit / 3.0, limit, seed);
        for _ in 0..500 {
            prop_assert!(w.sample().abs() <= limit + 1e-9);
        }
    }

    #[test]
    fn rate_divider_fires_exact_fraction(div in 1u32..64, n in 1u32..1000) {
        let mut d = RateDivider::new(div);
        let fires = (0..n * div).filter(|_| d.tick()).count();
        prop_assert_eq!(fires as u32, n);
    }

    #[test]
    fn trace_decimation_keeps_every_nth(dec in 1u32..16, n in 0u32..200) {
        let mut t = Trace::with_decimation("x", dec);
        for k in 0..n {
            t.push(f64::from(k), f64::from(k));
        }
        prop_assert_eq!(t.len() as u32, n.div_ceil(dec));
        for (i, &v) in t.values().iter().enumerate() {
            prop_assert_eq!(v, (i as u32 * dec) as f64);
        }
    }

    #[test]
    fn timebase_ticks_cover_duration(rate in 1.0f64..1.0e7, secs in 0.0f64..10.0) {
        let tb = TimeBase::new(ascp_sim::units::Hertz(rate));
        let ticks = tb.ticks_for(secs);
        prop_assert!(tb.time_at(ticks) >= secs - tb.dt());
    }

    #[test]
    fn settling_index_is_sound(
        xs in proptest::collection::vec(-5.0f64..5.0, 1..64),
        target in -5.0f64..5.0,
        tol in 0.01f64..2.0,
    ) {
        if let Some(i) = stats::settling_index(&xs, target, tol) {
            // Everything from i onward is in the band.
            for (k, x) in xs.iter().enumerate().skip(i) {
                prop_assert!((x - target).abs() <= tol, "index {k} out of band");
            }
            // The point just before i (if any) is out of band.
            if i > 0 {
                prop_assert!((xs[i - 1] - target).abs() > tol);
            }
        } else {
            // Never settles: the last sample must be out of band.
            prop_assert!((xs[xs.len() - 1] - target).abs() > tol);
        }
    }
}
