//! Property tests of the span tracer: for *any* interleaving of begin /
//! end / instant calls — balanced or not, targeting live or stale span
//! handles — the recorder's stack stays consistent and the merged log is
//! well-nested (every child interval lies inside its parent's, wall and
//! sim time both monotonic per span).

use ascp_sim::telemetry::trace::{SpanId, TraceCollector, TraceLog};
use proptest::prelude::*;

/// One scripted call against the recorder. `end` indexes into the list of
/// span handles issued so far (modulo its length), so scripts exercise
/// ending out of order, ending twice, and ending while children are open.
#[derive(Debug, Clone)]
enum Op {
    Begin,
    End(usize),
    Instant,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<u8>(), any::<usize>()).prop_map(|(tag, idx)| match tag % 5 {
            0 | 1 => Op::Begin,
            2 | 3 => Op::End(idx),
            _ => Op::Instant,
        }),
        0..64,
    )
}

/// Replays a script with monotonically increasing sim time and returns the
/// merged log.
fn replay(script: &[Op]) -> TraceLog {
    let collector = TraceCollector::new();
    let mut rec = collector.recorder(1);
    let mut issued: Vec<SpanId> = Vec::new();
    for (k, op) in script.iter().enumerate() {
        let t = k as f64 * 0.25;
        match op {
            Op::Begin => issued.push(rec.begin(format!("span{k}"), t)),
            Op::End(raw) if !issued.is_empty() => {
                let id = issued[raw % issued.len()];
                rec.end(id, t);
            }
            Op::End(_) => {}
            Op::Instant => rec.instant(format!("mark{k}"), t),
        }
    }
    rec.finish(script.len() as f64 * 0.25);
    assert_eq!(rec.open_depth(), 0, "finish must close every open span");
    collector.merge(rec);
    collector.into_log()
}

proptest! {
    #[test]
    fn any_call_sequence_yields_a_well_nested_log(script in ops()) {
        let log = replay(&script);

        for span in &log.spans {
            prop_assert!(span.wall_end_ns >= span.wall_start_ns, "{}", span.label);
            prop_assert!(span.sim_end_s >= span.sim_start_s, "{}", span.label);
            if span.parent != 0 {
                let parent = log
                    .spans
                    .iter()
                    .find(|p| p.id == span.parent)
                    .expect("parent span is in the log");
                prop_assert!(
                    parent.wall_start_ns <= span.wall_start_ns
                        && span.wall_end_ns <= parent.wall_end_ns,
                    "{} escapes {} on the wall clock",
                    span.label,
                    parent.label
                );
                prop_assert!(
                    parent.sim_start_s <= span.sim_start_s
                        && span.sim_end_s <= parent.sim_end_s,
                    "{} escapes {} in sim time",
                    span.label,
                    parent.label
                );
            }
        }

        // The Chrome export of any log is structurally balanced JSON.
        let json = log.to_chrome_json();
        let has_header = json.starts_with("{\"traceEvents\":[");
        prop_assert!(has_header, "{}", &json[..json.len().min(40)]);
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
        prop_assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn span_count_is_bounded_by_begins(script in ops()) {
        let begins = script.iter().filter(|op| matches!(op, Op::Begin)).count();
        let log = replay(&script);
        prop_assert!(log.spans.len() + log.dropped as usize <= begins);
        prop_assert_eq!(log.spans.len(), begins); // capacity is never hit here
    }
}
