//! Run observability: metrics, structured events and stage profiling.
//!
//! The paper's platform is only trustworthy because every layer can be
//! observed (JTAG read-back of each analog cell, §2). This module is the
//! simulator's equivalent: one [`Telemetry`] value owned by the platform
//! collects
//!
//! - **metrics** — counters/gauges/histograms in a [`MetricsRegistry`]
//!   (`adc.conversions`, `pll.lock_transitions`, `cpu.instructions`, …);
//! - **events** — a bounded [`EventLog`] of typed milestones
//!   ([`Event::PllLocked`], [`Event::WatchdogReset`], …);
//! - **profiling spans** — wall-time per simulation stage (analog ODE,
//!   acquisition, DSP chain, CPU slice, register sync), sampled every Nth
//!   tick so instrumentation stays well under the run cost.
//!
//! Everything is exported from an immutable [`TelemetrySnapshot`]: JSON
//! (`to_json`), Prometheus text (`to_prometheus`) or a human summary
//! (`Display`). A disabled `Telemetry` reduces every recording call to a
//! single branch — the hot path allocates nothing either way.
//!
//! # Example
//!
//! ```
//! use ascp_sim::telemetry::{Event, Telemetry, TelemetryConfig};
//!
//! let mut tele = Telemetry::new(TelemetryConfig::default());
//! tele.counter_set("adc.conversions", 1024);
//! tele.gauge_set("pll.frequency_hz", 14_980.0);
//! tele.record_event(Event::PllLocked { t: 0.12, frequency_hz: 14_980.0 });
//! let snap = tele.snapshot(0.5);
//! assert!(snap.to_json().contains("adc.conversions"));
//! assert!(snap.to_prometheus().contains("ascp_adc_conversions_total 1024"));
//! ```

mod events;
mod export;
pub mod recorder;
mod registry;
pub mod trace;

pub use events::{Event, EventLog};
pub use export::prometheus_name;
pub use recorder::{CaptureBundle, FlightRecorder, RecorderConfig, SignalFrame};
pub use registry::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS, HISTOGRAM_MIN};
pub use trace::{SpanId, TraceCollector, TraceLog, TraceRecorder};

use std::collections::BTreeMap;
use std::time::Instant;

/// Telemetry collection settings.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch: `false` turns every recording call into a no-op.
    pub enabled: bool,
    /// Maximum events retained by the ring buffer.
    pub event_capacity: usize,
    /// Profile stage wall-times on every Nth profiling tick (1 = always).
    ///
    /// `Instant::now()` costs tens of nanoseconds; sampling keeps the
    /// overhead of six timestamps per tick far below the ≈µs tick cost.
    pub profile_every: u32,
    /// Flight-recorder settings (disarmed by default). Pure observability:
    /// excluded from the platform config digest, never checkpointed.
    pub recorder: RecorderConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            event_capacity: 1024,
            profile_every: 64,
            recorder: RecorderConfig::default(),
        }
    }
}

impl TelemetryConfig {
    /// A configuration with collection switched off entirely.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Accumulated wall-time for one named simulation stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct StageStat {
    seconds: f64,
    samples: u64,
}

/// Central telemetry collector owned by the simulation driver.
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: MetricsRegistry,
    events: EventLog,
    stages: BTreeMap<&'static str, StageStat>,
    profile_counter: u32,
    created: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Creates a collector with the given configuration.
    #[must_use]
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            events: EventLog::new(if config.enabled {
                config.event_capacity
            } else {
                0
            }),
            registry: MetricsRegistry::new(),
            stages: BTreeMap::new(),
            profile_counter: 0,
            created: Instant::now(),
            config,
        }
    }

    /// A collector that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// `true` when collection is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Adds `delta` to a counter (no-op when disabled).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if self.config.enabled {
            self.registry.counter_add(name, delta);
        }
    }

    /// Mirrors an absolute component counter (no-op when disabled).
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        if self.config.enabled {
            self.registry.counter_set(name, value);
        }
    }

    /// Sets a gauge (no-op when disabled).
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        if self.config.enabled {
            self.registry.gauge_set(name, value);
        }
    }

    /// Records a histogram sample (no-op when disabled).
    pub fn histogram_record(&mut self, name: &'static str, value: f64) {
        if self.config.enabled {
            self.registry.histogram_record(name, value);
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn record_event(&mut self, event: Event) {
        if self.config.enabled {
            self.events.push(event);
        }
    }

    /// Read access to the metric store.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Read access to the event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Decides whether the driver should time stages on this tick.
    ///
    /// Returns a timestamp to thread through [`Telemetry::stage_mark`] on
    /// profiled ticks; `None` (the common case) costs one compare and one
    /// increment.
    pub fn profile_tick(&mut self) -> Option<Instant> {
        if !self.config.enabled {
            return None;
        }
        self.profile_counter += 1;
        if self.profile_counter >= self.config.profile_every.max(1) {
            self.profile_counter = 0;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes the span started at `since`, attributing it to `stage`, and
    /// returns the timestamp opening the next span.
    pub fn stage_mark(&mut self, stage: &'static str, since: Instant) -> Instant {
        let now = Instant::now();
        let stat = self.stages.entry(stage).or_default();
        stat.seconds += now.duration_since(since).as_secs_f64();
        stat.samples += 1;
        now
    }

    /// Accumulated `(stage, seconds, samples)` rows, sorted by name.
    pub fn stage_times(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        self.stages
            .iter()
            .map(|(&name, s)| (name, s.seconds, s.samples))
    }

    /// Clears metrics, events and stage times (configuration is kept).
    pub fn reset(&mut self) {
        self.registry = MetricsRegistry::new();
        self.events = EventLog::new(if self.config.enabled {
            self.config.event_capacity
        } else {
            0
        });
        self.stages.clear();
        self.profile_counter = 0;
        self.created = Instant::now();
    }

    /// Captures an immutable snapshot at simulation time `sim_time_s`.
    #[must_use]
    pub fn snapshot(&self, sim_time_s: f64) -> TelemetrySnapshot {
        let total_stage: f64 = self.stages.values().map(|s| s.seconds).sum();
        TelemetrySnapshot {
            sim_time_s,
            wall_time_s: self.created.elapsed().as_secs_f64(),
            counters: self.registry.counters().collect(),
            gauges: self.registry.gauges().collect(),
            histograms: self
                .registry
                .histograms()
                .map(|(n, h)| {
                    (
                        n,
                        HistogramSummary {
                            count: h.count(),
                            sum: h.sum(),
                            mean: h.mean(),
                            max: h.max(),
                            buckets: h.nonzero_buckets().collect(),
                        },
                    )
                })
                .collect(),
            stages: self
                .stages
                .iter()
                .map(|(&stage, s)| StageBreakdown {
                    stage,
                    seconds: s.seconds,
                    samples: s.samples,
                    share: if total_stage > 0.0 {
                        s.seconds / total_stage
                    } else {
                        0.0
                    },
                })
                .collect(),
            events: self.events.iter().cloned().collect(),
            event_counts: self.events.kind_counts().collect(),
            events_total: self.events.total(),
            events_dropped: self.events.dropped(),
        }
    }
}

/// Aggregate view of one histogram inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample.
    pub mean: f64,
    /// Largest sample, when any.
    pub max: Option<f64>,
    /// Non-empty `(inclusive_upper_bound, count)` buckets.
    pub buckets: Vec<(f64, u64)>,
}

/// Per-stage wall-time row inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Stage name (`analog_ode`, `dsp_chain`, …).
    pub stage: &'static str,
    /// Accumulated wall seconds across profiled ticks.
    pub seconds: f64,
    /// Number of profiled spans.
    pub samples: u64,
    /// Fraction of the total profiled time (0 when nothing profiled).
    pub share: f64,
}

/// Immutable export view of a [`Telemetry`] collector.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Simulation time at capture, seconds.
    pub sim_time_s: f64,
    /// Wall time since the collector was created/reset, seconds.
    pub wall_time_s: f64,
    /// Counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
    /// Per-stage profiling rows, sorted by stage name.
    pub stages: Vec<StageBreakdown>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Per-kind event totals (retained or dropped), sorted by kind label.
    pub event_counts: Vec<(&'static str, u64)>,
    /// Events ever recorded (retained or dropped).
    pub events_total: u64,
    /// Events dropped by the ring bound.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Value of a counter in this snapshot (zero when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge in this snapshot.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Events of the given kind ever recorded (a map built once at
    /// snapshot time — no per-call scan of the event ring).
    #[must_use]
    pub fn count_events(&self, kind: &str) -> usize {
        self.event_counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |&(_, n)| n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let mut t = Telemetry::disabled();
        t.counter_add("adc.conversions", 5);
        t.gauge_set("pll.frequency_hz", 1.0);
        t.histogram_record("agc.settle_time_s", 0.1);
        t.record_event(Event::PllUnlocked { t: 0.0 });
        assert!(t.profile_tick().is_none());
        let snap = t.snapshot(1.0);
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_total, 0);
    }

    #[test]
    fn enabled_collector_round_trips() {
        let mut t = Telemetry::default();
        t.counter_add("jtag.shifts", 2);
        t.counter_set("jtag.shifts", 10);
        t.gauge_set("agc.envelope", 0.5);
        t.histogram_record("stage.tick_s", 2.0e-6);
        t.record_event(Event::UartTx { t: 0.25, bytes: 3 });
        let snap = t.snapshot(0.5);
        assert_eq!(snap.counter("jtag.shifts"), 10);
        assert_eq!(snap.gauge("agc.envelope"), Some(0.5));
        assert_eq!(snap.count_events("UartTx"), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn profile_tick_fires_every_nth() {
        let mut t = Telemetry::new(TelemetryConfig {
            profile_every: 4,
            ..TelemetryConfig::default()
        });
        let fired: Vec<bool> = (0..12).map(|_| t.profile_tick().is_some()).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 3);
        // Every 4th call fires.
        assert!(fired[3] && fired[7] && fired[11]);
    }

    #[test]
    fn stage_marks_accumulate() {
        let mut t = Telemetry::default();
        let t0 = Instant::now();
        let t1 = t.stage_mark("analog_ode", t0);
        let _t2 = t.stage_mark("dsp_chain", t1);
        let rows: Vec<_> = t.stage_times().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|&(_, secs, n)| secs >= 0.0 && n == 1));
        let snap = t.snapshot(0.0);
        let share_sum: f64 = snap.stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
    }

    #[test]
    fn reset_clears_but_keeps_config() {
        let mut t = Telemetry::new(TelemetryConfig {
            event_capacity: 2,
            ..TelemetryConfig::default()
        });
        t.counter_add("cpu.instructions", 1);
        t.record_event(Event::PllUnlocked { t: 0.0 });
        t.reset();
        assert!(t.registry().is_empty());
        assert!(t.events().is_empty());
        assert_eq!(t.events().capacity(), 2);
        assert!(t.is_enabled());
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let mut t = Telemetry::default();
        t.counter_set("adc.conversions", 7);
        t.gauge_set("pll.frequency_hz", 15_000.0);
        t.histogram_record("stage.tick_s", 1.0e-6);
        t.record_event(Event::PllLocked {
            t: 0.1,
            frequency_hz: 15_000.0,
        });
        let json = t.snapshot(0.2).to_json();
        assert!(json.contains("\"adc.conversions\": 7"), "{json}");
        assert!(json.contains("\"kind\":\"PllLocked\""), "{json}");
        // Balanced braces/brackets (cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn snapshot_prometheus_lines_parse() {
        let mut t = Telemetry::default();
        t.counter_set("adc.conversions", 7);
        t.gauge_set("agc.envelope", 0.25);
        t.histogram_record("stage.tick_s", 1.0e-6);
        t.record_event(Event::WatchdogReset { t: 0.1, total: 1 });
        let text = t.snapshot(0.2).to_prometheus();
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            let name = name_part.split('{').next().expect("metric name");
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in line: {line}"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "bad value in line: {line}"
            );
        }
        assert!(text.contains("ascp_adc_conversions_total 7"), "{text}");
        assert!(
            text.contains("ascp_telemetry_events_total{kind=\"WatchdogReset\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn display_summarizes() {
        let mut t = Telemetry::default();
        t.counter_set("cpu.instructions", 42);
        let shown = format!("{}", t.snapshot(1.5));
        assert!(shown.contains("cpu.instructions"), "{shown}");
        assert!(shown.contains("1.500"), "{shown}");
    }
}
