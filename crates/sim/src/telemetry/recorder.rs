//! Black-box flight recorder: a pre-trigger ring of platform signals.
//!
//! Aircraft flight recorders keep the *last* N seconds, not the first: by
//! the time you know something went wrong it is too late to start
//! recording. This module is that idea for the simulated platform. While
//! armed, the driver pushes one [`SignalFrame`] per DSP tick into a
//! fixed-capacity ring (oldest evicted). When a configured trigger fires —
//! SafeState entry, the supervisor leaving Normal, or a plausibility-check
//! episode opening — the ring freezes and [`FlightRecorder::freeze`]
//! assembles a bounded [`CaptureBundle`]: the pre-trigger samples, the most
//! recent telemetry events, and a dump of the DSP register file. A failing
//! campaign scenario therefore produces a waveform artifact instead of a
//! bare metric.
//!
//! The recorder is observability only: it is *not* part of checkpoint
//! state (matching [`Telemetry`](super::Telemetry), which checkpoints also
//! skip), and its configuration is excluded from the platform config
//! digest, so arming it never invalidates warm-start caches or changes
//! simulation arithmetic.

use super::export::{event_json, json_escape, json_f64};
use super::Event;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Flight-recorder settings. The default is disarmed (`capacity == 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Pre-trigger ring size in frames (one frame per DSP tick); `0`
    /// disarms the recorder entirely.
    pub capacity: usize,
    /// Maximum telemetry events copied into a capture bundle.
    pub event_capacity: usize,
    /// Freeze when the supervisor enters SafeState.
    pub trigger_safe_state: bool,
    /// Freeze when the supervisor leaves Normal (fault detection).
    pub trigger_degraded: bool,
    /// Freeze when a plausibility-check episode opens (`FaultDetected`).
    pub trigger_check_fail: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            capacity: 0,
            event_capacity: 64,
            trigger_safe_state: false,
            trigger_degraded: false,
            trigger_check_fail: false,
        }
    }
}

impl RecorderConfig {
    /// A recorder of `capacity` frames armed on every fault-related trigger.
    #[must_use]
    pub fn fault_triggers(capacity: usize) -> Self {
        Self {
            capacity,
            trigger_safe_state: true,
            trigger_degraded: true,
            trigger_check_fail: true,
            ..Self::default()
        }
    }

    /// `true` when the ring should record (non-zero capacity, any trigger).
    #[must_use]
    pub fn armed(&self) -> bool {
        self.capacity > 0
            && (self.trigger_safe_state || self.trigger_degraded || self.trigger_check_fail)
    }
}

/// One per-tick sample of the platform's key signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalFrame {
    /// Simulation time, seconds.
    pub t: f64,
    /// Decoded rate output, °/s.
    pub rate_dps: f64,
    /// Demodulated in-phase (rate) channel, Q15 as `f64`.
    pub demod_i: f64,
    /// Demodulated quadrature channel, Q15 as `f64`.
    pub demod_q: f64,
    /// AGC drive amplitude (normalized).
    pub agc_drive: f64,
    /// Supervisor state code (see `SupervisorState::code`).
    pub supervisor_state: u8,
}

/// The frozen artifact: pre-trigger samples + events + register dump.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureBundle {
    /// Which trigger fired (`"safe_state"`, `"degraded"`, `"check_fail"`).
    pub cause: &'static str,
    /// Simulation time of the trigger, seconds.
    pub t_trigger: f64,
    /// Ring contents at the trigger, oldest first.
    pub frames: Vec<SignalFrame>,
    /// Most recent telemetry events at the trigger, oldest first.
    pub events: Vec<Event>,
    /// Key register values at the trigger (`("dsp.status", 0x0007)`, …).
    pub registers: Vec<(String, u16)>,
}

impl CaptureBundle {
    /// Serializes the bundle as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 * self.frames.len() + 1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"cause\": \"{}\",", json_escape(self.cause));
        let _ = writeln!(s, "  \"t_trigger_s\": {},", json_f64(self.t_trigger));
        s.push_str("  \"registers\": {");
        let items: Vec<String> = self
            .registers
            .iter()
            .map(|(n, v)| format!("\"{}\": {v}", json_escape(n)))
            .collect();
        s.push_str(&items.join(", "));
        s.push_str("},\n");
        s.push_str("  \"events\": [");
        let items: Vec<String> = self.events.iter().map(event_json).collect();
        s.push_str(&items.join(", "));
        s.push_str("],\n");
        s.push_str(
            "  \"frame_columns\": [\"t\", \"rate_dps\", \"demod_i\", \"demod_q\", \
             \"agc_drive\", \"supervisor_state\"],\n",
        );
        s.push_str("  \"frames\": [\n");
        let rows: Vec<String> = self
            .frames
            .iter()
            .map(|f| {
                format!(
                    "    [{}, {}, {}, {}, {}, {}]",
                    json_f64(f.t),
                    json_f64(f.rate_dps),
                    json_f64(f.demod_i),
                    json_f64(f.demod_q),
                    json_f64(f.agc_drive),
                    f.supervisor_state
                )
            })
            .collect();
        s.push_str(&rows.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Fixed-capacity pre-trigger signal ring with freeze-on-trigger semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    config: RecorderConfig,
    ring: VecDeque<SignalFrame>,
    capture: Option<CaptureBundle>,
    frames_recorded: u64,
}

impl FlightRecorder {
    /// A recorder with the given configuration (ring pre-allocated).
    #[must_use]
    pub fn new(config: RecorderConfig) -> Self {
        Self {
            ring: VecDeque::with_capacity(config.capacity.min(65_536)),
            config,
            capture: None,
            frames_recorded: 0,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// `true` once a trigger has frozen the ring.
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.capture.is_some()
    }

    /// Frames ever pushed (including evicted ones).
    #[must_use]
    pub fn frames_recorded(&self) -> u64 {
        self.frames_recorded
    }

    /// Pushes one frame, evicting the oldest when full. No-op once frozen.
    pub fn record(&mut self, frame: SignalFrame) {
        if self.capture.is_some() || self.config.capacity == 0 {
            return;
        }
        if self.ring.len() == self.config.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(frame);
        self.frames_recorded += 1;
    }

    /// Freezes the ring into a capture bundle. The first trigger wins;
    /// later calls are no-ops so the bundle always shows the *initial*
    /// failure, not the last transition of a cascading one.
    pub fn freeze(
        &mut self,
        cause: &'static str,
        t: f64,
        events: Vec<Event>,
        registers: Vec<(String, u16)>,
    ) {
        if self.capture.is_some() {
            return;
        }
        self.capture = Some(CaptureBundle {
            cause,
            t_trigger: t,
            frames: self.ring.iter().copied().collect(),
            events,
            registers,
        });
    }

    /// The frozen capture, when a trigger has fired.
    #[must_use]
    pub fn capture(&self) -> Option<&CaptureBundle> {
        self.capture.as_ref()
    }

    /// Removes and returns the frozen capture, re-arming the ring.
    pub fn take_capture(&mut self) -> Option<CaptureBundle> {
        self.capture.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t: f64) -> SignalFrame {
        SignalFrame {
            t,
            rate_dps: 10.0 * t,
            demod_i: 0.1,
            demod_q: 0.0,
            agc_drive: 0.5,
            supervisor_state: 1,
        }
    }

    #[test]
    fn default_config_is_disarmed() {
        assert!(!RecorderConfig::default().armed());
        assert!(RecorderConfig::fault_triggers(256).armed());
        assert!(!RecorderConfig::fault_triggers(0).armed());
    }

    #[test]
    fn ring_keeps_the_most_recent_frames() {
        let mut r = FlightRecorder::new(RecorderConfig::fault_triggers(3));
        for k in 0..5 {
            r.record(frame(f64::from(k)));
        }
        assert_eq!(r.frames_recorded(), 5);
        r.freeze("degraded", 5.0, Vec::new(), Vec::new());
        let cap = r.capture().expect("frozen");
        let times: Vec<f64> = cap.frames.iter().map(|f| f.t).collect();
        assert_eq!(times, [2.0, 3.0, 4.0]);
    }

    #[test]
    fn first_trigger_wins_and_recording_stops() {
        let mut r = FlightRecorder::new(RecorderConfig::fault_triggers(8));
        r.record(frame(0.0));
        r.freeze("check_fail", 1.0, Vec::new(), Vec::new());
        r.record(frame(2.0));
        r.freeze("safe_state", 3.0, Vec::new(), Vec::new());
        let cap = r.capture().expect("frozen");
        assert_eq!(cap.cause, "check_fail");
        assert_eq!(cap.t_trigger, 1.0);
        assert_eq!(cap.frames.len(), 1);
    }

    #[test]
    fn take_capture_rearms() {
        let mut r = FlightRecorder::new(RecorderConfig::fault_triggers(4));
        r.record(frame(0.0));
        r.freeze("safe_state", 1.0, Vec::new(), Vec::new());
        assert!(r.take_capture().is_some());
        assert!(!r.is_frozen());
        r.record(frame(2.0));
        r.freeze("degraded", 3.0, Vec::new(), Vec::new());
        // The ring keeps recording continuously across re-arms.
        let times: Vec<f64> = r.capture().unwrap().frames.iter().map(|f| f.t).collect();
        assert_eq!(times, [0.0, 2.0]);
    }

    #[test]
    fn bundle_json_is_well_formed() {
        let mut r = FlightRecorder::new(RecorderConfig::fault_triggers(4));
        r.record(frame(0.25));
        r.freeze(
            "degraded",
            0.5,
            vec![Event::FaultDetected {
                t: 0.5,
                check: "pll_lock",
            }],
            vec![("dsp.status".to_owned(), 0x0007)],
        );
        let json = r.capture().unwrap().to_json();
        assert!(json.contains("\"cause\": \"degraded\""), "{json}");
        assert!(json.contains("\"dsp.status\": 7"), "{json}");
        assert!(json.contains("\"kind\":\"FaultDetected\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
