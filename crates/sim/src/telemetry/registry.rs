//! Metrics registry: counters, gauges and log-bucketed histograms.
//!
//! Metric names are `&'static str` dotted paths (`adc.conversions`,
//! `pll.lock_transitions`) so recording never allocates; storage is a
//! `BTreeMap` keyed by those pointers, giving stable, sorted export order.

use std::collections::BTreeMap;

/// Number of log₂ buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lower bound of the first histogram bucket (1 ns when recording seconds).
pub const HISTOGRAM_MIN: f64 = 1.0e-9;

/// Log₂-bucketed histogram of non-negative samples.
///
/// Bucket `k` counts samples in `(HISTOGRAM_MIN·2^(k-1), HISTOGRAM_MIN·2^k]`
/// (bucket 0 takes everything at or below [`HISTOGRAM_MIN`]). Sixty-four
/// octaves starting at 1 ns span past 10⁹ s, so any wall-time or
/// settle-time measurement fits without configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a sample value.
    #[must_use]
    pub fn bucket_index(value: f64) -> usize {
        if value <= HISTOGRAM_MIN {
            return 0;
        }
        let octaves = (value / HISTOGRAM_MIN).log2().ceil();
        (octaves as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `k`.
    #[must_use]
    pub fn bucket_upper_bound(k: usize) -> f64 {
        HISTOGRAM_MIN * (k as f64).exp2()
    }

    /// Records one sample. Negative and non-finite samples are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (Self::bucket_upper_bound(k), c))
    }

    /// Approximate quantile `q` in `[0, 1]` from the bucket boundaries.
    ///
    /// Returns `None` when empty. The answer is the upper bound of the
    /// bucket containing the `q`-th sample, so it overestimates by at most
    /// one octave.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(k));
            }
        }
        Some(self.max)
    }
}

/// Central metric store: monotonic counters, last-value gauges, histograms.
///
/// All mutation paths are branch-plus-integer-add cheap; nothing allocates
/// after a metric's first appearance.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets counter `name` to an absolute value.
    ///
    /// Used by scrape-style collection where a component keeps its own
    /// monotonic count and the registry mirrors it.
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of counter `name` (zero when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name` (created empty).
    pub fn histogram_record(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Histogram `name`, when it exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&n, &v)| (n, v))
    }

    /// All gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&n, &v)| (n, v))
    }

    /// All histograms in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&n, h)| (n, h))
    }

    /// Total number of distinct metric names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when no metric has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("adc.conversions"), 0);
        r.counter_add("adc.conversions", 3);
        r.counter_add("adc.conversions", 4);
        assert_eq!(r.counter("adc.conversions"), 7);
        r.counter_set("adc.conversions", 100);
        assert_eq!(r.counter("adc.conversions"), 100);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.gauge("pll.frequency_hz"), None);
        r.gauge_set("pll.frequency_hz", 14_500.0);
        r.gauge_set("pll.frequency_hz", 15_000.0);
        assert_eq!(r.gauge("pll.frequency_hz"), Some(15_000.0));
    }

    #[test]
    fn histogram_buckets_are_log_spaced() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1.0e-9), 0);
        assert_eq!(Histogram::bucket_index(1.5e-9), 1);
        let k = Histogram::bucket_index(1.0e-3);
        // 1 ms is ~2^20 ns.
        assert!((19..=21).contains(&k), "bucket {k}");
        assert_eq!(Histogram::bucket_index(1.0e30), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_stats_and_quantile() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [1.0e-6, 2.0e-6, 4.0e-6, 1.0e-3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 1.007e-3).abs() < 1e-9);
        assert_eq!(h.min(), Some(1.0e-6));
        assert_eq!(h.max(), Some(1.0e-3));
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((2.0e-6..1.0e-3).contains(&p50), "p50 {p50}");
        let p100 = h.quantile(1.0).expect("non-empty");
        assert!(p100 >= 1.0e-3, "p100 {p100}");
    }

    #[test]
    fn histogram_ignores_invalid_samples() {
        let mut h = Histogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_iteration_is_sorted() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 1);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
