//! Snapshot exporters: JSON, Prometheus text exposition, human summary.
//!
//! All three render a [`TelemetrySnapshot`](super::TelemetrySnapshot) —
//! the immutable view captured at the end of a run — so exporting never
//! races the simulation and the formats cannot drift apart.

use super::{Event, TelemetrySnapshot};
use std::fmt::Write as _;

/// Escapes a string for a JSON value position.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders one event as a JSON object.
pub(crate) fn event_json(e: &Event) -> String {
    let mut fields = vec![
        format!("\"kind\":\"{}\"", e.kind()),
        format!("\"t\":{}", json_f64(e.time())),
    ];
    match e {
        Event::PllLocked { frequency_hz, .. } => {
            fields.push(format!("\"frequency_hz\":{}", json_f64(*frequency_hz)));
        }
        Event::AgcSettled { settle_time_s, .. } => {
            fields.push(format!("\"settle_time_s\":{}", json_f64(*settle_time_s)));
        }
        Event::AdcClip { channel, total, .. } => {
            fields.push(format!("\"channel\":\"{}\"", json_escape(channel)));
            fields.push(format!("\"total\":{total}"));
        }
        Event::WatchdogReset { total, .. } => fields.push(format!("\"total\":{total}")),
        Event::UartTx { bytes, .. } => fields.push(format!("\"bytes\":{bytes}")),
        Event::RegisterWrite { bank, writes, .. } => {
            fields.push(format!("\"bank\":\"{}\"", json_escape(bank)));
            fields.push(format!("\"writes\":{writes}"));
        }
        Event::FaultInjected { fault, .. } | Event::FaultCleared { fault, .. } => {
            fields.push(format!("\"fault\":\"{}\"", json_escape(fault)));
        }
        Event::FaultDetected { check, .. } => {
            fields.push(format!("\"check\":\"{}\"", json_escape(check)));
        }
        Event::SupervisorTransition {
            from, to, cause, ..
        } => {
            fields.push(format!("\"from\":\"{}\"", json_escape(from)));
            fields.push(format!("\"to\":\"{}\"", json_escape(to)));
            fields.push(format!("\"cause\":\"{}\"", json_escape(cause)));
        }
        Event::PllUnlocked { .. } => {}
    }
    format!("{{{}}}", fields.join(","))
}

/// Maps a dotted metric name to a Prometheus-legal one
/// (`adc.conversions` → `ascp_adc_conversions`).
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("ascp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl TelemetrySnapshot {
    /// Serializes the snapshot as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"sim_time_s\": {},", json_f64(self.sim_time_s));
        let _ = writeln!(s, "  \"wall_time_s\": {},", json_f64(self.wall_time_s));

        s.push_str("  \"counters\": {");
        let items: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{}\": {v}", json_escape(n)))
            .collect();
        s.push_str(&items.join(", "));
        s.push_str("},\n");

        s.push_str("  \"gauges\": {");
        let items: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json_escape(n), json_f64(*v)))
            .collect();
        s.push_str(&items.join(", "));
        s.push_str("},\n");

        s.push_str("  \"histograms\": {");
        let items: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(le, c)| format!("{{\"le\": {}, \"count\": {c}}}", json_f64(*le)))
                    .collect();
                format!(
                    "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"buckets\": [{}]}}",
                    json_escape(n),
                    h.count,
                    json_f64(h.sum),
                    json_f64(h.mean),
                    buckets.join(", ")
                )
            })
            .collect();
        s.push_str(&items.join(", "));
        s.push_str("},\n");

        s.push_str("  \"stages\": {");
        let items: Vec<String> = self
            .stages
            .iter()
            .map(|st| {
                format!(
                    "\"{}\": {{\"seconds\": {}, \"samples\": {}, \"share\": {}}}",
                    json_escape(st.stage),
                    json_f64(st.seconds),
                    st.samples,
                    json_f64(st.share)
                )
            })
            .collect();
        s.push_str(&items.join(", "));
        s.push_str("},\n");

        s.push_str("  \"events\": [");
        let items: Vec<String> = self.events.iter().map(event_json).collect();
        s.push_str(&items.join(", "));
        s.push_str("],\n");
        s.push_str("  \"event_counts\": {");
        let items: Vec<String> = self
            .event_counts
            .iter()
            .map(|(kind, n)| format!("\"{}\": {n}", json_escape(kind)))
            .collect();
        s.push_str(&items.join(", "));
        s.push_str("},\n");
        let _ = writeln!(s, "  \"events_total\": {},", self.events_total);
        let _ = writeln!(s, "  \"events_dropped\": {}", self.events_dropped);
        s.push_str("}\n");
        s
    }

    /// Serializes the snapshot in the Prometheus text exposition format.
    ///
    /// Every non-comment line is `name value` or `name{label="v"} value`;
    /// comment lines start with `#`. Counters get the conventional
    /// `_total` suffix, per-stage timings come out as one
    /// `ascp_stage_seconds_total{stage="..."}` family, and per-kind event
    /// totals as `ascp_telemetry_events_total{kind="..."}`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(4096);
        for (name, v) in &self.counters {
            let p = prometheus_name(name);
            let _ = writeln!(s, "# TYPE {p}_total counter");
            let _ = writeln!(s, "{p}_total {v}");
        }
        for (name, v) in &self.gauges {
            let p = prometheus_name(name);
            let _ = writeln!(s, "# TYPE {p} gauge");
            let _ = writeln!(s, "{p} {v}");
        }
        for (name, h) in &self.histograms {
            let p = prometheus_name(name);
            let _ = writeln!(s, "# TYPE {p} histogram");
            let mut cumulative = 0u64;
            for (le, c) in &h.buckets {
                cumulative += c;
                let _ = writeln!(s, "{p}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(s, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(s, "{p}_sum {}", h.sum);
            let _ = writeln!(s, "{p}_count {}", h.count);
        }
        if !self.stages.is_empty() {
            let _ = writeln!(s, "# TYPE ascp_stage_seconds_total counter");
            for st in &self.stages {
                let _ = writeln!(
                    s,
                    "ascp_stage_seconds_total{{stage=\"{}\"}} {}",
                    st.stage, st.seconds
                );
            }
        }
        if !self.event_counts.is_empty() {
            let _ = writeln!(s, "# TYPE ascp_telemetry_events_total counter");
            for (kind, n) in &self.event_counts {
                let _ = writeln!(s, "ascp_telemetry_events_total{{kind=\"{kind}\"}} {n}");
            }
        }
        let _ = writeln!(s, "# TYPE ascp_sim_time_seconds gauge");
        let _ = writeln!(s, "ascp_sim_time_seconds {}", self.sim_time_s);
        s
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "telemetry @ t = {:.3} s ({} events, {} dropped)",
            self.sim_time_s, self.events_total, self.events_dropped
        )?;
        if !self.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for (n, v) in &self.counters {
                writeln!(f, "    {n:<28} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  gauges:")?;
            for (n, v) in &self.gauges {
                writeln!(f, "    {n:<28} {v:.6}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "  histograms:")?;
            for (n, h) in &self.histograms {
                writeln!(
                    f,
                    "    {n:<28} n={} mean={:.3e} max={:.3e}",
                    h.count,
                    h.mean,
                    h.max.unwrap_or(0.0)
                )?;
            }
        }
        if !self.stages.is_empty() {
            writeln!(f, "  stage breakdown:")?;
            for st in &self.stages {
                writeln!(
                    f,
                    "    {:<28} {:>10.3} ms  ({:>5.1} %)",
                    st.stage,
                    st.seconds * 1.0e3,
                    st.share * 100.0
                )?;
            }
        }
        for e in self.events.iter().take(12) {
            writeln!(f, "  event @ {:>9.4} s  {}", e.time(), e.kind())?;
        }
        if self.events.len() > 12 {
            writeln!(f, "  ... {} more events", self.events.len() - 12)?;
        }
        Ok(())
    }
}
