//! Structured, timestamped simulation events with bounded storage.
//!
//! Events are the discrete milestones of a run — the PLL locking, the AGC
//! settling, a watchdog firing — the things a bench engineer would note in
//! a lab book next to the scope screenshot. Storage is a ring buffer: when
//! full, the *oldest* events are dropped and counted, so a long run keeps
//! its most recent history and never grows without bound.

use std::collections::{BTreeMap, VecDeque};

/// A typed, timestamped simulation event. `t` is simulation time, seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The drive PLL achieved phase lock.
    PllLocked {
        /// Simulation time, seconds.
        t: f64,
        /// Locked frequency estimate, Hz.
        frequency_hz: f64,
    },
    /// The drive PLL lost phase lock.
    PllUnlocked {
        /// Simulation time, seconds.
        t: f64,
    },
    /// The AGC amplitude error first entered its settling band.
    AgcSettled {
        /// Simulation time, seconds.
        t: f64,
        /// Time from reset to settling, seconds.
        settle_time_s: f64,
    },
    /// An ADC conversion clipped at full scale.
    AdcClip {
        /// Simulation time, seconds.
        t: f64,
        /// Which converter (`"primary"` / `"secondary"`).
        channel: &'static str,
        /// Clips on this channel so far (monotonic).
        total: u64,
    },
    /// The watchdog expired and reset the monitoring CPU.
    WatchdogReset {
        /// Simulation time, seconds.
        t: f64,
        /// Resets so far (monotonic).
        total: u64,
    },
    /// The monitoring CPU resumed transmitting on its UART after an idle
    /// interval (edge-triggered; steady streaming emits no further events).
    UartTx {
        /// Simulation time, seconds.
        t: f64,
        /// Bytes sent in the interval that resumed transmission.
        bytes: u64,
    },
    /// Control/AFE register writes were observed.
    RegisterWrite {
        /// Simulation time, seconds.
        t: f64,
        /// Register bank (`"dsp"` / `"afe"`).
        bank: &'static str,
        /// Writes since the previous event.
        writes: u64,
    },
    /// The fault engine activated a scheduled fault.
    FaultInjected {
        /// Simulation time, seconds.
        t: f64,
        /// Fault label (see `ascp_sim::fault::FaultKind::label`).
        fault: &'static str,
    },
    /// The fault engine cleared a scheduled fault.
    FaultCleared {
        /// Simulation time, seconds.
        t: f64,
        /// Fault label.
        fault: &'static str,
    },
    /// A supervisor plausibility check fired (once per fault episode).
    FaultDetected {
        /// Simulation time, seconds.
        t: f64,
        /// Which check tripped (`"pll_lock"`, `"agc_envelope"`, ...).
        check: &'static str,
    },
    /// The safety supervisor changed state.
    SupervisorTransition {
        /// Simulation time, seconds.
        t: f64,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
        /// Why (`"ready"`, `"init-timeout"`, check label, ...).
        cause: &'static str,
    },
}

impl Event {
    /// Stable kind label (used for export and aggregation).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::PllLocked { .. } => "PllLocked",
            Self::PllUnlocked { .. } => "PllUnlocked",
            Self::AgcSettled { .. } => "AgcSettled",
            Self::AdcClip { .. } => "AdcClip",
            Self::WatchdogReset { .. } => "WatchdogReset",
            Self::UartTx { .. } => "UartTx",
            Self::RegisterWrite { .. } => "RegisterWrite",
            Self::FaultInjected { .. } => "FaultInjected",
            Self::FaultCleared { .. } => "FaultCleared",
            Self::FaultDetected { .. } => "FaultDetected",
            Self::SupervisorTransition { .. } => "SupervisorTransition",
        }
    }

    /// Simulation time of the event, seconds.
    #[must_use]
    pub fn time(&self) -> f64 {
        match self {
            Self::PllLocked { t, .. }
            | Self::PllUnlocked { t }
            | Self::AgcSettled { t, .. }
            | Self::AdcClip { t, .. }
            | Self::WatchdogReset { t, .. }
            | Self::UartTx { t, .. }
            | Self::RegisterWrite { t, .. }
            | Self::FaultInjected { t, .. }
            | Self::FaultCleared { t, .. }
            | Self::FaultDetected { t, .. }
            | Self::SupervisorTransition { t, .. } => *t,
        }
    }
}

/// Bounded ring buffer of [`Event`]s.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    total: u64,
    kind_counts: BTreeMap<&'static str, u64>,
}

impl EventLog {
    /// A log holding at most `capacity` events (`0` keeps nothing but still
    /// counts totals).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            total: 0,
            kind_counts: BTreeMap::new(),
        }
    }

    /// Appends an event, evicting the oldest when full. Per-kind counts
    /// track every push, so eviction never loses the tally.
    pub fn push(&mut self, event: Event) {
        self.total += 1;
        *self.kind_counts.entry(event.kind()).or_insert(0) += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (or never stored) because of the bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever pushed, retained or not.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events ever pushed of the given kind (retained or evicted). A map
    /// lookup, not a ring scan — cheap even for hot callers.
    #[must_use]
    pub fn count_kind(&self, kind: &str) -> usize {
        self.kind_counts.get(kind).copied().unwrap_or(0) as usize
    }

    /// Per-kind totals (retained or evicted), sorted by kind label.
    pub fn kind_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_counts.iter().map(|(&k, &n)| (k, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> Event {
        Event::PllUnlocked { t }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = EventLog::new(8);
        log.push(ev(0.1));
        log.push(Event::PllLocked {
            t: 0.2,
            frequency_hz: 15_000.0,
        });
        let kinds: Vec<&str> = log.iter().map(Event::kind).collect();
        assert_eq!(kinds, ["PllUnlocked", "PllLocked"]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.total(), 2);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut log = EventLog::new(3);
        for k in 0..5 {
            log.push(ev(f64::from(k)));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total(), 5);
        let times: Vec<f64> = log.iter().map(Event::time).collect();
        assert_eq!(times, [2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let mut log = EventLog::new(0);
        log.push(ev(1.0));
        assert!(log.is_empty());
        assert_eq!(log.total(), 1);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn kind_labels_are_stable() {
        let all = [
            Event::PllLocked {
                t: 0.0,
                frequency_hz: 1.0,
            },
            Event::PllUnlocked { t: 0.0 },
            Event::AgcSettled {
                t: 0.0,
                settle_time_s: 0.1,
            },
            Event::AdcClip {
                t: 0.0,
                channel: "primary",
                total: 1,
            },
            Event::WatchdogReset { t: 0.0, total: 1 },
            Event::UartTx { t: 0.0, bytes: 4 },
            Event::RegisterWrite {
                t: 0.0,
                bank: "dsp",
                writes: 2,
            },
            Event::FaultInjected {
                t: 0.0,
                fault: "pll_unlock",
            },
            Event::FaultCleared {
                t: 0.0,
                fault: "pll_unlock",
            },
            Event::FaultDetected {
                t: 0.0,
                check: "pll_lock",
            },
            Event::SupervisorTransition {
                t: 0.0,
                from: "normal",
                to: "degraded",
                cause: "pll_lock",
            },
        ];
        let kinds: Vec<&str> = all.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            [
                "PllLocked",
                "PllUnlocked",
                "AgcSettled",
                "AdcClip",
                "WatchdogReset",
                "UartTx",
                "RegisterWrite",
                "FaultInjected",
                "FaultCleared",
                "FaultDetected",
                "SupervisorTransition"
            ]
        );
    }

    #[test]
    fn count_kind_filters() {
        let mut log = EventLog::new(8);
        log.push(ev(0.0));
        log.push(ev(1.0));
        log.push(Event::UartTx { t: 2.0, bytes: 1 });
        assert_eq!(log.count_kind("PllUnlocked"), 2);
        assert_eq!(log.count_kind("UartTx"), 1);
        assert_eq!(log.count_kind("PllLocked"), 0);
        let counts: Vec<_> = log.kind_counts().collect();
        assert_eq!(counts, [("PllUnlocked", 2), ("UartTx", 1)]);
    }

    #[test]
    fn kind_counts_survive_eviction() {
        let mut log = EventLog::new(1);
        for k in 0..3 {
            log.push(ev(f64::from(k)));
        }
        assert_eq!(log.len(), 1);
        assert_eq!(log.count_kind("PllUnlocked"), 3);
    }
}
