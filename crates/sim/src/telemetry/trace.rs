//! Hierarchical span tracing with a Chrome trace-event exporter.
//!
//! Where the [`EventLog`](super::EventLog) records *what happened*, spans
//! record *where the time went*: a campaign opens a span, every scenario
//! opens a child span on its own track, and each scenario `Step` nests one
//! level deeper. Spans carry both wall-clock bounds (nanoseconds from a
//! shared epoch) and simulation-time bounds, so one capture answers both
//! "which scenario is slow" and "when in simulated time did it happen".
//!
//! The design splits recording from merging so the hot path never locks:
//!
//! - [`TraceRecorder`] is a single-threaded, bounded recorder. Each campaign
//!   worker owns one (keyed by a `track` id, which becomes the Chrome `tid`),
//!   so recording a span is a couple of `Vec` pushes.
//! - [`TraceCollector`] hands out recorders sharing one wall-clock epoch and
//!   merges them back under a mutex — once per scenario, not per span.
//! - [`TraceLog`] is the merged, immutable result;
//!   [`TraceLog::to_chrome_json`] renders the Chrome trace-event format that
//!   Perfetto and `chrome://tracing` load directly.
//!
//! The recorder is deliberately forgiving: ending a span whose children are
//! still open closes the children first (at the same instant), dropping a
//! span on capacity overflow returns a null [`SpanId`] that makes every
//! later call on it a no-op, and [`TraceRecorder::finish`] closes whatever
//! is left. The invariant that survives all of that: exported spans are
//! always well-nested — every child interval lies inside its parent's.
//!
//! # Example
//!
//! ```
//! use ascp_sim::telemetry::trace::TraceCollector;
//!
//! let collector = TraceCollector::new();
//! let mut rec = collector.recorder(1);
//! let scenario = rec.begin("scenario:warmup", 0.0);
//! let step = rec.begin("WaitReady", 0.0);
//! rec.end(step, 0.25);
//! rec.end(scenario, 0.25);
//! collector.merge(rec);
//! let log = collector.into_log();
//! assert_eq!(log.spans.len(), 2);
//! assert!(log.to_chrome_json().starts_with("{\"traceEvents\":["));
//! ```

use super::export::{json_escape, json_f64};
use std::sync::Mutex;
use std::time::Instant;

/// Default bound on records (spans + instants) per recorder.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Handle to an open span. `SpanId::NULL` (returned when the recorder is
/// full) makes `end`/`annotate` no-ops, so callers never branch on drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The null handle: operations on it do nothing.
    pub const NULL: Self = Self(0);

    /// `true` for the null handle.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// One completed (or still open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Unique id: `track << 32 | serial` (serial starts at 1).
    pub id: u64,
    /// Enclosing span's id, `0` for a root span.
    pub parent: u64,
    /// Human label (`"campaign"`, `"scenario:adc_stuck_bit"`, `"WaitReady"`).
    pub label: String,
    /// Track (Chrome `tid`): one per campaign worker slot.
    pub track: u64,
    /// Wall-clock open instant, nanoseconds from the collector epoch.
    pub wall_start_ns: u64,
    /// Wall-clock close instant, nanoseconds from the collector epoch.
    pub wall_end_ns: u64,
    /// Simulation time at open, seconds.
    pub sim_start_s: f64,
    /// Simulation time at close, seconds.
    pub sim_end_s: f64,
    /// Free-form `(key, value)` annotations (warm hit/miss, tick counts, …).
    pub args: Vec<(String, String)>,
}

/// A point-in-time marker (supervisor transition, recorder trigger, …).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstant {
    /// Human label (`"supervisor normal->degraded"`).
    pub label: String,
    /// Track (Chrome `tid`).
    pub track: u64,
    /// Wall-clock instant, nanoseconds from the collector epoch.
    pub wall_ns: u64,
    /// Simulation time, seconds.
    pub sim_t_s: f64,
}

/// Single-threaded bounded span recorder for one track.
///
/// Obtain one from [`TraceCollector::recorder`] so wall timestamps share
/// the collector's epoch.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    track: u64,
    serial: u64,
    /// Indices into `spans` of the currently open spans, outermost first.
    stack: Vec<usize>,
    spans: Vec<TraceSpan>,
    instants: Vec<TraceInstant>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A standalone recorder with its own epoch (tests, single-platform use).
    #[must_use]
    pub fn standalone(track: u64) -> Self {
        Self::with_epoch(Instant::now(), track, DEFAULT_TRACE_CAPACITY)
    }

    fn with_epoch(epoch: Instant, track: u64, capacity: usize) -> Self {
        Self {
            epoch,
            track,
            serial: 0,
            stack: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// This recorder's track id.
    #[must_use]
    pub fn track(&self) -> u64 {
        self.track
    }

    /// Records (spans + instants) dropped by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of currently open spans.
    #[must_use]
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// All spans recorded so far (open spans have `wall_end_ns == 0`).
    #[must_use]
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span at simulation time `sim_t`, nested under the innermost
    /// open span. Returns [`SpanId::NULL`] when the recorder is full.
    pub fn begin(&mut self, label: impl Into<String>, sim_t: f64) -> SpanId {
        if self.spans.len() + self.instants.len() >= self.capacity {
            self.dropped += 1;
            return SpanId::NULL;
        }
        self.serial += 1;
        let id = (self.track << 32) | self.serial;
        let parent = self.stack.last().map_or(0, |&i| self.spans[i].id);
        self.stack.push(self.spans.len());
        self.spans.push(TraceSpan {
            id,
            parent,
            label: label.into(),
            track: self.track,
            wall_start_ns: self.now_ns(),
            wall_end_ns: 0,
            sim_start_s: sim_t,
            sim_end_s: sim_t,
            args: Vec::new(),
        });
        SpanId(id)
    }

    /// Closes the span `id` at simulation time `sim_t`, first closing any
    /// children still open inside it (at the same instant, so nesting stays
    /// well-formed). Null or already-closed ids are ignored.
    pub fn end(&mut self, id: SpanId, sim_t: f64) {
        if id.is_null() || !self.stack.iter().any(|&i| self.spans[i].id == id.0) {
            return;
        }
        let now = self.now_ns();
        while let Some(i) = self.stack.pop() {
            let span = &mut self.spans[i];
            span.wall_end_ns = now;
            span.sim_end_s = span.sim_start_s.max(sim_t);
            if span.id == id.0 {
                break;
            }
        }
    }

    /// Attaches a `(key, value)` annotation to the still-open span `id`.
    pub fn annotate(&mut self, id: SpanId, key: impl Into<String>, value: impl Into<String>) {
        if id.is_null() {
            return;
        }
        if let Some(&i) = self.stack.iter().find(|&&i| self.spans[i].id == id.0) {
            self.spans[i].args.push((key.into(), value.into()));
        }
    }

    /// Records a point-in-time marker at simulation time `sim_t`.
    pub fn instant(&mut self, label: impl Into<String>, sim_t: f64) {
        if self.spans.len() + self.instants.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.instants.push(TraceInstant {
            label: label.into(),
            track: self.track,
            wall_ns: self.now_ns(),
            sim_t_s: sim_t,
        });
    }

    /// Closes every open span at simulation time `sim_t` (crash-safe flush).
    pub fn finish(&mut self, sim_t: f64) {
        let now = self.now_ns();
        while let Some(i) = self.stack.pop() {
            let span = &mut self.spans[i];
            span.wall_end_ns = now;
            span.sim_end_s = span.sim_start_s.max(sim_t);
        }
    }
}

/// Merged, immutable trace from one campaign (or one platform run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// All spans, in merge order (scenario tracks, then the campaign root).
    pub spans: Vec<TraceSpan>,
    /// All instant markers.
    pub instants: Vec<TraceInstant>,
    /// Records dropped across all merged recorders.
    pub dropped: u64,
}

impl TraceLog {
    /// First span whose label matches exactly.
    #[must_use]
    pub fn span(&self, label: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.label == label)
    }

    /// Direct children of the span `parent_id`, in recording order.
    #[must_use]
    pub fn children(&self, parent_id: u64) -> Vec<&TraceSpan> {
        self.spans
            .iter()
            .filter(|s| s.parent == parent_id)
            .collect()
    }

    /// Renders the Chrome trace-event JSON format (one `traceEvents` array;
    /// loadable in Perfetto / `chrome://tracing`).
    ///
    /// Two synthetic processes keep the two time axes apart: `pid 0` lays
    /// spans out on the wall clock (µs from the collector epoch), `pid 1`
    /// replays the same spans plus all instant markers on the simulation
    /// clock (1 sim-second = 1 s of trace time).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(2 * self.spans.len() + 4);
        events.push(meta_event("process_name", 0, "wall clock"));
        events.push(meta_event("process_name", 1, "sim time"));
        for s in &self.spans {
            let mut args: Vec<String> = vec![
                format!("\"sim_t0_s\":{}", json_f64(s.sim_start_s)),
                format!("\"sim_t1_s\":{}", json_f64(s.sim_end_s)),
            ];
            for (k, v) in &s.args {
                args.push(format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            let wall_ts = s.wall_start_ns as f64 / 1.0e3;
            let wall_dur = s.wall_end_ns.saturating_sub(s.wall_start_ns) as f64 / 1.0e3;
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                json_escape(&s.label),
                s.track,
                json_f64(wall_ts),
                json_f64(wall_dur),
                args.join(",")
            ));
            if s.sim_end_s > s.sim_start_s {
                events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                    json_escape(&s.label),
                    s.track,
                    json_f64(s.sim_start_s * 1.0e6),
                    json_f64((s.sim_end_s - s.sim_start_s) * 1.0e6)
                ));
            }
        }
        for i in &self.instants {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
                json_escape(&i.label),
                i.track,
                json_f64(i.sim_t_s * 1.0e6)
            ));
        }
        format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
    }
}

fn meta_event(name: &str, pid: u64, value: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
        json_escape(value)
    )
}

/// Thread-safe span sink shared by the campaign worker pool.
///
/// Hands out per-worker [`TraceRecorder`]s sharing one wall-clock epoch and
/// merges them back under a mutex — the lock is taken once per scenario.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    log: Mutex<TraceLog>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            log: Mutex::new(TraceLog::default()),
        }
    }

    /// A bounded recorder for `track`, timestamping against this epoch.
    #[must_use]
    pub fn recorder(&self, track: u64) -> TraceRecorder {
        TraceRecorder::with_epoch(self.epoch, track, DEFAULT_TRACE_CAPACITY)
    }

    /// Folds a recorder's spans into the shared log, closing any span the
    /// recorder left open.
    pub fn merge(&self, mut rec: TraceRecorder) {
        let last_sim = rec.spans.iter().map(|s| s.sim_end_s).fold(0.0, f64::max);
        rec.finish(last_sim);
        let mut log = self.log.lock().expect("trace log poisoned");
        log.spans.append(&mut rec.spans);
        log.instants.append(&mut rec.instants);
        log.dropped += rec.dropped;
    }

    /// Consumes the collector, returning the merged log.
    #[must_use]
    pub fn into_log(self) -> TraceLog {
        self.log.into_inner().expect("trace log poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_carry_both_clocks() {
        let mut rec = TraceRecorder::standalone(3);
        let outer = rec.begin("scenario:x", 0.0);
        let inner = rec.begin("WaitReady", 0.1);
        assert_eq!(rec.open_depth(), 2);
        rec.end(inner, 0.4);
        rec.end(outer, 0.9);
        assert_eq!(rec.open_depth(), 0);
        let [s_outer, s_inner] = rec.spans() else {
            panic!("expected two spans");
        };
        assert_eq!(s_inner.parent, s_outer.id);
        assert_eq!(s_outer.parent, 0);
        assert_eq!(s_outer.track, 3);
        assert!(s_outer.wall_end_ns >= s_inner.wall_end_ns);
        assert!(s_inner.wall_start_ns >= s_outer.wall_start_ns);
        assert_eq!(s_inner.sim_end_s, 0.4);
        assert_eq!(s_outer.sim_end_s, 0.9);
    }

    #[test]
    fn ending_parent_closes_open_children() {
        let mut rec = TraceRecorder::standalone(0);
        let outer = rec.begin("outer", 0.0);
        let _inner = rec.begin("inner", 0.2);
        rec.end(outer, 1.0);
        assert_eq!(rec.open_depth(), 0);
        assert!(rec.spans().iter().all(|s| s.wall_end_ns >= s.wall_start_ns));
        assert!(rec.spans().iter().all(|s| s.sim_end_s >= s.sim_start_s));
    }

    #[test]
    fn ending_twice_and_null_ids_are_noops() {
        let mut rec = TraceRecorder::standalone(0);
        let a = rec.begin("a", 0.0);
        rec.end(a, 0.5);
        rec.end(a, 0.7);
        rec.end(SpanId::NULL, 0.8);
        rec.annotate(SpanId::NULL, "k", "v");
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].sim_end_s, 0.5);
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let mut rec = TraceRecorder::with_epoch(Instant::now(), 0, 2);
        let a = rec.begin("a", 0.0);
        rec.instant("mark", 0.1);
        let b = rec.begin("overflow", 0.2);
        assert!(b.is_null());
        rec.instant("overflow", 0.3);
        assert_eq!(rec.dropped(), 2);
        rec.end(b, 0.4);
        rec.end(a, 0.5);
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.open_depth(), 0);
    }

    #[test]
    fn annotations_attach_to_open_spans_only() {
        let mut rec = TraceRecorder::standalone(0);
        let a = rec.begin("a", 0.0);
        rec.annotate(a, "warm", "hit");
        rec.end(a, 0.1);
        rec.annotate(a, "late", "ignored");
        assert_eq!(rec.spans()[0].args, [("warm".into(), "hit".into())]);
    }

    #[test]
    fn collector_merges_tracks_with_shared_epoch() {
        let collector = TraceCollector::new();
        let mut r1 = collector.recorder(1);
        let mut r2 = collector.recorder(2);
        let a = r1.begin("scenario:a", 0.0);
        let b = r2.begin("scenario:b", 0.0);
        r1.end(a, 1.0);
        r2.end(b, 2.0);
        collector.merge(r1);
        collector.merge(r2);
        let log = collector.into_log();
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.dropped, 0);
        assert!(log.span("scenario:a").is_some());
        assert_eq!(log.span("scenario:b").unwrap().track, 2);
    }

    #[test]
    fn merge_closes_leaked_spans() {
        let collector = TraceCollector::new();
        let mut rec = collector.recorder(1);
        let _leaked = rec.begin("scenario:leaky", 0.0);
        let _inner = rec.begin("Run", 3.0);
        collector.merge(rec);
        let log = collector.into_log();
        assert!(log.spans.iter().all(|s| s.wall_end_ns >= s.wall_start_ns));
        assert!(log.spans.iter().all(|s| s.sim_end_s >= s.sim_start_s));
        assert_eq!(log.span("scenario:leaky").unwrap().sim_end_s, 3.0);
    }

    #[test]
    fn chrome_json_contains_spans_instants_and_metadata() {
        let collector = TraceCollector::new();
        let mut rec = collector.recorder(1);
        let a = rec.begin("scenario:\"quoted\"", 0.0);
        rec.annotate(a, "warm", "miss");
        rec.instant("supervisor init->normal", 0.05);
        rec.end(a, 0.5);
        collector.merge(rec);
        let json = collector.into_log().to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("scenario:\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"warm\":\"miss\""), "{json}");
        // Balanced structure (cheap sanity; full parse lives in prop tests).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
