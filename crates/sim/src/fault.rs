//! Fault-injection engine: a typed catalog of platform faults and a
//! deterministic schedule that activates them during a run.
//!
//! The paper's platform targets automotive sensor conditioning, where the
//! conditioning ASIC must survive sensor disconnects, supply droop, stuck
//! converter bits and a wedged monitor CPU. This module models those
//! faults as *data*: a [`FaultPlan`] holds [`FaultSpec`]s, each a
//! [`FaultKind`] plus a [`FaultSchedule`] (one-shot window, permanent, or
//! intermittent bursts driven by a seeded [`Rng64`]). The platform polls
//! the plan once per DSP tick and receives *edges* — activations and
//! clears — which it maps onto the component models (gating the MEMS
//! drive, corrupting SPI bytes, hanging the 8051, ...).
//!
//! An empty plan reduces the whole engine to a single branch per tick, so
//! fault support costs nothing when unused.
//!
//! # Example
//!
//! ```
//! use ascp_sim::fault::{FaultKind, FaultPlan};
//!
//! let mut plan = FaultPlan::new();
//! plan.one_shot(FaultKind::PllUnlock, 0.5, 0.1);
//! let mut edges = Vec::new();
//! plan.poll(0.55, &mut edges); // inside the window
//! assert!(edges[0].activated);
//! ```

use crate::noise::Rng64;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// Which SAR ADC channel a converter fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcChannel {
    /// Primary (drive) pickoff converter.
    Primary,
    /// Secondary (Coriolis) pickoff converter.
    Secondary,
}

impl AdcChannel {
    /// Stable label for telemetry and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Primary => "primary",
            Self::Secondary => "secondary",
        }
    }
}

/// The catalog of injectable platform faults.
///
/// Each variant corresponds to a physical failure mode of the conditioning
/// ASIC or its harness; the platform maps activations onto the component
/// models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// MEMS drive electrode open: the sustaining force never reaches the
    /// resonator and the oscillation decays.
    MemsDriveLoss,
    /// Sensor harness disconnect: both pickoff signals float to zero.
    SensorDisconnect,
    /// One ADC output bit stuck at a fixed value (metallization short).
    AdcStuckBit {
        /// Faulted converter.
        channel: AdcChannel,
        /// Stuck bit index (0 = LSB of the offset-binary code).
        bit: u32,
        /// Stuck level.
        value: bool,
    },
    /// ADC output frozen at one code (sample/hold failure).
    AdcStuckCode {
        /// Faulted converter.
        channel: AdcChannel,
        /// Frozen two's-complement code.
        code: i32,
    },
    /// Front-end overload: the converter input is scaled past full range
    /// and clips (e.g. a shorted attenuator).
    AdcOverload {
        /// Faulted converter.
        channel: AdcChannel,
        /// Input overdrive factor (> 1 clips).
        gain: f64,
    },
    /// Bandgap reference / supply droop by the given fraction (0.1 = −10%).
    ReferenceDroop {
        /// Droop as a fraction of nominal.
        frac: f64,
    },
    /// Kick the drive PLL off frequency (shock-induced phase slip).
    PllUnlock,
    /// SPI line bit errors at the given per-byte probability.
    SpiBitErrors {
        /// Per-byte corruption probability in [0, 1].
        rate: f64,
    },
    /// UART line bit errors at the given per-byte probability.
    UartBitErrors {
        /// Per-byte corruption probability in [0, 1].
        rate: f64,
    },
    /// JTAG TDO corruption at the given per-shift-bit probability.
    JtagCorruption {
        /// Per-bit flip probability in [0, 1].
        rate: f64,
    },
    /// Monitoring 8051 hangs (latch-up): only the watchdog can recover it.
    CpuHang,
    /// Sensor signal wire not connected: the conditioned input floats to
    /// the pull-up rail (dbus-adc style open-harness signature).
    WireNotConnected,
    /// Sensor signal wire shorted to ground: the conditioned input reads
    /// near 0 V regardless of stimulus.
    WireShortToGround,
    /// Sensor connector mated reverse: the input sits in the
    /// protection-diode band near one diode drop above ground.
    WireReversePolarity,
}

impl FaultKind {
    /// Stable label for telemetry events, CSV rows and metric names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::MemsDriveLoss => "mems_drive_loss",
            Self::SensorDisconnect => "sensor_disconnect",
            Self::AdcStuckBit { .. } => "adc_stuck_bit",
            Self::AdcStuckCode { .. } => "adc_stuck_code",
            Self::AdcOverload { .. } => "adc_overload",
            Self::ReferenceDroop { .. } => "reference_droop",
            Self::PllUnlock => "pll_unlock",
            Self::SpiBitErrors { .. } => "spi_bit_errors",
            Self::UartBitErrors { .. } => "uart_bit_errors",
            Self::JtagCorruption { .. } => "jtag_corruption",
            Self::CpuHang => "cpu_hang",
            Self::WireNotConnected => "wire_not_connected",
            Self::WireShortToGround => "wire_short_to_ground",
            Self::WireReversePolarity => "wire_reverse_polarity",
        }
    }

    /// Every fault-class label, in catalog order. This is the row universe
    /// of the campaign coverage matrix: a report can say a class was never
    /// exercised only because the full catalog is known statically.
    pub const ALL_LABELS: [&'static str; 14] = [
        "mems_drive_loss",
        "sensor_disconnect",
        "adc_stuck_bit",
        "adc_stuck_code",
        "adc_overload",
        "reference_droop",
        "pll_unlock",
        "spi_bit_errors",
        "uart_bit_errors",
        "jtag_corruption",
        "cpu_hang",
        "wire_not_connected",
        "wire_short_to_ground",
        "wire_reverse_polarity",
    ];
}

/// When a fault is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSchedule {
    /// Active for one window `[start_s, start_s + duration_s)`.
    OneShot {
        /// Activation time, seconds.
        start_s: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
    /// Active from `start_s` until the end of the run.
    Permanent {
        /// Activation time, seconds.
        start_s: f64,
    },
    /// Deterministic random bursts inside `[start_s, end_s)`.
    ///
    /// Off intervals average `period_s`, bursts average `burst_s`; both
    /// are jittered by the seeded [`Rng64`], so the same seed reproduces
    /// the same burst train exactly.
    Intermittent {
        /// First possible activation, seconds.
        start_s: f64,
        /// No activity at or after this time, seconds.
        end_s: f64,
        /// Mean off interval between bursts, seconds.
        period_s: f64,
        /// Mean burst length, seconds.
        burst_s: f64,
        /// RNG seed for the burst train.
        seed: u64,
    },
}

/// One scheduled fault: what and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Its activation schedule.
    pub schedule: FaultSchedule,
}

/// An activation or clear edge reported by [`FaultPlan::poll`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEdge {
    /// The fault that changed state.
    pub kind: FaultKind,
    /// `true` on activation, `false` on clear.
    pub activated: bool,
}

/// Per-spec runtime state.
#[derive(Debug, Clone)]
struct FaultState {
    spec: FaultSpec,
    active: bool,
    /// Intermittent schedules only: burst generator and next toggle time.
    rng: Option<Rng64>,
    next_toggle_s: f64,
    /// Intermittent schedules only: whether the burst train is currently
    /// in a burst (tracked separately from `active`, which is the edge-
    /// reported state).
    burst_on: bool,
}

/// An executable set of scheduled faults.
///
/// The platform calls [`FaultPlan::poll`] with the current simulation time
/// each tick; the plan compares every spec's desired state against its
/// current one and reports the edges.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    states: Vec<FaultState>,
}

impl FaultPlan {
    /// An empty plan (no faults; `poll` is never needed).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no faults are scheduled — the per-tick fast path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Scheduled specs, in insertion order.
    pub fn specs(&self) -> impl Iterator<Item = &FaultSpec> {
        self.states.iter().map(|s| &s.spec)
    }

    /// Adds an arbitrary spec.
    pub fn push(&mut self, spec: FaultSpec) -> &mut Self {
        let rng = match spec.schedule {
            FaultSchedule::Intermittent { seed, .. } => Some(Rng64::new(seed)),
            _ => None,
        };
        self.states.push(FaultState {
            spec,
            active: false,
            rng,
            next_toggle_s: f64::NAN,
            burst_on: false,
        });
        self
    }

    /// Schedules `kind` for the window `[start_s, start_s + duration_s)`.
    pub fn one_shot(&mut self, kind: FaultKind, start_s: f64, duration_s: f64) -> &mut Self {
        self.push(FaultSpec {
            kind,
            schedule: FaultSchedule::OneShot {
                start_s,
                duration_s,
            },
        })
    }

    /// Schedules `kind` from `start_s` to the end of the run.
    pub fn permanent(&mut self, kind: FaultKind, start_s: f64) -> &mut Self {
        self.push(FaultSpec {
            kind,
            schedule: FaultSchedule::Permanent { start_s },
        })
    }

    /// Schedules deterministic intermittent bursts of `kind`.
    pub fn intermittent(
        &mut self,
        kind: FaultKind,
        start_s: f64,
        end_s: f64,
        period_s: f64,
        burst_s: f64,
        seed: u64,
    ) -> &mut Self {
        self.push(FaultSpec {
            kind,
            schedule: FaultSchedule::Intermittent {
                start_s,
                end_s,
                period_s,
                burst_s,
                seed,
            },
        })
    }

    /// Evaluates every spec at time `t` (seconds) and appends an edge for
    /// each fault whose active state changed. `edges` is *not* cleared, so
    /// callers can reuse one buffer across ticks.
    pub fn poll(&mut self, t: f64, edges: &mut Vec<FaultEdge>) {
        for st in &mut self.states {
            let desired = st.desired_active(t);
            if desired != st.active {
                st.active = desired;
                edges.push(FaultEdge {
                    kind: st.spec.kind,
                    activated: desired,
                });
            }
        }
    }

    /// `true` if the given fault (by label) is currently active.
    #[must_use]
    pub fn is_active(&self, kind: FaultKind) -> bool {
        self.states.iter().any(|s| s.active && s.spec.kind == kind)
    }

    /// Serializes the runtime cursor of every scheduled fault (active
    /// flags, burst generators, next toggle times). The specs themselves
    /// are configuration and are *not* saved; a restore target must be
    /// built from the same plan.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u32(self.states.len() as u32);
        for st in &self.states {
            w.put_bool(st.active);
            match &st.rng {
                Some(rng) => {
                    w.put_bool(true);
                    rng.save_state(w);
                }
                None => w.put_bool(false),
            }
            w.put_f64(st.next_toggle_s);
            w.put_bool(st.burst_on);
        }
    }

    /// Restores the runtime cursor saved by [`FaultPlan::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if the saved cursor count or RNG
    /// presence disagrees with this plan's specs (the checkpoint belongs
    /// to a different configuration), plus the underlying decode errors.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n = r.take_u32()? as usize;
        if n != self.states.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "fault plan has {} specs but snapshot carries {n} cursors",
                    self.states.len()
                ),
            });
        }
        for st in &mut self.states {
            st.active = r.take_bool()?;
            let has_rng = r.take_bool()?;
            if has_rng != st.rng.is_some() {
                return Err(SnapshotError::Corrupt {
                    context: "fault cursor RNG presence mismatch".to_owned(),
                });
            }
            if let Some(rng) = st.rng.as_mut() {
                rng.load_state(r)?;
            }
            st.next_toggle_s = r.take_f64()?;
            st.burst_on = r.take_bool()?;
        }
        Ok(())
    }
}

impl FaultState {
    fn desired_active(&mut self, t: f64) -> bool {
        match self.spec.schedule {
            FaultSchedule::OneShot {
                start_s,
                duration_s,
            } => t >= start_s && t < start_s + duration_s,
            FaultSchedule::Permanent { start_s } => t >= start_s,
            FaultSchedule::Intermittent {
                start_s,
                end_s,
                period_s,
                burst_s,
                ..
            } => {
                if t < start_s || t >= end_s {
                    return false;
                }
                let rng = self.rng.as_mut().expect("intermittent state has an RNG");
                if self.next_toggle_s.is_nan() {
                    // First poll inside the window: schedule the first burst.
                    self.next_toggle_s = start_s + period_s * (0.5 + rng.next_f64());
                }
                // Advance the burst train up to `t`. Each draw jitters the
                // nominal interval by ±50% so bursts never phase-lock to
                // anything in the loop.
                while t >= self.next_toggle_s {
                    self.burst_on = !self.burst_on;
                    let mean = if self.burst_on { burst_s } else { period_s };
                    self.next_toggle_s += mean * (0.5 + rng.next_f64());
                }
                self.burst_on
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn one_shot_activates_and_clears() {
        let mut plan = FaultPlan::new();
        plan.one_shot(FaultKind::PllUnlock, 1.0, 0.5);
        let mut edges = Vec::new();
        plan.poll(0.5, &mut edges);
        assert!(edges.is_empty());
        plan.poll(1.0, &mut edges);
        assert_eq!(
            edges,
            [FaultEdge {
                kind: FaultKind::PllUnlock,
                activated: true
            }]
        );
        assert!(plan.is_active(FaultKind::PllUnlock));
        edges.clear();
        plan.poll(1.2, &mut edges);
        assert!(edges.is_empty(), "no edge while the window holds");
        plan.poll(1.5, &mut edges);
        assert_eq!(
            edges,
            [FaultEdge {
                kind: FaultKind::PllUnlock,
                activated: false
            }]
        );
        assert!(!plan.is_active(FaultKind::PllUnlock));
    }

    #[test]
    fn permanent_never_clears() {
        let mut plan = FaultPlan::new();
        plan.permanent(FaultKind::CpuHang, 0.25);
        let mut edges = Vec::new();
        plan.poll(0.3, &mut edges);
        assert_eq!(edges.len(), 1);
        edges.clear();
        plan.poll(1000.0, &mut edges);
        assert!(edges.is_empty());
        assert!(plan.is_active(FaultKind::CpuHang));
    }

    #[test]
    fn intermittent_is_deterministic_and_bounded() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new();
            plan.intermittent(
                FaultKind::SpiBitErrors { rate: 0.5 },
                0.1,
                2.0,
                0.2,
                0.05,
                seed,
            );
            let mut edges = Vec::new();
            let mut trail = Vec::new();
            for k in 0..2500 {
                let t = k as f64 * 1.0e-3;
                edges.clear();
                plan.poll(t, &mut edges);
                for e in &edges {
                    trail.push((t, e.activated));
                }
            }
            trail
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same burst train");
        assert_ne!(a, c, "different seed, different train");
        assert!(a.len() >= 4, "several bursts in 2 s: {}", a.len());
        // Every edge inside the window; final state cleared after end.
        assert!(a
            .iter()
            .all(|&(t, _)| (0.1..2.0).contains(&t) || !a.last().unwrap().1));
        assert!(!a.last().unwrap().1, "train ends cleared");
    }

    #[test]
    fn specs_are_visible() {
        let mut plan = FaultPlan::new();
        plan.permanent(FaultKind::MemsDriveLoss, 0.0);
        let kinds: Vec<&str> = plan.specs().map(|s| s.kind.label()).collect();
        assert_eq!(kinds, ["mems_drive_loss"]);
    }

    #[test]
    fn labels_are_stable() {
        let all = [
            FaultKind::MemsDriveLoss,
            FaultKind::SensorDisconnect,
            FaultKind::AdcStuckBit {
                channel: AdcChannel::Primary,
                bit: 3,
                value: true,
            },
            FaultKind::AdcStuckCode {
                channel: AdcChannel::Secondary,
                code: 0,
            },
            FaultKind::AdcOverload {
                channel: AdcChannel::Secondary,
                gain: 4.0,
            },
            FaultKind::ReferenceDroop { frac: 0.1 },
            FaultKind::PllUnlock,
            FaultKind::SpiBitErrors { rate: 0.1 },
            FaultKind::UartBitErrors { rate: 0.1 },
            FaultKind::JtagCorruption { rate: 0.01 },
            FaultKind::CpuHang,
            FaultKind::WireNotConnected,
            FaultKind::WireShortToGround,
            FaultKind::WireReversePolarity,
        ];
        let labels: Vec<&str> = all.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            [
                "mems_drive_loss",
                "sensor_disconnect",
                "adc_stuck_bit",
                "adc_stuck_code",
                "adc_overload",
                "reference_droop",
                "pll_unlock",
                "spi_bit_errors",
                "uart_bit_errors",
                "jtag_corruption",
                "cpu_hang",
                "wire_not_connected",
                "wire_short_to_ground",
                "wire_reverse_polarity"
            ]
        );
        assert_eq!(FaultKind::ALL_LABELS.len(), labels.len());
        assert_eq!(AdcChannel::Primary.label(), "primary");
        assert_eq!(AdcChannel::Secondary.label(), "secondary");
    }
}
