//! Numeric helpers shared by models and the characterization harness.
//!
//! These are the measurement primitives behind the paper's datasheet rows:
//! linear regression gives sensitivity and nonlinearity, settling detection
//! gives turn-on time, mean/variance underpin noise figures.

/// Arithmetic mean. Returns 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for slices shorter than 2.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square.
#[must_use]
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Peak absolute value.
#[must_use]
pub fn peak(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0f64, |acc, x| acc.max(x.abs()))
}

/// Result of a least-squares straight-line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinearFit {
    /// Fitted slope (e.g. sensitivity in V per °/s).
    pub slope: f64,
    /// Fitted intercept (e.g. null voltage).
    pub intercept: f64,
    /// Maximum absolute deviation of any point from the fitted line.
    pub max_residual: f64,
    /// RMS residual.
    pub rms_residual: f64,
}

/// Least-squares line through `(x, y)` pairs.
///
/// Used by the characterization harness: fitting output voltage versus
/// applied rate yields sensitivity (slope), null (intercept) and
/// nonlinearity (max residual as a fraction of full scale).
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than 2 points, or all
/// `x` are identical.
///
/// # Example
///
/// ```
/// use ascp_sim::stats::linear_fit;
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = linear_fit(&x, &y);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "linear_fit needs equal-length slices");
    assert!(x.len() >= 2, "linear_fit needs at least two points");
    let mx = mean(x);
    let my = mean(y);
    let sxx: f64 = x.iter().map(|xi| (xi - mx) * (xi - mx)).sum();
    assert!(sxx > 0.0, "linear_fit needs at least two distinct x values");
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let mut max_residual = 0.0f64;
    let mut ss = 0.0f64;
    for (xi, yi) in x.iter().zip(y) {
        let r = yi - (slope * xi + intercept);
        max_residual = max_residual.max(r.abs());
        ss += r * r;
    }
    LinearFit {
        slope,
        intercept,
        max_residual,
        rms_residual: (ss / x.len() as f64).sqrt(),
    }
}

/// Finds the first index after which `xs` stays within `tol` of `target`
/// forever (settling detection). Returns `None` if the signal never settles.
///
/// This is the turn-on-time measurement: the paper's Table 1 quotes 500 ms
/// for the platform (PLL acquisition dominates) versus 35 ms for the
/// ADXRS300.
///
/// # Example
///
/// ```
/// use ascp_sim::stats::settling_index;
/// let xs = [5.0, 3.0, 1.2, 1.05, 0.98, 1.01, 1.0];
/// assert_eq!(settling_index(&xs, 1.0, 0.1), Some(3));
/// ```
#[must_use]
pub fn settling_index(xs: &[f64], target: f64, tol: f64) -> Option<usize> {
    let mut candidate = None;
    for (i, x) in xs.iter().enumerate() {
        if (x - target).abs() <= tol {
            if candidate.is_none() {
                candidate = Some(i);
            }
        } else {
            candidate = None;
        }
    }
    candidate
}

/// Sliding-window check that the last `window` samples of `xs` all lie
/// within `tol` of their own mean (steady-state detector for lock checks).
#[must_use]
pub fn is_settled(xs: &[f64], window: usize, tol: f64) -> bool {
    if xs.len() < window || window == 0 {
        return false;
    }
    let tail = &xs[xs.len() - window..];
    let m = mean(tail);
    tail.iter().all(|x| (x - m).abs() <= tol)
}

/// Linear interpolation of `y` at `x` given sorted sample points `xs`/`ys`.
///
/// Clamps outside the range. Used for temperature-coefficient lookup tables.
///
/// # Panics
///
/// Panics if the slices are empty or differ in length.
#[must_use]
pub fn interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "interp needs equal-length slices");
    assert!(!xs.is_empty(), "interp needs at least one point");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let i = xs.partition_point(|&p| p <= x);
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ys[i - 1], ys[i]);
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(peak(&[]), 0.0);
    }

    #[test]
    fn rms_and_peak() {
        let xs = [3.0, -4.0];
        assert!((rms(&xs) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(peak(&xs), 4.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.5 * v + 2.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!(fit.max_residual < 1e-12);
        assert!(fit.rms_residual < 1e-12);
    }

    #[test]
    fn linear_fit_reports_residuals() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.5, 2.0]; // middle point off the 0..2 line by 0.5
        let fit = linear_fit(&x, &y);
        assert!(fit.max_residual > 0.3);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn linear_fit_length_mismatch_panics() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn settling_never_settles() {
        let xs = [0.0, 2.0, 0.0, 2.0];
        assert_eq!(settling_index(&xs, 1.0, 0.5), None);
    }

    #[test]
    fn settling_at_zero_if_always_in_band() {
        let xs = [1.0, 1.01, 0.99];
        assert_eq!(settling_index(&xs, 1.0, 0.1), Some(0));
    }

    #[test]
    fn is_settled_windows() {
        let xs = [5.0, 1.0, 1.0, 1.0];
        assert!(is_settled(&xs, 3, 0.01));
        assert!(!is_settled(&xs, 4, 0.01));
        assert!(!is_settled(&xs, 0, 0.01));
    }

    #[test]
    fn interp_inside_and_clamped() {
        let xs = [0.0, 10.0, 20.0];
        let ys = [0.0, 100.0, 150.0];
        assert!((interp(&xs, &ys, 5.0) - 50.0).abs() < 1e-12);
        assert!((interp(&xs, &ys, 15.0) - 125.0).abs() < 1e-12);
        assert_eq!(interp(&xs, &ys, -5.0), 0.0);
        assert_eq!(interp(&xs, &ys, 25.0), 150.0);
    }
}
