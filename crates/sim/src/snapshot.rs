//! Binary state-snapshot primitives for deterministic checkpointing.
//!
//! Every stateful component of the platform serializes itself through a
//! [`StateWriter`] and restores through a [`StateReader`]. The encoding is
//! a compact, self-describing tree of length-prefixed *sections*:
//!
//! ```text
//! section := tag[4 bytes ASCII] kind[1 byte] len[u32 LE] payload[len bytes]
//! kind    := 0 (leaf: payload is raw scalars) | 1 (container: payload is
//!            a sequence of child sections)
//! ```
//!
//! Scalars are little-endian; `f64` travels as its IEEE-754 bit pattern
//! ([`f64::to_bits`]) so a save/restore round trip is **bit-exact** — the
//! foundation of the checkpoint guarantee that a restored platform replays
//! byte-identical traces.
//!
//! Reading is total: malformed input yields a typed [`SnapshotError`],
//! never a panic, so corrupt or truncated checkpoint files surface as
//! recoverable errors.
//!
//! # Example
//!
//! ```
//! use ascp_sim::snapshot::{StateReader, StateWriter};
//!
//! let mut w = StateWriter::new();
//! w.leaf("DEMO", |w| {
//!     w.put_u64(7);
//!     w.put_f64(1.5);
//! });
//! let bytes = w.into_bytes();
//!
//! let mut r = StateReader::new(&bytes);
//! let (a, b) = r
//!     .leaf("DEMO", |r| {
//!         let a = r.take_u64()?;
//!         let b = r.take_f64()?;
//!         Ok((a, b))
//!     })
//!     .unwrap();
//! assert_eq!((a, b), (7, 1.5));
//! ```

use std::error::Error;
use std::fmt;

/// Length of a section tag in bytes.
pub const TAG_LEN: usize = 4;

/// Section header overhead: tag + kind byte + u32 length.
pub const SECTION_HEADER_LEN: usize = TAG_LEN + 1 + 4;

/// Typed decoding failure. Every reader method returns one of these on
/// malformed input instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the requested scalar or section payload.
    Truncated {
        /// What was being decoded.
        context: String,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section tag did not match the expected component tag — the byte
    /// stream is from a different layout (or corrupted).
    SectionMismatch {
        /// Tag the decoder expected.
        expected: String,
        /// Tag found in the stream.
        found: String,
    },
    /// A section's declared length disagrees with what its decoder
    /// consumed — the payload layout does not match this build.
    LengthMismatch {
        /// Section tag.
        section: String,
        /// Length declared in the header.
        declared: usize,
        /// Bytes the decoder actually consumed.
        consumed: usize,
    },
    /// A value failed validation (bad bool byte, absurd element count,
    /// unknown enum discriminant, …).
    Corrupt {
        /// What was being decoded and why it was rejected.
        context: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated decoding {context}: needed {needed} bytes, {available} left"
            ),
            Self::SectionMismatch { expected, found } => {
                write!(f, "expected section {expected:?}, found {found:?}")
            }
            Self::LengthMismatch {
                section,
                declared,
                consumed,
            } => write!(
                f,
                "section {section:?} declares {declared} bytes but decoder consumed {consumed}"
            ),
            Self::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
        }
    }
}

impl Error for SnapshotError {}

fn tag_string(tag: &[u8]) -> String {
    String::from_utf8_lossy(tag).into_owned()
}

/// Append-only binary encoder for component state.
///
/// See the [module docs](self) for the wire format.
#[derive(Debug, Clone, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact, NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an optional `f64` as a presence byte plus the value.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        self.put_bool(v.is_some());
        self.put_f64(v.unwrap_or(0.0));
    }

    /// Appends an optional `u32` as a presence byte plus the value.
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        self.put_bool(v.is_some());
        self.put_u32(v.unwrap_or(0));
    }

    /// Appends an optional `u64` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        self.put_bool(v.is_some());
        self.put_u64(v.unwrap_or(0));
    }

    /// Appends raw bytes with a `u32` element-count prefix.
    pub fn put_u8_slice(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u16` slice with a `u32` element-count prefix.
    pub fn put_u16_slice(&mut self, v: &[u16]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u16(x);
        }
    }

    /// Appends an `i32` slice with a `u32` element-count prefix.
    pub fn put_i32_slice(&mut self, v: &[i32]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_i32(x);
        }
    }

    /// Appends an `i64` slice with a `u32` element-count prefix.
    pub fn put_i64_slice(&mut self, v: &[i64]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_i64(x);
        }
    }

    /// Appends an `f64` slice with a `u32` element-count prefix.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Writes a **leaf** section: `tag`, kind 0, and the payload produced
    /// by `f` (raw scalars, no child sections).
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not exactly [`TAG_LEN`] ASCII bytes.
    pub fn leaf(&mut self, tag: &str, f: impl FnOnce(&mut Self)) {
        self.section_inner(tag, 0, f);
    }

    /// Writes a **container** section: `tag`, kind 1, whose payload is the
    /// sequence of child sections produced by `f`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not exactly [`TAG_LEN`] ASCII bytes.
    pub fn container(&mut self, tag: &str, f: impl FnOnce(&mut Self)) {
        self.section_inner(tag, 1, f);
    }

    fn section_inner(&mut self, tag: &str, kind: u8, f: impl FnOnce(&mut Self)) {
        assert!(
            tag.len() == TAG_LEN && tag.is_ascii(),
            "section tag must be {TAG_LEN} ASCII bytes, got {tag:?}"
        );
        self.buf.extend_from_slice(tag.as_bytes());
        self.buf.push(kind);
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        f(self);
        let payload = self.buf.len() - len_at - 4;
        let payload = u32::try_from(payload).expect("section payload exceeds u32");
        self.buf[len_at..len_at + 4].copy_from_slice(&payload.to_le_bytes());
    }
}

/// Cursor-based decoder over a snapshot byte slice.
///
/// Every method is total: out-of-bounds reads and malformed values return
/// [`SnapshotError`] instead of panicking.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the cursor has consumed the whole buffer.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take_bytes(&mut self, n: usize, context: &str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context: context.to_owned(),
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the buffer is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take_bytes(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 2 bytes remain.
    pub fn take_u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take_bytes(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take_bytes(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take_bytes(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 4 bytes remain.
    pub fn take_i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(self.take_u32()? as i32)
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.take_u64()? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] on exhaustion,
    /// [`SnapshotError::Corrupt`] on any byte other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt {
                context: format!("bool byte {b:#04x} (must be 0 or 1)"),
            }),
        }
    }

    /// Reads an optional `f64` (presence byte + value).
    ///
    /// # Errors
    ///
    /// Propagates the underlying scalar errors.
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        let present = self.take_bool()?;
        let v = self.take_f64()?;
        Ok(present.then_some(v))
    }

    /// Reads an optional `u32` (presence byte + value).
    ///
    /// # Errors
    ///
    /// Propagates the underlying scalar errors.
    pub fn take_opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        let present = self.take_bool()?;
        let v = self.take_u32()?;
        Ok(present.then_some(v))
    }

    /// Reads an optional `u64` (presence byte + value).
    ///
    /// # Errors
    ///
    /// Propagates the underlying scalar errors.
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        let present = self.take_bool()?;
        let v = self.take_u64()?;
        Ok(present.then_some(v))
    }

    fn take_count(&mut self, elem_size: usize, context: &str) -> Result<usize, SnapshotError> {
        let n = self.take_u32()? as usize;
        // An element count larger than the remaining payload can never be
        // valid; reject it before any allocation.
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "{context} count {n} exceeds remaining {} bytes",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
    /// malformed input.
    pub fn take_u8_vec(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.take_count(1, "u8 slice")?;
        Ok(self.take_bytes(n, "u8 slice")?.to_vec())
    }

    /// Reads a length-prefixed `u16` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
    /// malformed input.
    pub fn take_u16_vec(&mut self) -> Result<Vec<u16>, SnapshotError> {
        let n = self.take_count(2, "u16 slice")?;
        (0..n).map(|_| self.take_u16()).collect()
    }

    /// Reads a length-prefixed `i32` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
    /// malformed input.
    pub fn take_i32_vec(&mut self) -> Result<Vec<i32>, SnapshotError> {
        let n = self.take_count(4, "i32 slice")?;
        (0..n).map(|_| self.take_i32()).collect()
    }

    /// Reads a length-prefixed `i64` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
    /// malformed input.
    pub fn take_i64_vec(&mut self) -> Result<Vec<i64>, SnapshotError> {
        let n = self.take_count(8, "i64 slice")?;
        (0..n).map(|_| self.take_i64()).collect()
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
    /// malformed input.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.take_count(8, "f64 slice")?;
        (0..n).map(|_| self.take_f64()).collect()
    }

    /// Tag of the next section without consuming it, or `None` at the end
    /// of the buffer.
    #[must_use]
    pub fn peek_tag(&self) -> Option<String> {
        let rest = &self.buf[self.pos..];
        (rest.len() >= TAG_LEN).then(|| tag_string(&rest[..TAG_LEN]))
    }

    /// Decodes a **leaf** section written by [`StateWriter::leaf`].
    ///
    /// Verifies the tag, bounds the payload, runs `f` over it, and checks
    /// the decoder consumed the payload exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::SectionMismatch`] on tag mismatch,
    /// [`SnapshotError::LengthMismatch`] if `f` leaves bytes unread, plus
    /// the underlying truncation/corruption errors.
    pub fn leaf<T>(
        &mut self,
        tag: &str,
        f: impl FnOnce(&mut StateReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        self.section_inner(tag, 0, f)
    }

    /// Decodes a **container** section written by
    /// [`StateWriter::container`].
    ///
    /// # Errors
    ///
    /// Same classes as [`StateReader::leaf`].
    pub fn container<T>(
        &mut self,
        tag: &str,
        f: impl FnOnce(&mut StateReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        self.section_inner(tag, 1, f)
    }

    fn section_inner<T>(
        &mut self,
        tag: &str,
        expected_kind: u8,
        f: impl FnOnce(&mut StateReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        assert!(
            tag.len() == TAG_LEN && tag.is_ascii(),
            "section tag must be {TAG_LEN} ASCII bytes, got {tag:?}"
        );
        let found = self.take_bytes(TAG_LEN, "section tag")?;
        if found != tag.as_bytes() {
            return Err(SnapshotError::SectionMismatch {
                expected: tag.to_owned(),
                found: tag_string(found),
            });
        }
        let kind = self.take_u8()?;
        if kind != expected_kind {
            return Err(SnapshotError::Corrupt {
                context: format!("section {tag:?} kind byte {kind} (expected {expected_kind})"),
            });
        }
        let len = self.take_u32()? as usize;
        let payload =
            self.take_bytes(len, "section payload")
                .map_err(|_| SnapshotError::Truncated {
                    context: format!("section {tag:?} payload"),
                    needed: len,
                    available: self.buf.len() - self.pos,
                })?;
        let mut sub = StateReader::new(payload);
        let out = f(&mut sub)?;
        if !sub.is_exhausted() {
            return Err(SnapshotError::LengthMismatch {
                section: tag.to_owned(),
                declared: len,
                consumed: len - sub.remaining(),
            });
        }
        Ok(out)
    }
}

/// FNV-1a 64-bit hash, used for checkpoint config digests and warm-start
/// cache keys (stable across platforms and runs, no external deps).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a snapshot byte stream (a sequence of sections) as indented
/// JSON for debugging: container sections recurse, leaf payloads show
/// their length and a hex prefix.
///
/// # Errors
///
/// Returns the underlying [`SnapshotError`] if the stream is malformed.
pub fn dump_sections_json(bytes: &[u8]) -> Result<String, SnapshotError> {
    let mut out = String::from("[");
    dump_level(bytes, 1, &mut out)?;
    out.push_str("\n]");
    Ok(out)
}

fn dump_level(bytes: &[u8], depth: usize, out: &mut String) -> Result<(), SnapshotError> {
    let mut r = StateReader::new(bytes);
    let indent = "  ".repeat(depth);
    let mut first = true;
    while !r.is_exhausted() {
        let tag_bytes = r.take_bytes(TAG_LEN, "section tag")?;
        let tag = tag_string(tag_bytes);
        let kind = r.take_u8()?;
        let len = r.take_u32()? as usize;
        let payload = r.take_bytes(len, "section payload")?;
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&indent);
        match kind {
            1 => {
                out.push_str(&format!(
                    "{{\"section\": {:?}, \"len\": {len}, \"children\": [",
                    tag
                ));
                dump_level(payload, depth + 1, out)?;
                out.push('\n');
                out.push_str(&indent);
                out.push_str("]}");
            }
            0 => {
                let prefix: String = payload
                    .iter()
                    .take(24)
                    .map(|b| format!("{b:02x}"))
                    .collect();
                let ellipsis = if len > 24 { "…" } else { "" };
                out.push_str(&format!(
                    "{{\"section\": {:?}, \"len\": {len}, \"data\": \"{prefix}{ellipsis}\"}}",
                    tag
                ));
            }
            k => {
                return Err(SnapshotError::Corrupt {
                    context: format!("section {tag:?} kind byte {k}"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip_is_bit_exact() {
        let mut w = StateWriter::new();
        w.put_u8(0xa5);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i32(-7);
        w.put_i64(i64::MIN);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(2.5));
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xa5);
        assert_eq!(r.take_u16().unwrap(), 0xbeef);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_i32().unwrap(), -7);
        assert_eq!(r.take_i64().unwrap(), i64::MIN);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_opt_f64().unwrap(), None);
        assert_eq!(r.take_opt_f64().unwrap(), Some(2.5));
        assert!(r.is_exhausted());
    }

    #[test]
    fn slices_round_trip() {
        let mut w = StateWriter::new();
        w.put_u8_slice(&[1, 2, 3]);
        w.put_u16_slice(&[10, 20]);
        w.put_i32_slice(&[-1, 0, 1]);
        w.put_i64_slice(&[i64::MAX]);
        w.put_f64_slice(&[1.25, -3.5]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_u8_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_u16_vec().unwrap(), vec![10, 20]);
        assert_eq!(r.take_i32_vec().unwrap(), vec![-1, 0, 1]);
        assert_eq!(r.take_i64_vec().unwrap(), vec![i64::MAX]);
        assert_eq!(r.take_f64_vec().unwrap(), vec![1.25, -3.5]);
    }

    #[test]
    fn nested_sections_round_trip() {
        let mut w = StateWriter::new();
        w.container("PLAT", |w| {
            w.leaf("RNG0", |w| w.put_u64(42));
            w.container("CHN0", |w| {
                w.leaf("PLL0", |w| w.put_f64(15000.0));
            });
        });
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.container("PLAT", |r| {
            let s = r.leaf("RNG0", |r| r.take_u64())?;
            assert_eq!(s, 42);
            r.container("CHN0", |r| {
                let f = r.leaf("PLL0", |r| r.take_f64())?;
                assert!((f - 15000.0).abs() < 1e-12);
                Ok(())
            })
        })
        .unwrap();
        assert!(r.is_exhausted());
    }

    #[test]
    fn wrong_tag_is_section_mismatch() {
        let mut w = StateWriter::new();
        w.leaf("AAAA", |w| w.put_u8(1));
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let err = r.leaf("BBBB", |r| r.take_u8()).unwrap_err();
        assert!(matches!(err, SnapshotError::SectionMismatch { .. }));
    }

    #[test]
    fn truncated_buffer_is_typed_error() {
        let mut w = StateWriter::new();
        w.leaf("AAAA", |w| w.put_u64(7));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = StateReader::new(&bytes[..cut]);
            let err = r.leaf("AAAA", |r| r.take_u64());
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn under_consumed_section_is_length_mismatch() {
        let mut w = StateWriter::new();
        w.leaf("AAAA", |w| {
            w.put_u8(1);
            w.put_u8(2);
        });
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let err = r.leaf("AAAA", |r| r.take_u8()).unwrap_err();
        assert!(matches!(err, SnapshotError::LengthMismatch { .. }));
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut r = StateReader::new(&[7]);
        assert!(matches!(
            r.take_bool().unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn absurd_count_rejected_without_allocation() {
        let mut w = StateWriter::new();
        w.put_u32(u32::MAX); // claims 4 billion elements in a 4-byte buffer
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(matches!(
            r.take_f64_vec().unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn json_dump_walks_tree() {
        let mut w = StateWriter::new();
        w.container("PLAT", |w| {
            w.leaf("RNG0", |w| w.put_u64(42));
        });
        let json = dump_sections_json(&w.into_bytes()).unwrap();
        assert!(json.contains("\"PLAT\""));
        assert!(json.contains("\"RNG0\""));
        assert!(json.contains("children"));
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
