//! Seeded noise sources for analog and MEMS models.
//!
//! The platform's noise budget is dominated by three shapes:
//!
//! - **white** noise (thermal / Brownian force, ADC quantization dither),
//! - **pink** (1/f, flicker) noise from the CMOS front-end amplifiers,
//! - **random walk** (bias instability of the rate output over temperature
//!   and time).
//!
//! All sources are deterministic given a seed so experiments are exactly
//! reproducible — the simulation-kernel equivalent of a logged bench
//! measurement. Every source exposes `save_state`/`load_state` over the
//! [`crate::snapshot`] primitives so the platform checkpoint can capture
//! RNG streams bit-exactly mid-run.

use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// Minimal deterministic PRNG: xorshift64* with a SplitMix64-scrambled
/// seed.
///
/// Vendored so the simulation kernel has no external dependencies (the
/// build must work with no registry access). The statistical quality is
/// more than sufficient for noise synthesis: xorshift64* passes the usual
/// empirical batteries except for the lowest bit, and all consumers here
/// use the high 53 bits via [`Rng64::next_f64`].
///
/// # Example
///
/// ```
/// use ascp_sim::noise::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from any 64-bit seed (zero included).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 finalizer: decorrelates sequential/sparse seeds and
        // maps 0 to a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform sample in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && (hi - lo).is_finite(), "empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Serializes the generator state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.state);
    }

    /// Restores the generator state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.state = r.take_u64()?;
        if self.state == 0 {
            // A zero xorshift state is absorbing; it can never be produced
            // by a healthy generator, so the bytes are corrupt.
            return Err(SnapshotError::Corrupt {
                context: "Rng64 state of zero".to_owned(),
            });
        }
        Ok(())
    }
}

/// Gaussian white-noise source (Box–Muller over a seeded PRNG).
///
/// `sigma` is the standard deviation of each sample. For a band-limited
/// process sampled at `fs`, a white density of `d` units/√Hz corresponds to
/// `sigma = d * sqrt(fs / 2)`; use [`WhiteNoise::from_density`].
///
/// # Example
///
/// ```
/// use ascp_sim::noise::WhiteNoise;
/// let mut n = WhiteNoise::new(1.0, 42);
/// let x = n.sample();
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct WhiteNoise {
    sigma: f64,
    rng: Rng64,
    cached: Option<f64>,
}

impl WhiteNoise {
    /// Creates a source with per-sample standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative, got {sigma}"
        );
        Self {
            sigma,
            rng: Rng64::new(seed),
            cached: None,
        }
    }

    /// Creates a source from a one-sided spectral density `density`
    /// (units/√Hz) at sample rate `fs` (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `density` is negative or `fs` is not positive.
    #[must_use]
    pub fn from_density(density: f64, fs: f64, seed: u64) -> Self {
        assert!(fs > 0.0, "sample rate must be positive, got {fs}");
        Self::new(density * (fs / 2.0).sqrt(), seed)
    }

    /// Per-sample standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws the next Gaussian sample.
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        if let Some(z) = self.cached.take() {
            return z * self.sigma;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1: f64 = loop {
            let u = self.rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }

    /// Serializes sigma, the PRNG, and the cached Box–Muller half-sample.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.sigma);
        self.rng.save_state(w);
        w.put_opt_f64(self.cached);
    }

    /// Restores the full source state (bit-exact continuation).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.sigma = r.take_f64()?;
        self.rng.load_state(r)?;
        self.cached = r.take_opt_f64()?;
        Ok(())
    }
}

/// Pink (1/f) noise via the Voss–McCartney multi-row algorithm.
///
/// Approximates a −10 dB/decade power slope over ~`rows` octaves; used for
/// amplifier flicker noise below the corner frequency.
#[derive(Debug, Clone)]
pub struct PinkNoise {
    white: WhiteNoise,
    rows: Vec<f64>,
    counter: u64,
    scale: f64,
}

impl PinkNoise {
    /// Creates a pink source whose long-run RMS is approximately `sigma`,
    /// shaped over `rows` octaves (typically 12–16).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `sigma` is negative/not finite.
    #[must_use]
    pub fn new(sigma: f64, rows: usize, seed: u64) -> Self {
        assert!(rows > 0, "pink noise needs at least one row");
        let n = rows as f64;
        Self {
            white: WhiteNoise::new(1.0, seed),
            rows: vec![0.0; rows],
            counter: 0,
            // The sum of `rows` unit-variance rows has variance `rows`.
            scale: sigma / n.sqrt(),
        }
    }

    /// Draws the next pink sample.
    pub fn sample(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // Update the row selected by the lowest set bit of the counter: row
        // k updates every 2^k samples, giving the 1/f ladder.
        let k = (self.counter.trailing_zeros() as usize).min(self.rows.len() - 1);
        self.rows[k] = self.white.sample();
        self.rows.iter().sum::<f64>() * self.scale
    }

    /// Serializes the inner white source, row ladder, counter and scale.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.white.save_state(w);
        w.put_f64_slice(&self.rows);
        w.put_u64(self.counter);
        w.put_f64(self.scale);
    }

    /// Restores the full source state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input; the saved row
    /// ladder must be non-empty.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.white.load_state(r)?;
        let rows = r.take_f64_vec()?;
        if rows.is_empty() {
            return Err(SnapshotError::Corrupt {
                context: "pink noise with zero rows".to_owned(),
            });
        }
        self.rows = rows;
        self.counter = r.take_u64()?;
        self.scale = r.take_f64()?;
        Ok(())
    }
}

/// Integrated-white (random-walk / Brownian) noise source.
///
/// Each call adds a Gaussian increment of standard deviation
/// `sigma_per_sample` to an internal state; models rate-output bias drift.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    white: WhiteNoise,
    state: f64,
    limit: f64,
}

impl RandomWalk {
    /// Creates a walk with per-sample increment sigma and a reflecting limit
    /// (`limit`, use `f64::INFINITY` for an unbounded walk).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not positive.
    #[must_use]
    pub fn new(sigma_per_sample: f64, limit: f64, seed: u64) -> Self {
        assert!(limit > 0.0, "random walk limit must be positive");
        Self {
            white: WhiteNoise::new(sigma_per_sample, seed),
            state: 0.0,
            limit,
        }
    }

    /// Advances the walk and returns the new state.
    pub fn sample(&mut self) -> f64 {
        self.state += self.white.sample();
        // Reflect at the limit so the bias stays physically bounded.
        if self.state > self.limit {
            self.state = 2.0 * self.limit - self.state;
        } else if self.state < -self.limit {
            self.state = -2.0 * self.limit - self.state;
        }
        self.state
    }

    /// Current state without advancing.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Serializes the inner white source, walk state and limit.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.white.save_state(w);
        w.put_f64(self.state);
        w.put_f64(self.limit);
    }

    /// Restores the full source state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.white.load_state(r)?;
        self.state = r.take_f64()?;
        self.limit = r.take_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rng64_uniformity_and_determinism() {
        let mut a = Rng64::new(0);
        let mut b = Rng64::new(0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Rng64::new(1234);
        let xs: Vec<f64> = (0..100_000).map(|_| r.next_f64()).collect();
        let mean = stats::mean(&xs);
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
        // Variance of U(0,1) is 1/12.
        let var = stats::variance(&xs);
        assert!((var - 1.0 / 12.0).abs() < 0.005, "uniform variance {var}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn rng64_distinct_seeds_diverge() {
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(6);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn white_noise_is_reproducible() {
        let mut a = WhiteNoise::new(1.0, 7);
        let mut b = WhiteNoise::new(1.0, 7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn white_noise_distinct_seeds_differ() {
        let mut a = WhiteNoise::new(1.0, 1);
        let mut b = WhiteNoise::new(1.0, 2);
        let same = (0..32).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 4);
    }

    #[test]
    fn white_noise_moments() {
        let mut n = WhiteNoise::new(2.0, 99);
        let xs: Vec<f64> = (0..200_000).map(|_| n.sample()).collect();
        let mean = stats::mean(&xs);
        let sd = stats::std_dev(&xs);
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((sd - 2.0).abs() < 0.02, "std dev {sd} too far from 2");
    }

    #[test]
    fn white_noise_zero_sigma_is_silent() {
        let mut n = WhiteNoise::new(0.0, 3);
        assert!((0..10).all(|_| n.sample() == 0.0));
    }

    #[test]
    fn density_scaling_matches_sigma() {
        let n = WhiteNoise::from_density(0.1, 200.0, 0);
        assert!((n.sigma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pink_noise_low_frequency_dominates() {
        // Pink noise should have more power in the slow rows: compare
        // variance of raw samples to variance of first differences. For
        // white noise var(diff) = 2*var; for pink it is much lower.
        let mut p = PinkNoise::new(1.0, 14, 5);
        let xs: Vec<f64> = (0..100_000).map(|_| p.sample()).collect();
        let var = stats::variance(&xs);
        let diffs: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let var_diff = stats::variance(&diffs);
        assert!(
            var_diff < 1.2 * var,
            "pink spectrum not low-frequency weighted: var={var} var_diff={var_diff}"
        );
    }

    #[test]
    fn random_walk_respects_limit() {
        let mut w = RandomWalk::new(0.5, 1.0, 11);
        for _ in 0..10_000 {
            let v = w.sample();
            assert!(v.abs() <= 1.0 + 1e-9, "walk escaped limit: {v}");
        }
    }

    #[test]
    fn random_walk_value_matches_last_sample() {
        let mut w = RandomWalk::new(0.1, 10.0, 13);
        let s = w.sample();
        assert_eq!(s, w.value());
    }
}
