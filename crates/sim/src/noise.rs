//! Seeded noise sources for analog and MEMS models.
//!
//! The platform's noise budget is dominated by three shapes:
//!
//! - **white** noise (thermal / Brownian force, ADC quantization dither),
//! - **pink** (1/f, flicker) noise from the CMOS front-end amplifiers,
//! - **random walk** (bias instability of the rate output over temperature
//!   and time).
//!
//! All sources are deterministic given a seed so experiments are exactly
//! reproducible — the simulation-kernel equivalent of a logged bench
//! measurement. Every source exposes `save_state`/`load_state` over the
//! [`crate::snapshot`] primitives so the platform checkpoint can capture
//! RNG streams bit-exactly mid-run.

use crate::mathx;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// Minimal deterministic PRNG: xorshift64* with a SplitMix64-scrambled
/// seed.
///
/// Vendored so the simulation kernel has no external dependencies (the
/// build must work with no registry access). The statistical quality is
/// more than sufficient for noise synthesis: xorshift64* passes the usual
/// empirical batteries except for the lowest bit, and all consumers here
/// use the high 53 bits via [`Rng64::next_f64`].
///
/// # Example
///
/// ```
/// use ascp_sim::noise::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from any 64-bit seed (zero included).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 finalizer: decorrelates sequential/sparse seeds and
        // maps 0 to a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        xorshift_next(&mut self.state)
    }

    /// Uniform sample in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        uniform_53(self.next_u64())
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && (hi - lo).is_finite(), "empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Serializes the generator state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.state);
    }

    /// Restores the generator state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.state = r.take_u64()?;
        if self.state == 0 {
            // A zero xorshift state is absorbing; it can never be produced
            // by a healthy generator, so the bytes are corrupt.
            return Err(SnapshotError::Corrupt {
                context: "Rng64 state of zero".to_owned(),
            });
        }
        Ok(())
    }
}

/// One xorshift64* advance on a raw state word — the single source of
/// truth for the sequence, shared by [`Rng64`] and the batched
/// [`WhiteLanes`] path so both walks are bit-identical.
#[inline(always)]
fn xorshift_next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Maps a raw output word to a uniform in `[0, 1)` via the top 53 bits.
#[inline(always)]
fn uniform_53(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// [`uniform_53`] rewritten without the `u64 → f64` cast, which has no
/// AVX2 instruction and scalarizes any loop containing it. The 53-bit
/// integer is split into 32-bit halves, each planted in a double's
/// mantissa field, and recombined with adds that are provably exact
/// (every intermediate is an integer below 2^53, hence representable) —
/// so the result is bit-identical to the cast, but the loop vectorizes.
#[inline(always)]
fn uniform_53_split(word: u64) -> f64 {
    // 2^84 + 2^52: the exponent offsets planted in the halves below.
    const MAGIC: f64 = (1u128 << 84) as f64 + (1u64 << 52) as f64;
    let u = word >> 11;
    let hi = f64::from_bits((u >> 32) | (0x453u64 << 52)); // 2^84 + (u>>32)·2^32
    let lo = f64::from_bits((u & 0xffff_ffff) | (0x433u64 << 52)); // 2^52 + (u & 2^32-1)
    ((hi - MAGIC) + lo) * (1.0 / (1u64 << 53) as f64)
}

/// Gaussian white-noise source (Box–Muller over a seeded PRNG).
///
/// `sigma` is the standard deviation of each sample. For a band-limited
/// process sampled at `fs`, a white density of `d` units/√Hz corresponds to
/// `sigma = d * sqrt(fs / 2)`; use [`WhiteNoise::from_density`].
///
/// # Example
///
/// ```
/// use ascp_sim::noise::WhiteNoise;
/// let mut n = WhiteNoise::new(1.0, 42);
/// let x = n.sample();
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct WhiteNoise {
    sigma: f64,
    rng: Rng64,
    cached: Option<f64>,
}

impl WhiteNoise {
    /// Creates a source with per-sample standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative, got {sigma}"
        );
        Self {
            sigma,
            rng: Rng64::new(seed),
            cached: None,
        }
    }

    /// Creates a source from a one-sided spectral density `density`
    /// (units/√Hz) at sample rate `fs` (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `density` is negative or `fs` is not positive.
    #[must_use]
    pub fn from_density(density: f64, fs: f64, seed: u64) -> Self {
        assert!(fs > 0.0, "sample rate must be positive, got {fs}");
        Self::new(density * (fs / 2.0).sqrt(), seed)
    }

    /// Per-sample standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws the next Gaussian sample.
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        if let Some(z) = self.cached.take() {
            return z * self.sigma;
        }
        // Box–Muller: two uniforms -> two independent normals, through the
        // deterministic `mathx` kernels so scalar and SoA-lane execution
        // produce identical bits.
        let u1: f64 = loop {
            let u = self.rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = self.rng.next_f64();
        let (z_cos, z_sin) = mathx::box_muller(u1, u2);
        self.cached = Some(z_sin);
        z_cos * self.sigma
    }

    /// Serializes sigma, the PRNG, and the cached Box–Muller half-sample.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.sigma);
        self.rng.save_state(w);
        w.put_opt_f64(self.cached);
    }

    /// Restores the full source state (bit-exact continuation).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.sigma = r.take_f64()?;
        self.rng.load_state(r)?;
        self.cached = r.take_opt_f64()?;
        Ok(())
    }
}

/// Pink (1/f) noise via the Voss–McCartney multi-row algorithm.
///
/// Approximates a −10 dB/decade power slope over ~`rows` octaves; used for
/// amplifier flicker noise below the corner frequency.
#[derive(Debug, Clone)]
pub struct PinkNoise {
    white: WhiteNoise,
    rows: Vec<f64>,
    counter: u64,
    scale: f64,
}

impl PinkNoise {
    /// Creates a pink source whose long-run RMS is approximately `sigma`,
    /// shaped over `rows` octaves (typically 12–16).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `sigma` is negative/not finite.
    #[must_use]
    pub fn new(sigma: f64, rows: usize, seed: u64) -> Self {
        assert!(rows > 0, "pink noise needs at least one row");
        let n = rows as f64;
        Self {
            white: WhiteNoise::new(1.0, seed),
            rows: vec![0.0; rows],
            counter: 0,
            // The sum of `rows` unit-variance rows has variance `rows`.
            scale: sigma / n.sqrt(),
        }
    }

    /// Draws the next pink sample.
    pub fn sample(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // Update the row selected by the lowest set bit of the counter: row
        // k updates every 2^k samples, giving the 1/f ladder.
        let k = (self.counter.trailing_zeros() as usize).min(self.rows.len() - 1);
        self.rows[k] = self.white.sample();
        self.rows.iter().sum::<f64>() * self.scale
    }

    /// Serializes the inner white source, row ladder, counter and scale.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.white.save_state(w);
        w.put_f64_slice(&self.rows);
        w.put_u64(self.counter);
        w.put_f64(self.scale);
    }

    /// Restores the full source state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input; the saved row
    /// ladder must be non-empty.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.white.load_state(r)?;
        let rows = r.take_f64_vec()?;
        if rows.is_empty() {
            return Err(SnapshotError::Corrupt {
                context: "pink noise with zero rows".to_owned(),
            });
        }
        self.rows = rows;
        self.counter = r.take_u64()?;
        self.scale = r.take_f64()?;
        Ok(())
    }
}

/// Structure-of-arrays mirror of N [`WhiteNoise`] sources stepping in
/// lockstep — the fleet execution path.
///
/// Extraction captures each lane's PRNG walk, Box–Muller cache and sigma;
/// [`WhiteLanes::sample`] then advances every lane by exactly one draw,
/// with the expensive `ln`/`sincos`/`sqrt` work batched over contiguous
/// arrays (see [`crate::mathx`]) so it auto-vectorizes. Per-lane outputs
/// are bit-identical to calling [`WhiteNoise::sample`] on each source —
/// the property the fleet's byte-identical-CSV contract rests on.
///
/// Lockstep requires a *uniform* lane population: every lane on the same
/// Box–Muller phase, and sigmas either all zero or all nonzero (a
/// zero-sigma source never advances its PRNG). [`WhiteLanes::extract`]
/// returns `None` when the population is mixed; callers fall back to
/// scalar sampling.
#[derive(Debug, Clone)]
pub struct WhiteLanes {
    sigma: Vec<f64>,
    state: Vec<u64>,
    cached: Vec<f64>,
    has_cached: bool,
    all_zero: bool,
    // Scratch buffers for the batched transform.
    u1: Vec<f64>,
    u2: Vec<f64>,
    z_cos: Vec<f64>,
    z_sin: Vec<f64>,
}

impl WhiteLanes {
    /// Captures a lane population from the given sources. Returns `None`
    /// if the lanes cannot step in lockstep (mixed Box–Muller phase, or a
    /// mix of zero and nonzero sigmas).
    pub fn extract<'a>(sources: impl Iterator<Item = &'a WhiteNoise>) -> Option<Self> {
        let mut sigma = Vec::new();
        let mut state = Vec::new();
        let mut cached = Vec::new();
        let mut phase: Option<bool> = None;
        for s in sources {
            match phase {
                None => phase = Some(s.cached.is_some()),
                Some(p) if p != s.cached.is_some() => return None,
                Some(_) => {}
            }
            sigma.push(s.sigma);
            state.push(s.rng.state);
            cached.push(s.cached.unwrap_or(0.0));
        }
        let n = sigma.len();
        let zeros = sigma.iter().filter(|&&s| s == 0.0).count();
        if zeros != 0 && zeros != n {
            return None;
        }
        Some(Self {
            sigma,
            state,
            cached,
            has_cached: phase.unwrap_or(false),
            all_zero: zeros == n && n > 0,
            u1: vec![0.0; n],
            u2: vec![0.0; n],
            z_cos: vec![0.0; n],
            z_sin: vec![0.0; n],
        })
    }

    /// Writes the lane state back into the sources (same order and count
    /// as extraction).
    pub fn restore<'a>(&self, sources: impl Iterator<Item = &'a mut WhiteNoise>) {
        for (l, s) in sources.enumerate() {
            s.rng.state = self.state[l];
            s.cached = if self.has_cached {
                Some(self.cached[l])
            } else {
                None
            };
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.sigma.len()
    }

    /// Draws one sample per lane into `out` (`out.len()` must equal
    /// [`WhiteLanes::lanes`]). Bit-identical per lane to
    /// [`WhiteNoise::sample`].
    pub fn sample(&mut self, out: &mut [f64]) {
        let n = self.state.len();
        assert_eq!(out.len(), n, "lane count mismatch");
        if self.all_zero {
            out.fill(0.0);
            return;
        }
        if self.has_cached {
            self.has_cached = false;
            for (o, (&z, &sg)) in out.iter_mut().zip(self.cached.iter().zip(&self.sigma)) {
                *o = z * sg;
            }
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            // AVX2 only — see `mathx::box_muller_slice` for why there is
            // deliberately no AVX-512 tier.
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: guarded by the runtime AVX2 check above.
                unsafe { self.transform_avx2(out) };
                return;
            }
        }
        self.transform(out);
    }

    /// The Box–Muller tick: advance every lane's PRNG twice (u1 with
    /// rejection, then u2), transform, emit cos and cache sin.
    /// The rejection branch fires with probability 2^-53 — the repair
    /// loop below keeps the per-lane sequence exactly equal to the
    /// scalar path without blocking vectorization of the common case.
    #[inline(always)]
    fn transform(&mut self, out: &mut [f64]) {
        let n = self.state.len();
        for l in 0..n {
            self.u1[l] = uniform_53_split(xorshift_next(&mut self.state[l]));
        }
        for l in 0..n {
            while self.u1[l] == 0.0 {
                self.u1[l] = uniform_53_split(xorshift_next(&mut self.state[l]));
            }
        }
        for l in 0..n {
            self.u2[l] = uniform_53_split(xorshift_next(&mut self.state[l]));
        }
        mathx::box_muller_slice(&self.u1, &self.u2, &mut self.z_cos, &mut self.z_sin);
        for (o, (&zc, &sg)) in out.iter_mut().zip(self.z_cos.iter().zip(&self.sigma)) {
            *o = zc * sg;
        }
        self.cached.copy_from_slice(&self.z_sin);
        self.has_cached = true;
    }

    /// AVX2 copy of the transform: vectorizes the xorshift walk (64-bit
    /// shifts, xors, and the constant multiply, which LLVM lowers through
    /// `vpmuludq` pieces) and the split-add uniform conversion around the
    /// already-dispatched Box–Muller batch. Integer and IEEE float ops
    /// produce identical bits at any width.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn transform_avx2(&mut self, out: &mut [f64]) {
        self.transform(out);
    }
}

/// Structure-of-arrays mirror of N [`PinkNoise`] sources in lockstep.
///
/// The Voss–McCartney row index is a pure function of the shared sample
/// counter, so lockstep lanes always update the same row: one batched
/// white draw plus a vertical row sum per sample. Bit-identical per lane
/// to [`PinkNoise::sample`].
#[derive(Debug, Clone)]
pub struct PinkLanes {
    white: WhiteLanes,
    /// Row ladder, `[row][lane]` contiguous by lane.
    rows: Vec<f64>,
    n_rows: usize,
    counter: u64,
    scale: Vec<f64>,
    draw: Vec<f64>,
}

impl PinkLanes {
    /// Captures a lane population. Returns `None` if the sources disagree
    /// on row count or counter phase, or their inner white sources cannot
    /// run in lockstep.
    pub fn extract<'a>(sources: impl Iterator<Item = &'a PinkNoise>) -> Option<Self> {
        let sources: Vec<&PinkNoise> = sources.collect();
        let first = sources.first()?;
        let n_rows = first.rows.len();
        let counter = first.counter;
        if sources
            .iter()
            .any(|s| s.rows.len() != n_rows || s.counter != counter)
        {
            return None;
        }
        let white = WhiteLanes::extract(sources.iter().map(|s| &s.white))?;
        let n = sources.len();
        let mut rows = vec![0.0; n_rows * n];
        for (l, s) in sources.iter().enumerate() {
            for (r, &v) in s.rows.iter().enumerate() {
                rows[r * n + l] = v;
            }
        }
        Some(Self {
            white,
            rows,
            n_rows,
            counter,
            scale: sources.iter().map(|s| s.scale).collect(),
            draw: vec![0.0; n],
        })
    }

    /// Writes the lane state back into the sources (row ladder, counter,
    /// and the inner white source's PRNG walk and cache).
    pub fn restore<'a>(&self, sources: impl Iterator<Item = &'a mut PinkNoise>) {
        let n = self.scale.len();
        for (l, s) in sources.enumerate() {
            for r in 0..self.n_rows {
                s.rows[r] = self.rows[r * n + l];
            }
            s.counter = self.counter;
            s.white.rng.state = self.white.state[l];
            s.white.cached = if self.white.has_cached {
                Some(self.white.cached[l])
            } else {
                None
            };
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.scale.len()
    }

    /// Draws one sample per lane into `out`.
    pub fn sample(&mut self, out: &mut [f64]) {
        let n = self.scale.len();
        assert_eq!(out.len(), n, "lane count mismatch");
        self.counter = self.counter.wrapping_add(1);
        let k = (self.counter.trailing_zeros() as usize).min(self.n_rows - 1);
        self.white.sample(&mut self.draw);
        self.rows[k * n..(k + 1) * n].copy_from_slice(&self.draw);
        // Vertical sum in scalar row order (row 0 first) so each lane's
        // accumulation matches `rows.iter().sum()` bit-for-bit.
        out.copy_from_slice(&self.rows[..n]);
        for r in 1..self.n_rows {
            let row = &self.rows[r * n..(r + 1) * n];
            for l in 0..n {
                out[l] += row[l];
            }
        }
        for (o, &sc) in out.iter_mut().zip(&self.scale) {
            *o *= sc;
        }
    }
}

/// Integrated-white (random-walk / Brownian) noise source.
///
/// Each call adds a Gaussian increment of standard deviation
/// `sigma_per_sample` to an internal state; models rate-output bias drift.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    white: WhiteNoise,
    state: f64,
    limit: f64,
}

impl RandomWalk {
    /// Creates a walk with per-sample increment sigma and a reflecting limit
    /// (`limit`, use `f64::INFINITY` for an unbounded walk).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not positive.
    #[must_use]
    pub fn new(sigma_per_sample: f64, limit: f64, seed: u64) -> Self {
        assert!(limit > 0.0, "random walk limit must be positive");
        Self {
            white: WhiteNoise::new(sigma_per_sample, seed),
            state: 0.0,
            limit,
        }
    }

    /// Advances the walk and returns the new state.
    pub fn sample(&mut self) -> f64 {
        self.state += self.white.sample();
        // Reflect at the limit so the bias stays physically bounded.
        if self.state > self.limit {
            self.state = 2.0 * self.limit - self.state;
        } else if self.state < -self.limit {
            self.state = -2.0 * self.limit - self.state;
        }
        self.state
    }

    /// Current state without advancing.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Serializes the inner white source, walk state and limit.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.white.save_state(w);
        w.put_f64(self.state);
        w.put_f64(self.limit);
    }

    /// Restores the full source state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.white.load_state(r)?;
        self.state = r.take_f64()?;
        self.limit = r.take_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rng64_uniformity_and_determinism() {
        let mut a = Rng64::new(0);
        let mut b = Rng64::new(0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Rng64::new(1234);
        let xs: Vec<f64> = (0..100_000).map(|_| r.next_f64()).collect();
        let mean = stats::mean(&xs);
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
        // Variance of U(0,1) is 1/12.
        let var = stats::variance(&xs);
        assert!((var - 1.0 / 12.0).abs() < 0.005, "uniform variance {var}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn uniform_split_matches_cast_exactly() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..100_000 {
            let w = xorshift_next(&mut state);
            assert_eq!(uniform_53(w).to_bits(), uniform_53_split(w).to_bits());
        }
        for w in [0u64, 1, 0x7ff, 0x800, u64::MAX, 1 << 63, (1 << 43) - 1] {
            assert_eq!(uniform_53(w).to_bits(), uniform_53_split(w).to_bits());
        }
    }

    #[test]
    fn rng64_distinct_seeds_diverge() {
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(6);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn white_noise_is_reproducible() {
        let mut a = WhiteNoise::new(1.0, 7);
        let mut b = WhiteNoise::new(1.0, 7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn white_noise_distinct_seeds_differ() {
        let mut a = WhiteNoise::new(1.0, 1);
        let mut b = WhiteNoise::new(1.0, 2);
        let same = (0..32).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 4);
    }

    #[test]
    fn white_noise_moments() {
        let mut n = WhiteNoise::new(2.0, 99);
        let xs: Vec<f64> = (0..200_000).map(|_| n.sample()).collect();
        let mean = stats::mean(&xs);
        let sd = stats::std_dev(&xs);
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((sd - 2.0).abs() < 0.02, "std dev {sd} too far from 2");
    }

    #[test]
    fn white_noise_zero_sigma_is_silent() {
        let mut n = WhiteNoise::new(0.0, 3);
        assert!((0..10).all(|_| n.sample() == 0.0));
    }

    #[test]
    fn density_scaling_matches_sigma() {
        let n = WhiteNoise::from_density(0.1, 200.0, 0);
        assert!((n.sigma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pink_noise_low_frequency_dominates() {
        // Pink noise should have more power in the slow rows: compare
        // variance of raw samples to variance of first differences. For
        // white noise var(diff) = 2*var; for pink it is much lower.
        let mut p = PinkNoise::new(1.0, 14, 5);
        let xs: Vec<f64> = (0..100_000).map(|_| p.sample()).collect();
        let var = stats::variance(&xs);
        let diffs: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let var_diff = stats::variance(&diffs);
        assert!(
            var_diff < 1.2 * var,
            "pink spectrum not low-frequency weighted: var={var} var_diff={var_diff}"
        );
    }

    #[test]
    fn white_lanes_match_scalar_bit_for_bit() {
        for n in [1usize, 2, 7, 8, 16] {
            let mut scalar: Vec<WhiteNoise> = (0..n)
                .map(|l| WhiteNoise::new(0.5 + l as f64 * 0.1, 1000 + l as u64))
                .collect();
            let mut lanes = WhiteLanes::extract(scalar.iter()).expect("uniform population");
            let mut out = vec![0.0; n];
            for tick in 0..257 {
                lanes.sample(&mut out);
                for (l, s) in scalar.iter_mut().enumerate() {
                    let want = s.sample();
                    assert_eq!(
                        want.to_bits(),
                        out[l].to_bits(),
                        "tick {tick} lane {l}: {want} vs {}",
                        out[l]
                    );
                }
            }
            // Round-trip: restored sources continue the stream bit-exactly.
            let mut restored: Vec<WhiteNoise> = (0..n)
                .map(|l| WhiteNoise::new(0.5 + l as f64 * 0.1, 1000 + l as u64))
                .collect();
            lanes.restore(restored.iter_mut());
            for (l, (a, b)) in restored.iter_mut().zip(scalar.iter_mut()).enumerate() {
                for _ in 0..8 {
                    assert_eq!(a.sample().to_bits(), b.sample().to_bits(), "lane {l}");
                }
            }
        }
    }

    #[test]
    fn white_lanes_reject_mixed_phase_or_sigma() {
        let mut a = WhiteNoise::new(1.0, 1);
        let b = WhiteNoise::new(1.0, 2);
        a.sample(); // a now holds a cached half-sample, b does not
        assert!(WhiteLanes::extract([&a, &b].into_iter()).is_none());
        let c = WhiteNoise::new(0.0, 3);
        let d = WhiteNoise::new(1.0, 4);
        assert!(WhiteLanes::extract([&c, &d].into_iter()).is_none());
        // All-zero sigma is a valid (silent) population.
        let e = WhiteNoise::new(0.0, 5);
        let mut lanes = WhiteLanes::extract([&c, &e].into_iter()).expect("all-zero ok");
        let mut out = vec![1.0; 2];
        lanes.sample(&mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn pink_lanes_match_scalar_bit_for_bit() {
        for n in [1usize, 3, 8] {
            let mut scalar: Vec<PinkNoise> = (0..n)
                .map(|l| PinkNoise::new(0.3 + l as f64 * 0.05, 14, 70 + l as u64))
                .collect();
            let mut lanes = PinkLanes::extract(scalar.iter()).expect("uniform population");
            let mut out = vec![0.0; n];
            for tick in 0..300 {
                lanes.sample(&mut out);
                for (l, s) in scalar.iter_mut().enumerate() {
                    assert_eq!(
                        s.sample().to_bits(),
                        out[l].to_bits(),
                        "tick {tick} lane {l}"
                    );
                }
            }
            let mut restored: Vec<PinkNoise> = (0..n)
                .map(|l| PinkNoise::new(0.3 + l as f64 * 0.05, 14, 70 + l as u64))
                .collect();
            lanes.restore(restored.iter_mut());
            for (a, b) in restored.iter_mut().zip(scalar.iter_mut()) {
                for _ in 0..40 {
                    assert_eq!(a.sample().to_bits(), b.sample().to_bits());
                }
            }
        }
    }

    #[test]
    fn random_walk_respects_limit() {
        let mut w = RandomWalk::new(0.5, 1.0, 11);
        for _ in 0..10_000 {
            let v = w.sample();
            assert!(v.abs() <= 1.0 + 1e-9, "walk escaped limit: {v}");
        }
    }

    #[test]
    fn random_walk_value_matches_last_sample() {
        let mut w = RandomWalk::new(0.1, 10.0, 13);
        let s = w.sample();
        assert_eq!(s, w.value());
    }
}
