//! Waveform recording and CSV export.
//!
//! Traces are the simulation stand-in for the paper's MATLAB plots (Fig. 5)
//! and AC-probe screenshots (Fig. 6): every experiment regenerator records
//! the relevant nodes into a [`TraceSet`] and writes a CSV that plots the
//! same series the paper shows.

use std::error::Error;
use std::fmt;
use std::io::{self, Write};

/// A single named waveform: `(time, value)` samples with optional
/// decimation so multi-second runs at 1 MHz stay memory-bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
    decimation: u32,
    counter: u32,
}

impl Trace {
    /// Creates an empty trace recording every pushed sample.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_decimation(name, 1)
    }

    /// Creates a trace keeping one sample out of every `decimation` pushes.
    ///
    /// # Panics
    ///
    /// Panics if `decimation` is zero.
    #[must_use]
    pub fn with_decimation(name: impl Into<String>, decimation: u32) -> Self {
        assert!(decimation > 0, "trace decimation must be non-zero");
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
            decimation,
            counter: 0,
        }
    }

    /// Trace name (CSV column header).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a sample (subject to decimation).
    pub fn push(&mut self, t: f64, v: f64) {
        if self.counter == 0 {
            self.times.push(t);
            self.values.push(v);
        }
        self.counter += 1;
        if self.counter == self.decimation {
            self.counter = 0;
        }
    }

    /// Number of stored samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Stored sample times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Stored sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Last stored value, if any.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Values recorded at or after time `t0` (for steady-state analysis).
    #[must_use]
    pub fn values_after(&self, t0: f64) -> &[f64] {
        let i = self.times.partition_point(|&t| t < t0);
        &self.values[i..]
    }
}

/// Error returned when a [`TraceSet`] cannot be exported.
#[derive(Debug)]
pub enum ExportTraceError {
    /// Traces have different lengths and cannot share a time column.
    LengthMismatch {
        /// Name of the first trace whose length differs.
        name: String,
        /// Its length.
        len: usize,
        /// The expected length (length of the first trace).
        expected: usize,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for ExportTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch {
                name,
                len,
                expected,
            } => write!(f, "trace `{name}` has {len} samples, expected {expected}"),
            Self::Io(e) => write!(f, "i/o error exporting traces: {e}"),
        }
    }
}

impl Error for ExportTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::LengthMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for ExportTraceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// A bundle of equally-sampled traces sharing a time axis.
///
/// # Example
///
/// ```
/// use ascp_sim::trace::{Trace, TraceSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Trace::new("phase_error");
/// let mut b = Trace::new("vco_control");
/// for k in 0..4 {
///     a.push(k as f64, 0.1 * k as f64);
///     b.push(k as f64, 1.0);
/// }
/// let set = TraceSet::new(vec![a, b]);
/// let mut csv = Vec::new();
/// set.write_csv(&mut csv)?;
/// let text = String::from_utf8(csv)?;
/// assert!(text.starts_with("time,phase_error,vco_control"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Creates a set from individual traces.
    #[must_use]
    pub fn new(traces: Vec<Trace>) -> Self {
        Self { traces }
    }

    /// Adds a trace to the set.
    pub fn push(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// Borrow a trace by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Trace> {
        self.traces.iter().find(|t| t.name() == name)
    }

    /// Iterates over the traces.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.traces.iter()
    }

    /// Writes `time,<name>,...` CSV to `out`. A `&mut` writer may be passed.
    ///
    /// # Errors
    ///
    /// Returns [`ExportTraceError::LengthMismatch`] if the traces do not all
    /// have the same length, or [`ExportTraceError::Io`] on write failure.
    pub fn write_csv<W: Write>(&self, mut out: W) -> Result<(), ExportTraceError> {
        if self.traces.is_empty() {
            return Ok(());
        }
        let expected = self.traces[0].len();
        for t in &self.traces {
            if t.len() != expected {
                return Err(ExportTraceError::LengthMismatch {
                    name: t.name().to_owned(),
                    len: t.len(),
                    expected,
                });
            }
        }
        write!(out, "time")?;
        for t in &self.traces {
            write!(out, ",{}", t.name())?;
        }
        writeln!(out)?;
        for i in 0..expected {
            write!(out, "{}", self.traces[0].times()[i])?;
            for t in &self.traces {
                write!(out, ",{}", t.values()[i])?;
            }
            writeln!(out)?;
        }
        Ok(())
    }

    /// Writes the CSV to a file path, creating parent directories.
    ///
    /// # Errors
    ///
    /// Same as [`TraceSet::write_csv`], plus directory-creation failures.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> Result<(), ExportTraceError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        self.write_csv(io::BufWriter::new(file))
    }
}

impl<'a> IntoIterator for &'a TraceSet {
    type Item = &'a Trace;
    type IntoIter = std::slice::Iter<'a, Trace>;
    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        Self {
            traces: iter.into_iter().collect(),
        }
    }
}

impl Extend<Trace> for TraceSet {
    fn extend<I: IntoIterator<Item = Trace>>(&mut self, iter: I) {
        self.traces.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_samples() {
        let mut t = Trace::new("x");
        t.push(0.0, 1.0);
        t.push(1.0, 2.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.last(), Some(2.0));
        assert_eq!(t.times(), &[0.0, 1.0]);
    }

    #[test]
    fn decimation_keeps_every_nth() {
        let mut t = Trace::with_decimation("x", 3);
        for k in 0..9 {
            t.push(k as f64, k as f64);
        }
        assert_eq!(t.values(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn values_after_slices_by_time() {
        let mut t = Trace::new("x");
        for k in 0..10 {
            t.push(k as f64 * 0.1, k as f64);
        }
        let tail = t.values_after(0.55);
        assert_eq!(tail, &[6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("x");
        assert!(t.is_empty());
        assert_eq!(t.last(), None);
        assert!(t.values_after(0.0).is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut a = Trace::new("a");
        a.push(0.0, 1.5);
        a.push(0.5, 2.5);
        let set = TraceSet::new(vec![a]);
        let mut buf = Vec::new();
        set.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "time,a\n0,1.5\n0.5,2.5\n");
    }

    #[test]
    fn csv_length_mismatch_is_error() {
        let mut a = Trace::new("a");
        a.push(0.0, 1.0);
        let b = Trace::new("b");
        let set = TraceSet::new(vec![a, b]);
        let err = set.write_csv(Vec::new()).unwrap_err();
        assert!(matches!(err, ExportTraceError::LengthMismatch { .. }));
        assert!(err.to_string().contains('b'));
    }

    #[test]
    fn traceset_collect_and_lookup() {
        let set: TraceSet = ["a", "b", "c"].into_iter().map(Trace::new).collect();
        assert!(set.get("b").is_some());
        assert!(set.get("z").is_none());
        assert_eq!(set.iter().count(), 3);
    }

    #[test]
    fn empty_set_writes_nothing() {
        let set = TraceSet::default();
        let mut buf = Vec::new();
        set.write_csv(&mut buf).unwrap();
        assert!(buf.is_empty());
    }
}
