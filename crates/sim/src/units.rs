//! Physical unit newtypes.
//!
//! Automotive sensor conditioning mixes voltages, frequencies, angular rates
//! and temperatures in the same equations; the paper's datasheet tables
//! (Tables 1–3) quote mV/°/s, °/s/√Hz, Hz, ms and °C. Newtypes keep these
//! quantities from being confused (C-NEWTYPE) while staying zero-cost.
//!
//! Each unit wraps an `f64`, exposes the raw value as public field `0`, and
//! implements the arithmetic that is physically meaningful (adding two
//! voltages, scaling by a dimensionless factor). Cross-unit products that
//! would change dimension are done explicitly on the raw values.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements arithmetic and formatting shared by all unit newtypes.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the wrapped value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Clamps into `[lo, hi]`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Angular rate in degrees per second (the yaw-rate unit of the paper's
    /// tables).
    DegPerSec,
    "°/s"
);
unit!(
    /// Temperature in degrees Celsius. Automotive operating range in the
    /// paper is −40 °C to +125 °C for the platform, −40 °C to +85 °C for the
    /// gyro product.
    Celsius,
    "°C"
);
unit!(
    /// Angle in radians.
    Radians,
    "rad"
);

impl Hertz {
    /// Angular frequency ω = 2πf in rad/s.
    #[must_use]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }

    /// Period T = 1/f.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.0 != 0.0, "cannot take the period of 0 Hz");
        Seconds(1.0 / self.0)
    }
}

impl DegPerSec {
    /// Converts to radians per second.
    #[must_use]
    pub fn to_rad_per_sec(self) -> f64 {
        self.0.to_radians()
    }

    /// Conversion constructor from radians per second.
    #[must_use]
    pub fn from_rad_per_sec(w: f64) -> Self {
        Self(w.to_degrees())
    }
}

impl Celsius {
    /// Converts to kelvin (for Brownian-noise calculations).
    #[must_use]
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

impl Seconds {
    /// Converts to milliseconds (turn-on-time rows of the paper's tables are
    /// quoted in ms).
    #[must_use]
    pub fn to_millis(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Volts {
    /// Converts to millivolts (sensitivity rows are quoted in mV/°/s).
    #[must_use]
    pub fn to_millivolts(self) -> f64 {
        self.0 * 1.0e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volts_arithmetic() {
        let a = Volts(2.5) + Volts(0.5);
        assert_eq!(a, Volts(3.0));
        assert_eq!(a - Volts(1.0), Volts(2.0));
        assert_eq!(-a, Volts(-3.0));
        assert_eq!(a * 2.0, Volts(6.0));
        assert_eq!(2.0 * a, Volts(6.0));
        assert_eq!(a / 3.0, Volts(1.0));
        assert_eq!(Volts(6.0) / Volts(2.0), 3.0);
    }

    #[test]
    fn hertz_angular_and_period() {
        let f = Hertz(15_000.0);
        assert!((f.angular() - 2.0 * std::f64::consts::PI * 15_000.0).abs() < 1e-9);
        assert!((f.period().0 - 1.0 / 15_000.0).abs() < 1e-15);
    }

    #[test]
    fn rate_conversions_round_trip() {
        let r = DegPerSec(300.0);
        let w = r.to_rad_per_sec();
        assert!((DegPerSec::from_rad_per_sec(w).0 - 300.0).abs() < 1e-12);
    }

    #[test]
    fn celsius_to_kelvin() {
        assert!((Celsius(-40.0).to_kelvin() - 233.15).abs() < 1e-12);
        assert!((Celsius(25.0).to_kelvin() - 298.15).abs() < 1e-12);
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(Volts(2.5).to_string(), "2.5 V");
        assert_eq!(DegPerSec(-75.0).to_string(), "-75 °/s");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Volts = (0..4).map(|k| Volts(k as f64)).sum();
        assert_eq!(total, Volts(6.0));
    }

    #[test]
    fn clamp_and_abs() {
        assert_eq!(Volts(7.0).clamp(Volts(0.0), Volts(5.0)), Volts(5.0));
        assert_eq!(Volts(-1.0).abs(), Volts(1.0));
    }

    #[test]
    fn milli_conversions() {
        assert!((Seconds(0.5).to_millis() - 500.0).abs() < 1e-12);
        assert!((Volts(0.005).to_millivolts() - 5.0).abs() < 1e-12);
    }
}
