//! VCD (Value Change Dump) waveform export.
//!
//! The paper's verification loop lives in HDL simulators whose native
//! waveform format is IEEE 1364 VCD. Exporting [`TraceSet`]s as VCD lets
//! any wave viewer (GTKWave, Surfer) open ASCP runs next to RTL dumps —
//! the practical hand-off point between this simulation and a real flow.
//!
//! Analog (f64) traces are emitted as VCD `real` variables.

use crate::trace::{ExportTraceError, TraceSet};
use std::io::{self, Write};

/// Writes a [`TraceSet`] as a VCD file with a 1 ns timescale.
///
/// All traces must share the time axis (same length, same sample times),
/// as produced by the platform's trace recorders.
///
/// # Errors
///
/// Returns [`ExportTraceError::LengthMismatch`] if trace lengths differ, or
/// [`ExportTraceError::Io`] on write failure.
///
/// # Example
///
/// ```
/// use ascp_sim::trace::{Trace, TraceSet};
/// use ascp_sim::vcd::write_vcd;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = Trace::new("phase_error");
/// t.push(0.0, 0.25);
/// t.push(1.0e-6, 0.125);
/// let mut out = Vec::new();
/// write_vcd(&TraceSet::new(vec![t]), &mut out)?;
/// let text = String::from_utf8(out)?;
/// assert!(text.contains("$var real 64"));
/// # Ok(())
/// # }
/// ```
pub fn write_vcd<W: Write>(set: &TraceSet, mut out: W) -> Result<(), ExportTraceError> {
    let traces: Vec<_> = set.iter().collect();
    if traces.is_empty() {
        return Ok(());
    }
    let expected = traces[0].len();
    for t in &traces {
        if t.len() != expected {
            return Err(ExportTraceError::LengthMismatch {
                name: t.name().to_owned(),
                len: t.len(),
                expected,
            });
        }
    }

    writeln!(out, "$date ascp-sim export $end")?;
    writeln!(out, "$version ascp-sim 0.1 $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module ascp $end")?;
    for (i, t) in traces.iter().enumerate() {
        // VCD identifier codes: printable ASCII starting at '!'.
        let id = ident(i);
        let name = sanitize(t.name());
        writeln!(out, "$var real 64 {id} {name} $end")?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    let mut last: Vec<Option<f64>> = vec![None; traces.len()];
    for k in 0..expected {
        let t_ns = (traces[0].times()[k] * 1.0e9).round() as u64;
        let mut banner = false;
        for (i, t) in traces.iter().enumerate() {
            let v = t.values()[k];
            if last[i] != Some(v) {
                if !banner {
                    writeln!(out, "#{t_ns}")?;
                    banner = true;
                }
                writeln!(out, "r{v} {}", ident(i))?;
                last[i] = Some(v);
            }
        }
    }
    Ok(())
}

/// Saves a trace set as a VCD file, creating parent directories.
///
/// # Errors
///
/// Same as [`write_vcd`], plus directory/file-creation failures.
pub fn save_vcd(set: &TraceSet, path: impl AsRef<std::path::Path>) -> Result<(), ExportTraceError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_vcd(set, io::BufWriter::new(file))
}

fn ident(i: usize) -> String {
    // 94 printable chars starting at '!'; extend to two chars if needed.
    let alphabet = 94usize;
    if i < alphabet {
        ((b'!' + i as u8) as char).to_string()
    } else {
        let hi = (b'!' + (i / alphabet - 1) as u8) as char;
        let lo = (b'!' + (i % alphabet) as u8) as char;
        format!("{hi}{lo}")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn two_traces() -> TraceSet {
        let mut a = Trace::new("sig a");
        let mut b = Trace::new("sig_b");
        for k in 0..4 {
            a.push(k as f64 * 1.0e-6, k as f64);
            b.push(k as f64 * 1.0e-6, 1.0);
        }
        TraceSet::new(vec![a, b])
    }

    #[test]
    fn header_declares_all_vars() {
        let mut out = Vec::new();
        write_vcd(&two_traces(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$var real 64 ! sig_a $end"));
        assert!(text.contains("$var real 64 \" sig_b $end"));
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn only_changes_are_dumped() {
        let mut out = Vec::new();
        write_vcd(&two_traces(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // b is constant 1.0: dumped once.
        let b_changes = text.lines().filter(|l| l.ends_with(" \"")).count();
        assert_eq!(b_changes, 1);
        // a changes every sample: 4 dumps.
        let a_changes = text.lines().filter(|l| l.ends_with(" !")).count();
        assert_eq!(a_changes, 4);
    }

    #[test]
    fn timestamps_in_nanoseconds() {
        let mut out = Vec::new();
        write_vcd(&two_traces(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("#0\n"));
        assert!(text.contains("#1000\n"));
        assert!(text.contains("#3000\n"));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut a = Trace::new("a");
        a.push(0.0, 1.0);
        let b = Trace::new("b");
        let err = write_vcd(&TraceSet::new(vec![a, b]), Vec::new()).unwrap_err();
        assert!(matches!(err, ExportTraceError::LengthMismatch { .. }));
    }

    #[test]
    fn ident_codes_unique_over_many_signals() {
        let ids: Vec<String> = (0..300).map(ident).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn empty_set_is_ok() {
        write_vcd(&TraceSet::default(), Vec::new()).unwrap();
    }
}
