//! Allan deviation — the gyro community's stability metric.
//!
//! The paper's tables quote rate noise density; modern gyro datasheets also
//! quote angle random walk and bias instability, both read off the Allan
//! deviation curve. This module computes the overlapping Allan deviation of
//! a rate record and extracts those two figures, extending the
//! characterization harness beyond the paper's rows.

/// One point of the Allan deviation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllanPoint {
    /// Averaging time τ (s).
    pub tau: f64,
    /// Overlapping Allan deviation σ(τ) (same units as the input samples).
    pub sigma: f64,
}

/// Computes the overlapping Allan deviation of `samples` taken at `fs` Hz,
/// at logarithmically spaced τ values (about `points_per_decade` each
/// decade, up to a quarter of the record length).
///
/// # Panics
///
/// Panics if `fs` is not positive, the record has fewer than 8 samples, or
/// `points_per_decade` is zero.
#[must_use]
pub fn allan_deviation(samples: &[f64], fs: f64, points_per_decade: u32) -> Vec<AllanPoint> {
    assert!(fs > 0.0, "sample rate must be positive");
    assert!(samples.len() >= 8, "need at least 8 samples");
    assert!(points_per_decade > 0, "points_per_decade must be non-zero");
    let n = samples.len();
    let tau0 = 1.0 / fs;
    // Cumulative sum (integrated signal = "angle" record).
    let mut theta = Vec::with_capacity(n + 1);
    theta.push(0.0);
    let mut acc = 0.0;
    for &x in samples {
        acc += x * tau0;
        theta.push(acc);
    }

    let max_m = n / 4;
    let mut out = Vec::new();
    let mut m = 1usize;
    let ratio = 10f64.powf(1.0 / f64::from(points_per_decade));
    while m <= max_m {
        let tau = m as f64 * tau0;
        // Overlapping estimator:
        // σ²(τ) = 1/(2τ²(N−2m)) Σ (θ[k+2m] − 2θ[k+m] + θ[k])².
        let terms = n + 1 - 2 * m;
        let mut s = 0.0;
        for k in 0..terms {
            let d = theta[k + 2 * m] - 2.0 * theta[k + m] + theta[k];
            s += d * d;
        }
        let sigma2 = s / (2.0 * tau * tau * terms as f64);
        out.push(AllanPoint {
            tau,
            sigma: sigma2.sqrt(),
        });
        let next = ((m as f64) * ratio).ceil() as usize;
        m = next.max(m + 1);
    }
    out
}

/// Angle random walk (units/√Hz): σ(τ) read at τ = 1 s on the −1/2 slope,
/// i.e. the curve value interpolated at τ = 1 s.
///
/// Returns `None` if the curve does not span τ = 1 s.
#[must_use]
pub fn angle_random_walk(curve: &[AllanPoint]) -> Option<f64> {
    interpolate_log(curve, 1.0)
}

/// Bias instability (same units as the input): the minimum of the Allan
/// deviation curve divided by the 0.664 flicker factor.
///
/// Returns `None` for an empty curve.
#[must_use]
pub fn bias_instability(curve: &[AllanPoint]) -> Option<f64> {
    curve
        .iter()
        .map(|p| p.sigma)
        .fold(None, |acc: Option<f64>, s| {
            Some(acc.map_or(s, |a| a.min(s)))
        })
        .map(|min| min / 0.664)
}

fn interpolate_log(curve: &[AllanPoint], tau: f64) -> Option<f64> {
    if curve.is_empty() || tau < curve[0].tau || tau > curve[curve.len() - 1].tau {
        return None;
    }
    let i = curve.partition_point(|p| p.tau <= tau);
    if i == 0 {
        return Some(curve[0].sigma);
    }
    if i >= curve.len() {
        return Some(curve[curve.len() - 1].sigma);
    }
    let (a, b) = (&curve[i - 1], &curve[i]);
    let f = (tau.ln() - a.tau.ln()) / (b.tau.ln() - a.tau.ln());
    Some((a.sigma.ln() + f * (b.sigma.ln() - a.sigma.ln())).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{RandomWalk, WhiteNoise};

    #[test]
    fn white_noise_has_half_slope() {
        // For white noise of density d, σ(τ) = d/√τ.
        let fs = 100.0;
        let density = 0.1;
        let mut n = WhiteNoise::from_density(density, fs, 42);
        let xs: Vec<f64> = (0..200_000).map(|_| n.sample()).collect();
        let curve = allan_deviation(&xs, fs, 4);
        // Check slope between τ = 0.1 and τ = 10.
        let s01 = interpolate_log(&curve, 0.1).expect("curve spans 0.1 s");
        let s10 = interpolate_log(&curve, 10.0).expect("curve spans 10 s");
        let slope = (s10.ln() - s01.ln()) / (10f64.ln() - 0.1f64.ln());
        assert!((slope + 0.5).abs() < 0.08, "slope {slope}");
        // σ(1 s) = d/√2 for one-sided density d (the √2 is the Allan
        // estimator's white-noise transfer).
        let arw = angle_random_walk(&curve).expect("spans 1 s");
        let expect = density / 2f64.sqrt();
        assert!((arw - expect).abs() / expect < 0.1, "ARW {arw} vs {expect}");
    }

    #[test]
    fn random_walk_dominates_long_tau() {
        // Rate random walk rises at +1/2 slope for long τ: the curve of a
        // pure random-walk signal must grow with τ at the long end.
        let fs = 100.0;
        let mut w = RandomWalk::new(0.01, 1.0e9, 7);
        let xs: Vec<f64> = (0..100_000).map(|_| w.sample()).collect();
        let curve = allan_deviation(&xs, fs, 4);
        let early = curve[2].sigma;
        let late = curve[curve.len() - 1].sigma;
        assert!(late > 2.0 * early, "no random-walk rise: {early} vs {late}");
    }

    #[test]
    fn bias_instability_is_curve_minimum_scaled() {
        let curve = vec![
            AllanPoint {
                tau: 0.1,
                sigma: 1.0,
            },
            AllanPoint {
                tau: 1.0,
                sigma: 0.4,
            },
            AllanPoint {
                tau: 10.0,
                sigma: 0.7,
            },
        ];
        let bi = bias_instability(&curve).expect("non-empty");
        assert!((bi - 0.4 / 0.664).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_in_tau() {
        let mut n = WhiteNoise::new(1.0, 3);
        let xs: Vec<f64> = (0..4096).map(|_| n.sample()).collect();
        let curve = allan_deviation(&xs, 100.0, 3);
        for w in curve.windows(2) {
            assert!(w[1].tau > w[0].tau);
        }
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_short_records() {
        let _ = allan_deviation(&[1.0; 4], 100.0, 3);
    }

    #[test]
    fn arw_none_outside_span() {
        let mut n = WhiteNoise::new(1.0, 3);
        // 16 samples at 1 kHz: max τ = 4 ms << 1 s.
        let xs: Vec<f64> = (0..16).map(|_| n.sample()).collect();
        let curve = allan_deviation(&xs, 1000.0, 3);
        assert!(angle_random_walk(&curve).is_none());
    }
}
