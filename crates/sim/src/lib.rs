//! # ascp-sim — mixed-signal simulation kernel
//!
//! Discrete-time simulation substrate for the ASCP platform (a Rust
//! reproduction of *Platform Based Design for Automotive Sensor
//! Conditioning*, DATE 2005).
//!
//! The paper's design flow co-simulates a MATLAB system model, VHDL-AMS
//! analog models and VHDL digital hardware. This crate provides the common
//! ground those environments share:
//!
//! - a fixed-step [`TimeBase`] with multi-rate clock division
//!   ([`RateDivider`]) so that a 1 MHz "analog" solver, a 250 kHz DSP clock
//!   and a 20 MHz CPU clock can be driven from one loop;
//! - strongly-typed physical [`units`] (volts, hertz, seconds, °/s, °C);
//! - waveform recording ([`trace`]) with CSV export, the stand-in for the
//!   paper's MATLAB plots and AC-probe screenshots (Figs. 5 and 6);
//! - seeded [`noise`] sources (white, pink, random-walk) used by the MEMS
//!   and analog front-end models;
//! - small numeric [`stats`] helpers (mean/variance, linear regression,
//!   settling detection) shared by the characterization harness;
//! - [`vcd`] waveform export (open runs in GTKWave next to RTL dumps) and
//!   the [`allan`] deviation analysis used for gyro stability figures;
//! - a [`campaign`] worker-pool engine that shards independent scenario
//!   runs across threads with input-order (thread-count-independent)
//!   results;
//! - binary state [`snapshot`] primitives (self-describing length-prefixed
//!   sections, bit-exact `f64` encoding, typed decode errors) that the
//!   platform checkpoint format in `ascp-core` builds on.
//!
//! # Example
//!
//! ```
//! use ascp_sim::{TimeBase, trace::Trace, units::Hertz};
//!
//! let tb = TimeBase::new(Hertz(1.0e6));
//! let mut tr = Trace::new("sine");
//! for k in 0..1000 {
//!     let t = tb.time_at(k);
//!     tr.push(t, (2.0 * std::f64::consts::PI * 1.0e3 * t).sin());
//! }
//! assert_eq!(tr.len(), 1000);
//! ```

pub mod allan;
pub mod campaign;
pub mod fault;
pub mod mathx;
pub mod noise;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod units;
pub mod vcd;

use units::Hertz;

/// Fixed-step simulation time base.
///
/// All ASCP simulations advance in integer ticks of a master clock; slower
/// clocks are derived with [`RateDivider`]. Keeping time integral avoids
/// floating-point drift over the multi-second runs needed for turn-on-time
/// and temperature experiments.
///
/// # Example
///
/// ```
/// use ascp_sim::{TimeBase, units::Hertz};
/// let tb = TimeBase::new(Hertz(1.0e6));
/// assert_eq!(tb.dt(), 1.0e-6);
/// assert_eq!(tb.ticks_for(1.0e-3), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBase {
    rate: Hertz,
    dt: f64,
}

impl TimeBase {
    /// Creates a time base running at `rate` samples per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and strictly positive.
    #[must_use]
    pub fn new(rate: Hertz) -> Self {
        assert!(
            rate.0.is_finite() && rate.0 > 0.0,
            "time base rate must be finite and positive, got {}",
            rate.0
        );
        Self {
            rate,
            dt: 1.0 / rate.0,
        }
    }

    /// Master sample rate.
    #[must_use]
    pub fn rate(&self) -> Hertz {
        self.rate
    }

    /// Step duration in seconds.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Simulation time (seconds) at tick index `k`.
    #[must_use]
    pub fn time_at(&self, k: u64) -> f64 {
        k as f64 * self.dt
    }

    /// Number of ticks needed to cover `seconds` (rounded up).
    #[must_use]
    pub fn ticks_for(&self, seconds: f64) -> u64 {
        (seconds * self.rate.0).ceil() as u64
    }
}

/// Derives a slower clock from the master tick stream.
///
/// `tick()` is called once per master tick and returns `true` on the master
/// ticks where the derived clock fires (every `divisor` ticks, starting at
/// the first tick). This is how the DSP clock (e.g. 250 kHz) and the CPU
/// clock are scheduled inside a 1 MHz analog solver loop.
///
/// # Example
///
/// ```
/// use ascp_sim::RateDivider;
/// let mut div = RateDivider::new(4);
/// let fired: Vec<bool> = (0..8).map(|_| div.tick()).collect();
/// assert_eq!(fired, [true, false, false, false, true, false, false, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateDivider {
    divisor: u32,
    counter: u32,
}

impl RateDivider {
    /// Creates a divider firing every `divisor` master ticks.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn new(divisor: u32) -> Self {
        assert!(divisor > 0, "rate divider divisor must be non-zero");
        Self {
            divisor,
            counter: 0,
        }
    }

    /// Advances one master tick; returns `true` when the derived clock fires.
    pub fn tick(&mut self) -> bool {
        let fire = self.counter == 0;
        self.counter += 1;
        if self.counter == self.divisor {
            self.counter = 0;
        }
        fire
    }

    /// The division ratio.
    #[must_use]
    pub fn divisor(&self) -> u32 {
        self.divisor
    }

    /// Resets the phase so the next tick fires.
    pub fn reset(&mut self) {
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timebase_dt_and_ticks() {
        let tb = TimeBase::new(Hertz(250_000.0));
        assert!((tb.dt() - 4.0e-6).abs() < 1e-18);
        assert_eq!(tb.ticks_for(1.0), 250_000);
        assert_eq!(tb.ticks_for(0.0), 0);
    }

    #[test]
    fn timebase_time_at_is_linear() {
        let tb = TimeBase::new(Hertz(1.0e6));
        assert_eq!(tb.time_at(0), 0.0);
        assert!((tb.time_at(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn timebase_rejects_zero_rate() {
        let _ = TimeBase::new(Hertz(0.0));
    }

    #[test]
    fn divider_of_one_fires_every_tick() {
        let mut d = RateDivider::new(1);
        assert!((0..10).all(|_| d.tick()));
    }

    #[test]
    fn divider_reset_realigns_phase() {
        let mut d = RateDivider::new(3);
        assert!(d.tick());
        assert!(!d.tick());
        d.reset();
        assert!(d.tick());
    }

    #[test]
    fn divider_duty_cycle() {
        let mut d = RateDivider::new(5);
        let fires = (0..100).filter(|_| d.tick()).count();
        assert_eq!(fires, 20);
    }
}
