//! Deterministic transcendental kernels for noise synthesis.
//!
//! The Box–Muller transform in [`crate::noise::WhiteNoise`] needs `ln`,
//! `sin` and `cos`. The platform's determinism contract — identical bits
//! from scalar runs, batched fleet lanes, and any host libm — rules out
//! `f64::ln`/`f64::sin_cos`: libm results differ across platforms, and a
//! vectorized lane kernel could not reproduce them anyway. This module
//! provides branch-light polynomial implementations built **only** from
//! IEEE-exact operations (`+`, `−`, `×`, `/`, `sqrt`, `floor`, comparisons
//! and bit manipulation), each of which produces identical bits whether
//! executed as a scalar instruction or inside a SIMD lane.
//!
//! Two rules keep scalar and vector execution bit-identical:
//!
//! 1. **No `mul_add`.** Rust never contracts `a*b + c` into an FMA, so
//!    writing polynomials with plain multiplies and adds guarantees the
//!    same rounding everywhere. Calling `mul_add` explicitly would change
//!    results between FMA and non-FMA code paths.
//! 2. **No `round`.** `f64::round` (half-away-from-zero) has no direct
//!    SSE/AVX lowering; `floor` maps to `roundpd` and is IEEE-exact, so
//!    quadrant extraction uses `floor(x + 0.5)`.
//!
//! Accuracy is ~1e-14 relative over the domains the noise synthesis uses
//! (`ln` on `[2^-53, 1)`, `sincos_2pi` on `[0, 1)`) — far below the noise
//! floor of any modeled component, and exactly reproducible.

// The polynomial coefficients below are quoted at full double precision
// (fdlibm convention); rounding them to the shortest representation would
// obscure their provenance without changing the stored bits.
#![allow(clippy::excessive_precision)]

/// `ln 2` split into a high part exact in 32 bits and the residual, so
/// `e·LN2_HI` is exact for the |e| ≤ 1074 exponents seen here.
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;

/// Natural logarithm for finite positive normal inputs.
///
/// Domain: normal positive `f64` (the uniform variates `[2^-53, 1)` drawn
/// for Box–Muller always qualify; subnormals and zero are the caller's
/// responsibility — [`crate::noise::WhiteNoise`] rejects `u == 0` before
/// calling). Matches `f64::ln` to ~1e-14 relative and, unlike libm, is
/// bit-identical across hosts and in vectorized lane loops.
#[inline(always)]
#[must_use]
pub fn ln(x: f64) -> f64 {
    // Split x = 2^e · m with m ∈ [1, 2), then renormalize to
    // m ∈ [√2/2, √2) so the atanh argument is small and symmetric.
    let bits = x.to_bits();
    let e_raw = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let m_bits = (bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52);
    let m = f64::from_bits(m_bits);
    let big = m >= std::f64::consts::SQRT_2;
    let m = if big { 0.5 * m } else { m };
    let e = f64::from(e_raw + i32::from(big));
    // ln m = 2·atanh(t), t = (m−1)/(m+1), |t| ≤ 0.1716.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // Odd series 2t·(1 + t²/3 + t⁴/5 + …): |t²| ≤ 0.0295, nine terms
    // bound the truncation error below 1e-15 relative.
    let mut p = 1.0 / 19.0;
    p = p * t2 + 1.0 / 17.0;
    p = p * t2 + 1.0 / 15.0;
    p = p * t2 + 1.0 / 13.0;
    p = p * t2 + 1.0 / 11.0;
    p = p * t2 + 1.0 / 9.0;
    p = p * t2 + 1.0 / 7.0;
    p = p * t2 + 1.0 / 5.0;
    p = p * t2 + 1.0 / 3.0;
    let ln_m = 2.0 * t + 2.0 * t * t2 * p;
    (e * LN2_HI + ln_m) + e * LN2_LO
}

/// Minimax-style Taylor coefficients for `sin z`, `|z| ≤ π/4`.
const S1: f64 = -1.666_666_666_666_666_574e-1;
const S2: f64 = 8.333_333_333_332_248_946e-3;
const S3: f64 = -1.984_126_982_985_795_027e-4;
const S4: f64 = 2.755_731_642_039_714_590e-6;
const S5: f64 = -2.505_076_026_746_116_645e-8;
const S6: f64 = 1.589_413_637_195_215_81e-10;

/// Coefficients for `cos z`, `|z| ≤ π/4`.
const C1: f64 = 4.166_666_666_666_601_904e-2;
const C2: f64 = -1.388_888_888_887_302_347e-3;
const C3: f64 = 2.480_158_728_947_673_078e-5;
const C4: f64 = -2.755_731_436_214_549_167e-7;
const C5: f64 = 2.087_570_084_197_473_390e-9;
const C6: f64 = -1.135_338_700_720_054_43e-11;

const FRAC_PI_2: f64 = std::f64::consts::FRAC_PI_2;

/// `(sin 2πu, cos 2πu)` for `u ∈ [0, 1)`.
///
/// Working in turns makes the range reduction exact: the quadrant index is
/// `floor(4u + 0.5)` and the residual angle `(4u − q)·π/2` never exceeds
/// π/4, so no Payne–Hanek machinery is needed. Branch-light: the quadrant
/// rotation is a pair of selects, which the auto-vectorizer turns into
/// blends.
#[inline(always)]
#[must_use]
pub fn sincos_2pi(u: f64) -> (f64, f64) {
    let x = 4.0 * u;
    let q = (x + 0.5).floor(); // quadrant 0..=4 (4 ≡ 0)
    let z = (x - q) * FRAC_PI_2; // |z| ≤ π/4
    let z2 = z * z;
    // sin z = z + z³·P(z²)
    let mut ps = S6;
    ps = ps * z2 + S5;
    ps = ps * z2 + S4;
    ps = ps * z2 + S3;
    ps = ps * z2 + S2;
    ps = ps * z2 + S1;
    let s0 = z + z * z2 * ps;
    // cos z = 1 − z²/2 + z⁴·Q(z²)
    let mut pc = C6;
    pc = pc * z2 + C5;
    pc = pc * z2 + C4;
    pc = pc * z2 + C3;
    pc = pc * z2 + C2;
    pc = pc * z2 + C1;
    let c0 = 1.0 - 0.5 * z2 + z2 * z2 * pc;
    // Rotate by the quadrant: q ∈ {0,4}: (s,c); 1: (c,−s); 2: (−s,−c);
    // 3: (−c,s). Expressed as a swap select plus two sign selects.
    let q1 = q == 1.0;
    let q2 = q == 2.0;
    let q3 = q == 3.0;
    let swap = q1 || q3;
    let sin_mag = if swap { c0 } else { s0 };
    let cos_mag = if swap { s0 } else { c0 };
    let sin = if q2 || q3 { -sin_mag } else { sin_mag };
    let cos = if q1 || q2 { -cos_mag } else { cos_mag };
    (sin, cos)
}

/// One Box–Muller pair from two uniforms: `u1 ∈ (0, 1)`, `u2 ∈ [0, 1)`.
/// Returns `(r·cos θ, r·sin θ)` with `r = √(−2 ln u1)`, `θ = 2π u2`.
#[inline(always)]
#[must_use]
pub fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    let r = (-2.0 * ln(u1)).sqrt();
    let (s, c) = sincos_2pi(u2);
    (r * c, r * s)
}

/// Batched [`box_muller`] over equal-length slices: `z_cos[i]` and
/// `z_sin[i]` receive the pair for `(u1[i], u2[i])`. Bit-identical to the
/// scalar function per lane; on x86-64 hosts with AVX2 or AVX-512 the
/// loops run through a vectorized copy (same IEEE operations, same bits).
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn box_muller_slice(u1: &[f64], u2: &[f64], z_cos: &mut [f64], z_sin: &mut [f64]) {
    let n = u1.len();
    assert!(
        u2.len() == n && z_cos.len() == n && z_sin.len() == n,
        "box_muller_slice length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    {
        // AVX2 only: an AVX-512 tier was measured slower on the ln/sqrt/
        // div chains here (512-bit divide/sqrt throughput and license
        // downclocking eat the width win), so it is intentionally absent.
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check above.
            unsafe { box_muller_slice_avx2(u1, u2, z_cos, z_sin) };
            return;
        }
    }
    box_muller_slice_inner(u1, u2, z_cos, z_sin);
}

/// Chunk width for the multi-pass batch loops: big enough that each pass
/// pipelines several independent Horner chains, small enough to stay in
/// registers and L1.
const CHUNK: usize = 32;

/// The batch body, written as short single-purpose passes over a stack
/// chunk instead of one fused loop. The fused form's ~70-operation body
/// exhausts registers, so LLVM emits it without interleaving and every
/// element serializes on the ln/sincos Horner chains (~110 cycles of
/// latency each). Splitting into passes keeps each loop body small: the
/// vectorizer interleaves, the out-of-order window overlaps neighboring
/// chains, and throughput rather than latency sets the cost.
#[inline(always)]
fn box_muller_slice_inner(u1: &[f64], u2: &[f64], z_cos: &mut [f64], z_sin: &mut [f64]) {
    let mut start = 0;
    while start < u1.len() {
        let n = (u1.len() - start).min(CHUNK);
        let mut c = [0.0f64; CHUNK];
        // Pass 1: r = √(−2 ln u1), landing directly in z_cos.
        for i in 0..n {
            z_cos[start + i] = (-2.0 * ln(u1[start + i])).sqrt();
        }
        // Pass 2: sin 2πu2 straight into z_sin, cos into the stack chunk.
        for i in 0..n {
            let (si, ci) = sincos_2pi(u2[start + i]);
            z_sin[start + i] = si;
            c[i] = ci;
        }
        // Pass 3: polar → Cartesian.
        for i in 0..n {
            let r = z_cos[start + i];
            z_cos[start + i] = r * c[i];
            z_sin[start + i] *= r;
        }
        start += n;
    }
}

/// AVX2 copy of the batch loops. Every operation in [`box_muller`] is
/// IEEE-exact (`+ − × / sqrt floor`, compares, blends, integer bit ops),
/// so the vectorized lanes produce the same bits as the scalar loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn box_muller_slice_avx2(u1: &[f64], u2: &[f64], z_cos: &mut [f64], z_sin: &mut [f64]) {
    box_muller_slice_inner(u1, u2, z_cos, z_sin);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_matches_libm_closely() {
        let mut worst = 0.0f64;
        for k in 1..20_000u64 {
            let x = k as f64 / 20_000.0;
            let rel = (ln(x) - x.ln()).abs() / x.ln().abs().max(1e-300);
            worst = worst.max(rel);
        }
        // Tiny magnitudes too (the Box–Muller tail).
        for e in 1..=53 {
            let x = (2.0f64).powi(-e);
            let rel = (ln(x) - x.ln()).abs() / x.ln().abs();
            worst = worst.max(rel);
        }
        assert!(worst < 1e-13, "ln relative error {worst}");
    }

    #[test]
    fn ln_exact_at_one_and_powers_of_two() {
        assert_eq!(ln(1.0), 0.0);
        for e in [-40, -10, -1, 1, 10, 40] {
            let x = (2.0f64).powi(e);
            let rel = (ln(x) - x.ln()).abs() / x.ln().abs();
            assert!(rel < 1e-14, "2^{e}: {rel}");
        }
    }

    #[test]
    fn sincos_matches_libm_closely() {
        let mut worst = 0.0f64;
        for k in 0..40_000u64 {
            let u = k as f64 / 40_000.0;
            let (s, c) = sincos_2pi(u);
            let th = 2.0 * std::f64::consts::PI * u;
            worst = worst.max((s - th.sin()).abs());
            worst = worst.max((c - th.cos()).abs());
        }
        assert!(worst < 1e-13, "sincos absolute error {worst}");
    }

    #[test]
    fn sincos_quadrant_boundaries() {
        for (u, es, ec) in [
            (0.0, 0.0, 1.0),
            (0.25, 1.0, 0.0),
            (0.5, 0.0, -1.0),
            (0.75, -1.0, 0.0),
        ] {
            let (s, c) = sincos_2pi(u);
            assert!((s - es).abs() < 1e-13, "sin(2π·{u}) = {s}");
            assert!((c - ec).abs() < 1e-13, "cos(2π·{u}) = {c}");
        }
    }

    #[test]
    fn sincos_pythagorean_identity() {
        for k in 0..10_000u64 {
            let u = k as f64 / 10_000.0;
            let (s, c) = sincos_2pi(u);
            assert!((s * s + c * c - 1.0).abs() < 1e-13, "u = {u}");
        }
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        let mut rng = crate::noise::Rng64::new(0xba7c);
        for n in [1usize, 3, 8, 16, 33] {
            let u1: Vec<f64> = (0..n).map(|_| rng.next_f64().max(1e-300)).collect();
            let u2: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let mut zc = vec![0.0; n];
            let mut zs = vec![0.0; n];
            box_muller_slice(&u1, &u2, &mut zc, &mut zs);
            for i in 0..n {
                let (c, s) = box_muller(u1[i], u2[i]);
                assert_eq!(c.to_bits(), zc[i].to_bits(), "lane {i} cos");
                assert_eq!(s.to_bits(), zs[i].to_bits(), "lane {i} sin");
            }
        }
    }

    #[test]
    fn box_muller_unit_moments() {
        let mut rng = crate::noise::Rng64::new(7);
        let mut sum = 0.0;
        let mut sq = 0.0;
        let n = 200_000;
        for _ in 0..n {
            let u1 = loop {
                let u = rng.next_f64();
                if u > 0.0 {
                    break u;
                }
            };
            let (zc, zs) = box_muller(u1, rng.next_f64());
            sum += zc + zs;
            sq += zc * zc + zs * zs;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sq / (2.0 * n as f64);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }
}
