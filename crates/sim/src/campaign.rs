//! Parallel campaign execution: a fixed worker-thread pool that shards a
//! work list across threads while keeping results in input order.
//!
//! The paper's design flow (§2, Fig. 1) sweeps one programmable platform
//! across many configurations — the throughput bottleneck of platform-based
//! design. This module is the simulator's answer: [`parallel_map`] runs
//! independent work items on `std` threads fed from a channel work queue
//! (no external dependencies) and reassembles the results **in input
//! order**, so a campaign's output is bit-identical no matter how many
//! worker threads execute it or how the scheduler interleaves them.
//!
//! Determinism contract: each item is handed to the closure together with
//! its input index, the closure must derive any randomness from the item
//! itself (seeds travel *in* the work item, never in thread-local state),
//! and the result vector is ordered by that index. Under those rules
//! `parallel_map(items, 1, f) == parallel_map(items, n, f)` for every `n`.
//!
//! Fault tolerance: a panicking work item must never take the pool down
//! with it. [`try_parallel_map`] catches each item's panic and returns a
//! per-slot [`Result`] — sibling items keep running, the queue mutex is
//! never left poisoned (workers recover a poisoned lock instead of
//! cascading), and a slot that somehow produced no result decodes as
//! [`MapError::Missing`] instead of a second panic during reassembly.
//! [`parallel_map`] keeps the infallible signature by re-raising the first
//! failure *after* the pool has drained.
//!
//! # Example
//!
//! ```
//! use ascp_sim::campaign::parallel_map;
//!
//! let squares = parallel_map((0u64..8).collect(), 4, |_idx, x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Number of hardware threads available to the process (at least 1).
///
/// The default worker count for campaign runners and the `--threads` flag.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Why one work item of a [`try_parallel_map`] call produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The closure panicked on this item; the payload's message is
    /// captured. Sibling items are unaffected.
    Panicked {
        /// Panic payload rendered as text (`&str` / `String` payloads are
        /// passed through, anything else becomes a placeholder).
        message: String,
    },
    /// The item's result never arrived — a worker died without reporting.
    /// Should be unreachable given the panic capture, kept as a typed
    /// error so reassembly can never panic.
    Missing,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Panicked { message } => write!(f, "work item panicked: {message}"),
            Self::Missing => write!(f, "work item produced no result"),
        }
    }
}

impl std::error::Error for MapError {}

/// Renders a caught panic payload as text.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// The queue and result channels only hand out ownership of work items —
/// there is no invariant a panicking worker could have half-updated, so
/// the poison flag carries no information here and clearing it keeps
/// sibling workers alive.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps `f` over `items` on a pool of `threads` worker threads, returning
/// per-item results in input order: `Ok` for items that completed, a typed
/// [`MapError`] for items whose closure panicked.
///
/// Work is distributed through a channel work queue: each worker pulls the
/// next `(index, item)` pair when it finishes its previous one, so long
/// items never stall the queue behind short ones. `threads` is clamped to
/// `1..=items.len()`; with one thread (or one item) the map runs inline on
/// the calling thread with no pool at all (panics are still captured, so
/// the single-threaded path honors the same isolation contract).
///
/// The closure receives the item's input index so it can derive
/// per-item deterministic seeds; see the module docs for the determinism
/// contract.
pub fn try_parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Result<R, MapError>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    let guarded = |idx: usize, item: T| -> Result<R, MapError> {
        catch_unwind(AssertUnwindSafe(|| f(idx, item))).map_err(|payload| MapError::Panicked {
            message: panic_message(payload.as_ref()),
        })
    };
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }

    // Work queue: every item is enqueued up front, the sender dropped, so
    // workers drain the channel and exit on disconnect.
    let (work_tx, work_rx) = mpsc::channel::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        work_tx.send(pair).expect("receiver alive while enqueuing");
    }
    drop(work_tx);
    let work_rx = Mutex::new(work_rx);

    let (done_tx, done_rx) = mpsc::channel::<(usize, Result<R, MapError>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = &work_rx;
            let done_tx = done_tx.clone();
            let guarded = &guarded;
            scope.spawn(move || loop {
                // Hold the queue lock only for the pull, not the work. A
                // sibling that panicked while holding it (it cannot — the
                // guard is dropped before the closure runs — but defense
                // in depth) must not cascade, so the poison flag is
                // cleared rather than propagated.
                let job = lock_unpoisoned(work_rx).recv();
                match job {
                    Ok((idx, item)) => {
                        if done_tx.send((idx, guarded(idx, item))).is_err() {
                            break;
                        }
                    }
                    Err(_) => break, // queue drained
                }
            });
        }
        drop(done_tx);
    });

    // Reassemble in input order regardless of completion order. A slot no
    // worker reported decodes as an error, never a reassembly panic.
    let mut slots: Vec<Option<Result<R, MapError>>> = (0..n).map(|_| None).collect();
    for (idx, result) in done_rx {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or(Err(MapError::Missing)))
        .collect()
}

/// Maps `f` over `items` on a pool of `threads` worker threads, returning
/// the results in input order.
///
/// Infallible facade over [`try_parallel_map`]: use it when the closure
/// cannot fail. See [`try_parallel_map`] for the scheduling and
/// determinism contract.
///
/// # Panics
///
/// Re-raises the first item's captured panic **after** the pool has
/// drained — sibling items still complete, and the internal queue mutex
/// is never left poisoned for them.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| match slot {
            Ok(r) => r,
            Err(e) => panic!("parallel_map item {idx}: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 7, |idx, x| {
            assert_eq!(idx as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let work = |_: usize, x: u64| {
            // A seeded per-item computation, as a campaign would run.
            let mut acc = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..100 {
                acc = acc.rotate_left(7) ^ 0xdead_beef;
            }
            acc
        };
        let serial = parallel_map((0..64).collect(), 1, work);
        for threads in [2, 4, 8] {
            assert_eq!(serial, parallel_map((0..64).collect(), threads, work));
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..33).collect::<Vec<u32>>(), 4, |_, x| {
            count.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(count.load(Ordering::SeqCst), 33);
        assert_eq!(out.len(), 33);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = parallel_map(Vec::new(), 4, |_, x: u8| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![9u8], 16, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(available_parallelism() >= 1);
    }

    /// One panicking item must not take its siblings (or the queue mutex)
    /// with it: every other slot still completes, at any thread count.
    #[test]
    fn panic_is_isolated_to_its_slot() {
        for threads in [1, 2, 4, 8] {
            let out = try_parallel_map((0u64..16).collect(), threads, |_, x| {
                assert!(x != 5, "injected panic on item 5");
                x * 2
            });
            assert_eq!(out.len(), 16);
            for (i, slot) in out.iter().enumerate() {
                if i == 5 {
                    match slot {
                        Err(MapError::Panicked { message }) => {
                            assert!(message.contains("injected panic"), "{message}");
                        }
                        other => panic!("slot 5 should be Panicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(*slot, Ok(i as u64 * 2), "sibling slot {i} lost");
                }
            }
        }
    }

    /// Several concurrent panics drain cleanly too (regression for the
    /// poisoned-queue cascade).
    #[test]
    fn many_panics_still_drain_the_queue() {
        let out = try_parallel_map((0u32..40).collect(), 4, |_, x| {
            assert!(x % 3 != 0, "boom {x}");
            x
        });
        let ok = out.iter().filter(|s| s.is_ok()).count();
        let failed = out.iter().filter(|s| s.is_err()).count();
        assert_eq!(ok, 26);
        assert_eq!(failed, 14);
    }

    /// The infallible facade still propagates a panic — but only after the
    /// pool has drained, and with the item index in the message.
    #[test]
    fn parallel_map_reraises_after_drain() {
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0u64..8).collect(), 2, |_, x| {
                assert!(x != 3, "late failure");
                completed.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        assert!(panic_message(payload.as_ref()).contains("item 3"));
        assert_eq!(completed.load(Ordering::SeqCst), 7, "siblings must finish");
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&String::from("heap boom")), "heap boom");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }
}
