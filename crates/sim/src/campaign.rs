//! Parallel campaign execution: a fixed worker-thread pool that shards a
//! work list across threads while keeping results in input order.
//!
//! The paper's design flow (§2, Fig. 1) sweeps one programmable platform
//! across many configurations — the throughput bottleneck of platform-based
//! design. This module is the simulator's answer: [`parallel_map`] runs
//! independent work items on `std` threads fed from a channel work queue
//! (no external dependencies) and reassembles the results **in input
//! order**, so a campaign's output is bit-identical no matter how many
//! worker threads execute it or how the scheduler interleaves them.
//!
//! Determinism contract: each item is handed to the closure together with
//! its input index, the closure must derive any randomness from the item
//! itself (seeds travel *in* the work item, never in thread-local state),
//! and the result vector is ordered by that index. Under those rules
//! `parallel_map(items, 1, f) == parallel_map(items, n, f)` for every `n`.
//!
//! # Example
//!
//! ```
//! use ascp_sim::campaign::parallel_map;
//!
//! let squares = parallel_map((0u64..8).collect(), 4, |_idx, x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::mpsc;
use std::sync::Mutex;

/// Number of hardware threads available to the process (at least 1).
///
/// The default worker count for campaign runners and the `--threads` flag.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on a pool of `threads` worker threads, returning
/// the results in input order.
///
/// Work is distributed through a channel work queue: each worker pulls the
/// next `(index, item)` pair when it finishes its previous one, so long
/// items never stall the queue behind short ones. `threads` is clamped to
/// `1..=items.len()`; with one thread (or one item) the map runs inline on
/// the calling thread with no pool at all.
///
/// The closure receives the item's input index so it can derive
/// per-item deterministic seeds; see the module docs for the determinism
/// contract.
///
/// # Panics
///
/// Propagates a panic from any worker thread after the pool has drained
/// (via `std::thread::scope`).
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Work queue: every item is enqueued up front, the sender dropped, so
    // workers drain the channel and exit on disconnect.
    let (work_tx, work_rx) = mpsc::channel::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        work_tx.send(pair).expect("receiver alive while enqueuing");
    }
    drop(work_tx);
    let work_rx = Mutex::new(work_rx);

    let (done_tx, done_rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = &work_rx;
            let done_tx = done_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                // Hold the queue lock only for the pull, not the work.
                let job = work_rx.lock().expect("queue lock").recv();
                match job {
                    Ok((idx, item)) => {
                        if done_tx.send((idx, f(idx, item))).is_err() {
                            break;
                        }
                    }
                    Err(_) => break, // queue drained
                }
            });
        }
        drop(done_tx);
    });

    // Reassemble in input order regardless of completion order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (idx, result) in done_rx {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every work item produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 7, |idx, x| {
            assert_eq!(idx as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let work = |_: usize, x: u64| {
            // A seeded per-item computation, as a campaign would run.
            let mut acc = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..100 {
                acc = acc.rotate_left(7) ^ 0xdead_beef;
            }
            acc
        };
        let serial = parallel_map((0..64).collect(), 1, work);
        for threads in [2, 4, 8] {
            assert_eq!(serial, parallel_map((0..64).collect(), threads, work));
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..33).collect::<Vec<u32>>(), 4, |_, x| {
            count.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(count.load(Ordering::SeqCst), 33);
        assert_eq!(out.len(), 33);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = parallel_map(Vec::new(), 4, |_, x: u8| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![9u8], 16, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(available_parallelism() >= 1);
    }
}
