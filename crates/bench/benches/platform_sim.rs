//! Benchmarks of the platform co-simulation and 8051 subsystem: how many
//! simulated DSP ticks / CPU instructions per wall second the reproduction
//! sustains (the practical cost of every table/figure run).

use ascp_bench::harness::{bench, black_box};
use ascp_core::platform::{Platform, PlatformConfig};
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_mcu8051::asm::assemble;
use ascp_mcu8051::cpu::{Cpu, NullBus};
use ascp_mems::gyro::{GyroParams, RingGyro};
use ascp_sim::telemetry::TelemetryConfig;

fn main() {
    println!("== platform_sim ==");

    let mut gyro = RingGyro::new(GyroParams::default());
    bench("mems/gyro_rk4_step", || {
        gyro.step(black_box(0.1), 0.0, 1.0e-6)
    });

    let mut model = SystemModel::new(SystemModelConfig::default());
    bench("system_model/float_step", || model.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    bench("platform/dsp_tick_no_cpu", || p.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(true)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    bench("platform/dsp_tick_with_cpu", || p.step());

    // Telemetry overhead: the enabled (default) path vs the no-op path.
    // The acceptance bar for the observability layer is <= 5% on the
    // default sim loop; sampled profiling (1 in 64 ticks) and scrape-at-
    // monitoring-cadence keep the hot path nearly free.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p_on = Platform::new(cfg);
    let on = bench("platform/tick_telemetry_on", || p_on.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .telemetry(TelemetryConfig::disabled())
        .build()
        .expect("valid");
    let mut p_off = Platform::new(cfg);
    let off = bench("platform/tick_telemetry_off", || p_off.step());

    // Compare minima: the fastest sample of each is the least polluted by
    // scheduler noise, which otherwise swamps a few-ns-per-tick delta.
    let overhead_pct = (on.min_ns_per_iter - off.min_ns_per_iter) / off.min_ns_per_iter * 100.0;
    println!(
        "telemetry overhead: {overhead_pct:+.2}% per tick ({} <= 5% budget)",
        if overhead_pct <= 5.0 {
            "within"
        } else {
            "OVER"
        }
    );

    // Fault-injection + supervisor overhead: with an empty fault plan the
    // injection hook is one branch per tick, and the supervisor runs only
    // at the 1 kHz monitoring cadence. Acceptance bar: <= 2% on the
    // default sim loop versus the supervisor disabled outright.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p_sup = Platform::new(cfg);
    let sup_on = bench("platform/tick_supervisor_on", || p_sup.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .supervisor_enabled(false)
        .build()
        .expect("valid");
    let mut p_nosup = Platform::new(cfg);
    let sup_off = bench("platform/tick_supervisor_off", || p_nosup.step());

    let sup_pct =
        (sup_on.min_ns_per_iter - sup_off.min_ns_per_iter) / sup_off.min_ns_per_iter * 100.0;
    println!(
        "fault/supervisor overhead: {sup_pct:+.2}% per tick ({} <= 2% budget)",
        if sup_pct <= 2.0 { "within" } else { "OVER" }
    );

    let rom = assemble("start: mov a, #1\nadd a, #2\nmov r0, a\ndjnz r0, start\nsjmp start\n")
        .expect("assembles");
    let mut cpu = Cpu::new();
    cpu.load_code(&rom);
    let mut bus = NullBus;
    bench("mcu8051/instruction_step", || cpu.step(&mut bus));
}
