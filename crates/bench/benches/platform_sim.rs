//! Criterion benchmarks of the platform co-simulation and 8051 subsystem:
//! how many simulated DSP ticks / CPU instructions per wall second the
//! reproduction sustains (the practical cost of every table/figure run).

use ascp_core::platform::{Platform, PlatformConfig};
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_mcu8051::asm::assemble;
use ascp_mcu8051::cpu::{Cpu, NullBus};
use ascp_mems::gyro::{GyroParams, RingGyro};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_gyro_ode(c: &mut Criterion) {
    let mut g = c.benchmark_group("mems");
    g.throughput(Throughput::Elements(1));
    let mut gyro = RingGyro::new(GyroParams::default());
    g.bench_function("gyro_rk4_step", |b| {
        b.iter(|| black_box(gyro.step(black_box(0.1), 0.0, 1.0e-6)))
    });
    g.finish();
}

fn bench_system_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_model");
    g.throughput(Throughput::Elements(1));
    let mut model = SystemModel::new(SystemModelConfig::default());
    g.bench_function("float_step", |b| b.iter(|| black_box(model.step())));
    g.finish();
}

fn bench_platform(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform");
    g.throughput(Throughput::Elements(1));
    let mut cfg = PlatformConfig::default();
    cfg.cpu_enabled = false;
    let mut p = Platform::new(cfg);
    g.bench_function("dsp_tick_no_cpu", |b| b.iter(|| black_box(p.step())));
    let mut cfg = PlatformConfig::default();
    cfg.cpu_enabled = true;
    let mut p = Platform::new(cfg);
    g.bench_function("dsp_tick_with_cpu", |b| b.iter(|| black_box(p.step())));
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcu8051");
    g.throughput(Throughput::Elements(1));
    let rom = assemble(
        "start: mov a, #1\nadd a, #2\nmov r0, a\ndjnz r0, start\nsjmp start\n",
    )
    .expect("assembles");
    let mut cpu = Cpu::new();
    cpu.load_code(&rom);
    let mut bus = NullBus;
    g.bench_function("instruction_step", |b| {
        b.iter(|| black_box(cpu.step(&mut bus)))
    });
    g.finish();
}

criterion_group!(benches, bench_gyro_ode, bench_system_model, bench_platform, bench_cpu);
criterion_main!(benches);
