//! Benchmarks of the platform co-simulation and 8051 subsystem: how many
//! simulated DSP ticks / CPU instructions per wall second the reproduction
//! sustains (the practical cost of every table/figure run).
//!
//! Flags: `--short` shrinks the measurement protocol (gate/CI smoke);
//! `--check <path>` compares the run against a committed
//! `BENCH_platform_sim.json` and exits non-zero if any benchmark's min
//! ns/iter regressed by more than 50% (noise-tolerant perf guard). Full
//! (non-`--short`) runs rewrite `BENCH_platform_sim.json` at the
//! repository root; smoke runs only read it.

use ascp_bench::harness::{
    bench, black_box, check_against, check_path_from_args, repo_root_path, write_bench_json,
    BenchStats,
};
use ascp_core::platform::{Platform, PlatformConfig, PlatformFleet};
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_mcu8051::asm::assemble;
use ascp_mcu8051::cpu::{Cpu, NullBus};
use ascp_mems::gyro::{GyroParams, RingGyro};
use ascp_mems::resonator::Resonator;
use ascp_sim::telemetry::TelemetryConfig;

/// Benchmarks the batched translation-cache replay on `cpu`, reporting
/// nanoseconds **per retired instruction** (the raw harness numbers are
/// per `run_cycles` call). The firmware loops are periodic, so the
/// instructions retired per fixed-cycle chunk are constant once the
/// warm-up chunk has reached steady state — measured once, then used to
/// scale the per-call stats.
fn bench_replay(name: &str, cpu: &mut Cpu, bus: &mut NullBus) -> BenchStats {
    const CHUNK_CYCLES: u64 = 50_000;
    cpu.run_cycles(CHUNK_CYCLES, bus); // warm the cache, reach steady state
    let warm = cpu.instructions();
    cpu.run_cycles(CHUNK_CYCLES, bus);
    let per_chunk = (cpu.instructions() - warm).max(1);
    let raw = bench(&format!("{name}/chunk_50k"), || {
        cpu.run_cycles(CHUNK_CYCLES, bus)
    });
    #[allow(clippy::cast_precision_loss)]
    let n = per_chunk as f64;
    let stats = BenchStats {
        name: name.to_owned(),
        iters_per_sample: raw.iters_per_sample.saturating_mul(per_chunk),
        ns_per_iter: raw.ns_per_iter / n,
        min_ns_per_iter: raw.min_ns_per_iter / n,
    };
    println!("{stats}");
    stats
}

fn main() {
    println!("== platform_sim ==");
    let mut all: Vec<BenchStats> = Vec::new();

    let mut res = Resonator::new(15_000.0, 2_000.0);
    all.push(bench("mems/resonator_zoh_step", || {
        res.step(black_box(0.1), 1.0e-6);
    }));
    let mut res = Resonator::new(15_000.0, 2_000.0);
    all.push(bench("mems/resonator_rk4_step", || {
        res.step_rk4(black_box(0.1), 1.0e-6);
    }));

    let mut gyro = RingGyro::new(GyroParams::default());
    all.push(bench("mems/gyro_step", || {
        gyro.step(black_box(0.1), 0.0, 1.0e-6)
    }));

    let mut model = SystemModel::new(SystemModelConfig::default());
    all.push(bench("system_model/float_step", || model.step()));

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    all.push(bench("platform/dsp_tick_no_cpu", || p.step()));

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    all.push(bench("platform/block_1k_ticks_no_cpu", || {
        p.step_block(1000)
    }));

    let cfg = PlatformConfig::builder()
        .cpu_enabled(true)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    all.push(bench("platform/dsp_tick_with_cpu", || p.step()));

    // Telemetry overhead: the enabled (default) path vs the no-op path.
    // The acceptance bar for the observability layer is <= 5% on the
    // default sim loop; sampled profiling (1 in 64 ticks) and scrape-at-
    // monitoring-cadence keep the hot path nearly free.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p_on = Platform::new(cfg);
    let on = bench("platform/tick_telemetry_on", || p_on.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .telemetry(TelemetryConfig::disabled())
        .build()
        .expect("valid");
    let mut p_off = Platform::new(cfg);
    let off = bench("platform/tick_telemetry_off", || p_off.step());

    // Compare minima: the fastest sample of each is the least polluted by
    // scheduler noise, which otherwise swamps a few-ns-per-tick delta.
    let overhead_pct = (on.min_ns_per_iter - off.min_ns_per_iter) / off.min_ns_per_iter * 100.0;
    println!(
        "telemetry overhead: {overhead_pct:+.2}% per tick ({} <= 5% budget)",
        if overhead_pct <= 5.0 {
            "within"
        } else {
            "OVER"
        }
    );
    all.push(on);

    // Full observability: span tracing attached *and* the flight recorder
    // armed (but never triggered — the config is healthy). This is the
    // per-tick cost of running a campaign with `--tracing` + recorder on:
    // one `Option` branch plus a handful of `f64` stores for the ring.
    // Acceptance bar: <= 5% versus the plain default tick.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .recorder(ascp_sim::telemetry::RecorderConfig::fault_triggers(2048))
        .build()
        .expect("valid");
    let mut p_obs = Platform::new(cfg);
    let collector = ascp_sim::telemetry::trace::TraceCollector::new();
    p_obs.attach_trace(collector.recorder(1));
    let observed = bench("platform/dsp_tick_observed", || p_obs.step());
    let plain = all
        .iter()
        .find(|s| s.name == "platform/dsp_tick_no_cpu")
        .expect("baseline bench ran")
        .clone();
    let obs_pct =
        (observed.min_ns_per_iter - plain.min_ns_per_iter) / plain.min_ns_per_iter * 100.0;
    println!(
        "trace+recorder overhead: {obs_pct:+.2}% per tick ({} <= 5% budget)",
        if obs_pct <= 5.0 { "within" } else { "OVER" }
    );
    all.push(observed);
    all.push(off);

    // Fault-injection + supervisor overhead: with an empty fault plan the
    // injection hook is one branch per tick, and the supervisor runs only
    // at the 1 kHz monitoring cadence. Acceptance bar: <= 2% on the
    // default sim loop versus the supervisor disabled outright.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p_sup = Platform::new(cfg);
    let sup_on = bench("platform/tick_supervisor_on", || p_sup.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .supervisor_enabled(false)
        .build()
        .expect("valid");
    let mut p_nosup = Platform::new(cfg);
    let sup_off = bench("platform/tick_supervisor_off", || p_nosup.step());

    let sup_pct =
        (sup_on.min_ns_per_iter - sup_off.min_ns_per_iter) / sup_off.min_ns_per_iter * 100.0;
    println!(
        "fault/supervisor overhead: {sup_pct:+.2}% per tick ({} <= 2% budget)",
        if sup_pct <= 2.0 { "within" } else { "OVER" }
    );
    all.push(sup_on);
    all.push(sup_off);

    // Batched fleet throughput: N platforms stepped in lockstep through
    // the structure-of-arrays lane kernels versus the same N stepped
    // independently — the hot path under the `monte_carlo` campaign axis.
    // The original acceptance bar was > 4x aggregate ticks/sec at
    // N = 8–16; the honest measured result on this class of host is
    // ~2x (see DESIGN.md §14: the per-lane Gaussian noise draws are
    // inherently serial under the bit-exactness contract and dominate
    // the tick), so the print reports against the 4x bar truthfully
    // rather than moving the goalposts.
    const FLEET_N: usize = 16;
    let make_members = || -> Vec<Platform> {
        (0..FLEET_N)
            .map(|i| {
                Platform::new(
                    PlatformConfig::builder()
                        .cpu_enabled(false)
                        .seed(0x5eed_0000 + i as u64)
                        .build()
                        .expect("valid"),
                )
            })
            .collect()
    };
    let mut independents = make_members();
    let scalar_x16 = bench("platform/fleet_scalar_x16", || {
        for p in &mut independents {
            p.step();
        }
    });
    let mut fleet = PlatformFleet::new(make_members()).expect("fleet eligible");
    let fleet_x16 = bench("platform/fleet_tick_x16", || fleet.step());
    let fleet_speedup = scalar_x16.min_ns_per_iter / fleet_x16.min_ns_per_iter;
    println!(
        "fleet speedup at N={FLEET_N}: {fleet_speedup:.2}x aggregate ({} > 4x bar)",
        if fleet_speedup > 4.0 {
            "meets"
        } else {
            "MISSES"
        }
    );
    all.push(scalar_x16);
    all.push(fleet_x16);

    // ISS throughput. The headline `mcu8051/instruction_step` number is
    // the batched translation-cache replay (`Cpu::run_cycles` over hot
    // cached blocks), normalised per retired instruction; the uncached
    // comparator runs the same firmware through the per-step fetch/decode
    // interpreter. The acceptance bar (DESIGN.md §15) is >= 2x per
    // instruction. `block_replay` is the same path over a denser
    // compensation-style loop (MOVC table lookup, MUL scaling, nested
    // DJNZ) — closer to the monitor firmware's arithmetic mix.
    let rom = assemble("start: mov a, #1\nadd a, #2\nmov r0, a\ndjnz r0, start\nsjmp start\n")
        .expect("assembles");
    let mut bus = NullBus;
    let mut cached = Cpu::new();
    cached.load_code(&rom);
    let step_cached = bench_replay("mcu8051/instruction_step", &mut cached, &mut bus);
    let mut uncached = Cpu::new();
    uncached.load_code(&rom);
    uncached.set_xlate_enabled(false);
    let step_uncached = bench("mcu8051/instruction_step_uncached", || {
        uncached.step(&mut bus)
    });
    let iss_speedup = step_uncached.min_ns_per_iter / step_cached.min_ns_per_iter;
    println!(
        "translation-cache speedup: {iss_speedup:.2}x per instruction ({} >= 2x bar)",
        if iss_speedup >= 2.0 {
            "meets"
        } else {
            "MISSES"
        }
    );
    let dense = assemble(concat!(
        "start:\n",
        "    mov dptr, #table\n",
        "    mov a, r3\n",
        "    anl a, #0x0f\n",
        "    movc a, @a+dptr\n",
        "    mov r2, a\n",
        "    mov a, r4\n",
        "    mov b, #37\n",
        "    mul ab\n",
        "    add a, r2\n",
        "    mov r4, a\n",
        "    inc r3\n",
        "    mov r0, #8\n",
        "inner:\n",
        "    rlc a\n",
        "    xrl a, r2\n",
        "    djnz r0, inner\n",
        "    djnz r5, start\n",
        "    mov r5, #200\n",
        "    sjmp start\n",
        "table:\n",
        "    db 3, 14, 15, 92, 65, 35, 89, 79, 32, 38, 46, 26, 43, 38, 32, 7\n",
    ))
    .expect("assembles");
    let mut dense_cpu = Cpu::new();
    dense_cpu.load_code(&dense);
    let block_replay = bench_replay("mcu8051/block_replay", &mut dense_cpu, &mut bus);
    all.push(step_cached);
    all.push(step_uncached);
    all.push(block_replay);

    // Perf guard first (against the committed baseline), then rewrite the
    // trajectory file with this run. Short (smoke) runs never rewrite the
    // baseline: their shrunken protocol is too noisy to commit, and the
    // gate would otherwise dirty the checked-in file on every run.
    let regressed = check_path_from_args().map(|path| {
        check_against(&path, &all, 0.5)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()))
    });
    if !ascp_bench::harness::short_mode() {
        write_bench_json(repo_root_path("BENCH_platform_sim.json"), &all)
            .expect("write bench trajectory");
    }
    if let Some(regressed) = regressed {
        assert!(
            regressed.is_empty(),
            "perf smoke failed — regressed >50%: {regressed:?}"
        );
        println!("perf check passed (no benchmark regressed >50%)");
    }
}
