//! Benchmarks of the platform co-simulation and 8051 subsystem: how many
//! simulated DSP ticks / CPU instructions per wall second the reproduction
//! sustains (the practical cost of every table/figure run).
//!
//! Flags: `--short` shrinks the measurement protocol (gate/CI smoke);
//! `--check <path>` compares the run against a committed
//! `BENCH_platform_sim.json` and exits non-zero if any benchmark's min
//! ns/iter regressed by more than 50% (noise-tolerant perf guard). Full
//! (non-`--short`) runs rewrite `BENCH_platform_sim.json` at the
//! repository root; smoke runs only read it.

use ascp_bench::harness::{
    bench, black_box, check_against, check_path_from_args, repo_root_path, write_bench_json,
    BenchStats,
};
use ascp_core::platform::{Platform, PlatformConfig, PlatformFleet};
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_mcu8051::asm::assemble;
use ascp_mcu8051::cpu::{Cpu, NullBus};
use ascp_mems::gyro::{GyroParams, RingGyro};
use ascp_mems::resonator::Resonator;
use ascp_sim::telemetry::TelemetryConfig;

fn main() {
    println!("== platform_sim ==");
    let mut all: Vec<BenchStats> = Vec::new();

    let mut res = Resonator::new(15_000.0, 2_000.0);
    all.push(bench("mems/resonator_zoh_step", || {
        res.step(black_box(0.1), 1.0e-6);
    }));
    let mut res = Resonator::new(15_000.0, 2_000.0);
    all.push(bench("mems/resonator_rk4_step", || {
        res.step_rk4(black_box(0.1), 1.0e-6);
    }));

    let mut gyro = RingGyro::new(GyroParams::default());
    all.push(bench("mems/gyro_step", || {
        gyro.step(black_box(0.1), 0.0, 1.0e-6)
    }));

    let mut model = SystemModel::new(SystemModelConfig::default());
    all.push(bench("system_model/float_step", || model.step()));

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    all.push(bench("platform/dsp_tick_no_cpu", || p.step()));

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    all.push(bench("platform/block_1k_ticks_no_cpu", || {
        p.step_block(1000)
    }));

    let cfg = PlatformConfig::builder()
        .cpu_enabled(true)
        .build()
        .expect("valid");
    let mut p = Platform::new(cfg);
    all.push(bench("platform/dsp_tick_with_cpu", || p.step()));

    // Telemetry overhead: the enabled (default) path vs the no-op path.
    // The acceptance bar for the observability layer is <= 5% on the
    // default sim loop; sampled profiling (1 in 64 ticks) and scrape-at-
    // monitoring-cadence keep the hot path nearly free.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p_on = Platform::new(cfg);
    let on = bench("platform/tick_telemetry_on", || p_on.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .telemetry(TelemetryConfig::disabled())
        .build()
        .expect("valid");
    let mut p_off = Platform::new(cfg);
    let off = bench("platform/tick_telemetry_off", || p_off.step());

    // Compare minima: the fastest sample of each is the least polluted by
    // scheduler noise, which otherwise swamps a few-ns-per-tick delta.
    let overhead_pct = (on.min_ns_per_iter - off.min_ns_per_iter) / off.min_ns_per_iter * 100.0;
    println!(
        "telemetry overhead: {overhead_pct:+.2}% per tick ({} <= 5% budget)",
        if overhead_pct <= 5.0 {
            "within"
        } else {
            "OVER"
        }
    );
    all.push(on);

    // Full observability: span tracing attached *and* the flight recorder
    // armed (but never triggered — the config is healthy). This is the
    // per-tick cost of running a campaign with `--tracing` + recorder on:
    // one `Option` branch plus a handful of `f64` stores for the ring.
    // Acceptance bar: <= 5% versus the plain default tick.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .recorder(ascp_sim::telemetry::RecorderConfig::fault_triggers(2048))
        .build()
        .expect("valid");
    let mut p_obs = Platform::new(cfg);
    let collector = ascp_sim::telemetry::trace::TraceCollector::new();
    p_obs.attach_trace(collector.recorder(1));
    let observed = bench("platform/dsp_tick_observed", || p_obs.step());
    let plain = all
        .iter()
        .find(|s| s.name == "platform/dsp_tick_no_cpu")
        .expect("baseline bench ran")
        .clone();
    let obs_pct =
        (observed.min_ns_per_iter - plain.min_ns_per_iter) / plain.min_ns_per_iter * 100.0;
    println!(
        "trace+recorder overhead: {obs_pct:+.2}% per tick ({} <= 5% budget)",
        if obs_pct <= 5.0 { "within" } else { "OVER" }
    );
    all.push(observed);
    all.push(off);

    // Fault-injection + supervisor overhead: with an empty fault plan the
    // injection hook is one branch per tick, and the supervisor runs only
    // at the 1 kHz monitoring cadence. Acceptance bar: <= 2% on the
    // default sim loop versus the supervisor disabled outright.
    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid");
    let mut p_sup = Platform::new(cfg);
    let sup_on = bench("platform/tick_supervisor_on", || p_sup.step());

    let cfg = PlatformConfig::builder()
        .cpu_enabled(false)
        .supervisor_enabled(false)
        .build()
        .expect("valid");
    let mut p_nosup = Platform::new(cfg);
    let sup_off = bench("platform/tick_supervisor_off", || p_nosup.step());

    let sup_pct =
        (sup_on.min_ns_per_iter - sup_off.min_ns_per_iter) / sup_off.min_ns_per_iter * 100.0;
    println!(
        "fault/supervisor overhead: {sup_pct:+.2}% per tick ({} <= 2% budget)",
        if sup_pct <= 2.0 { "within" } else { "OVER" }
    );
    all.push(sup_on);
    all.push(sup_off);

    // Batched fleet throughput: N platforms stepped in lockstep through
    // the structure-of-arrays lane kernels versus the same N stepped
    // independently — the hot path under the `monte_carlo` campaign axis.
    // The original acceptance bar was > 4x aggregate ticks/sec at
    // N = 8–16; the honest measured result on this class of host is
    // ~2x (see DESIGN.md §14: the per-lane Gaussian noise draws are
    // inherently serial under the bit-exactness contract and dominate
    // the tick), so the print reports against the 4x bar truthfully
    // rather than moving the goalposts.
    const FLEET_N: usize = 16;
    let make_members = || -> Vec<Platform> {
        (0..FLEET_N)
            .map(|i| {
                Platform::new(
                    PlatformConfig::builder()
                        .cpu_enabled(false)
                        .seed(0x5eed_0000 + i as u64)
                        .build()
                        .expect("valid"),
                )
            })
            .collect()
    };
    let mut independents = make_members();
    let scalar_x16 = bench("platform/fleet_scalar_x16", || {
        for p in &mut independents {
            p.step();
        }
    });
    let mut fleet = PlatformFleet::new(make_members()).expect("fleet eligible");
    let fleet_x16 = bench("platform/fleet_tick_x16", || fleet.step());
    let fleet_speedup = scalar_x16.min_ns_per_iter / fleet_x16.min_ns_per_iter;
    println!(
        "fleet speedup at N={FLEET_N}: {fleet_speedup:.2}x aggregate ({} > 4x bar)",
        if fleet_speedup > 4.0 {
            "meets"
        } else {
            "MISSES"
        }
    );
    all.push(scalar_x16);
    all.push(fleet_x16);

    let rom = assemble("start: mov a, #1\nadd a, #2\nmov r0, a\ndjnz r0, start\nsjmp start\n")
        .expect("assembles");
    let mut cpu = Cpu::new();
    cpu.load_code(&rom);
    let mut bus = NullBus;
    all.push(bench("mcu8051/instruction_step", || cpu.step(&mut bus)));

    // Perf guard first (against the committed baseline), then rewrite the
    // trajectory file with this run. Short (smoke) runs never rewrite the
    // baseline: their shrunken protocol is too noisy to commit, and the
    // gate would otherwise dirty the checked-in file on every run.
    let regressed = check_path_from_args().map(|path| {
        check_against(&path, &all, 0.5)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()))
    });
    if !ascp_bench::harness::short_mode() {
        write_bench_json(repo_root_path("BENCH_platform_sim.json"), &all)
            .expect("write bench trajectory");
    }
    if let Some(regressed) = regressed {
        assert!(
            regressed.is_empty(),
            "perf smoke failed — regressed >50%: {regressed:?}"
        );
        println!("perf check passed (no benchmark regressed >50%)");
    }
}
