//! Criterion benchmarks of the fixed-point DSP IP blocks — the cost model
//! behind the cycle-budget analysis (each block must fit the 20 MHz / 12
//! machine-cycle budget in hardware; here we check the simulation kernel
//! sustains real-time-class throughput).

use ascp_dsp::agc::{Agc, AgcConfig};
use ascp_dsp::cic::CicDecimator;
use ascp_dsp::cordic::to_polar;
use ascp_dsp::demod::Demodulator;
use ascp_dsp::fft::{welch_psd, Window};
use ascp_dsp::fir::FirFilter;
use ascp_dsp::fixed::Q15;
use ascp_dsp::iir::{Biquad, BiquadCoeffs};
use ascp_dsp::nco::Nco;
use ascp_dsp::pll::{Pll, PllConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_fir(c: &mut Criterion) {
    let mut g = c.benchmark_group("fir");
    g.throughput(Throughput::Elements(1));
    let mut f = FirFilter::lowpass(0.05, 101);
    let x = Q15::from_f64(0.3);
    g.bench_function("101tap_per_sample", |b| {
        b.iter(|| black_box(f.process(black_box(x))))
    });
    g.finish();
}

fn bench_iir(c: &mut Criterion) {
    let mut g = c.benchmark_group("iir");
    g.throughput(Throughput::Elements(1));
    let mut bq = Biquad::new(BiquadCoeffs::lowpass(0.05, 0.707));
    let x = Q15::from_f64(0.3);
    g.bench_function("biquad_per_sample", |b| {
        b.iter(|| black_box(bq.process(black_box(x))))
    });
    g.finish();
}

fn bench_nco_cordic(c: &mut Criterion) {
    let mut g = c.benchmark_group("nco_cordic");
    g.throughput(Throughput::Elements(1));
    let mut nco = Nco::new();
    nco.set_frequency(15_000.0, 250_000.0);
    g.bench_function("nco_tick", |b| b.iter(|| black_box(nco.tick())));
    let i = Q15::from_f64(0.3);
    let q = Q15::from_f64(0.4);
    g.bench_function("cordic_to_polar", |b| {
        b.iter(|| black_box(to_polar(black_box(i), black_box(q))))
    });
    g.finish();
}

fn bench_loops(c: &mut Criterion) {
    let mut g = c.benchmark_group("loops");
    g.throughput(Throughput::Elements(1));
    let mut pll = Pll::new(PllConfig::default());
    let x = Q15::from_f64(0.4);
    g.bench_function("pll_per_sample", |b| {
        b.iter(|| black_box(pll.process(black_box(x))))
    });
    let mut agc = Agc::new(AgcConfig::default());
    let s = Q15::from_f64(0.6);
    let cc = Q15::from_f64(0.8);
    g.bench_function("agc_per_sample", |b| {
        b.iter(|| black_box(agc.process(black_box(x), s, cc)))
    });
    let mut demod = Demodulator::new(400.0 / 250_000.0, 101, 25);
    g.bench_function("demod_per_sample", |b| {
        b.iter(|| black_box(demod.process(black_box(x), s, cc)))
    });
    let mut cic = CicDecimator::new(3, 16);
    g.bench_function("cic_per_sample", |b| {
        b.iter(|| black_box(cic.process(black_box(x))))
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    let xs: Vec<f64> = (0..1 << 14).map(|k| (k as f64 * 0.1).sin()).collect();
    g.bench_function("welch_psd_16k", |b| {
        b.iter(|| black_box(welch_psd(black_box(&xs), 10_000.0, 1024, Window::Hann)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fir,
    bench_iir,
    bench_nco_cordic,
    bench_loops,
    bench_fft
);
criterion_main!(benches);
