//! Benchmarks of the fixed-point DSP IP blocks — the cost model behind the
//! cycle-budget analysis (each block must fit the 20 MHz / 12 machine-cycle
//! budget in hardware; here we check the simulation kernel sustains
//! real-time-class throughput).

use ascp_bench::harness::{bench, black_box};
use ascp_dsp::agc::{Agc, AgcConfig};
use ascp_dsp::cic::CicDecimator;
use ascp_dsp::cordic::to_polar;
use ascp_dsp::demod::Demodulator;
use ascp_dsp::fft::{welch_psd, Window};
use ascp_dsp::fir::FirFilter;
use ascp_dsp::fixed::Q15;
use ascp_dsp::iir::{Biquad, BiquadCoeffs};
use ascp_dsp::nco::Nco;
use ascp_dsp::pll::{Pll, PllConfig};

fn main() {
    println!("== dsp_blocks ==");

    let mut f = FirFilter::lowpass(0.05, 101);
    let x = Q15::from_f64(0.3);
    bench("fir/101tap_per_sample", || f.process(black_box(x)));

    let mut bq = Biquad::new(BiquadCoeffs::lowpass(0.05, 0.707));
    bench("iir/biquad_per_sample", || bq.process(black_box(x)));

    let mut nco = Nco::new();
    nco.set_frequency(15_000.0, 250_000.0);
    bench("nco_cordic/nco_tick", || nco.tick());
    let i = Q15::from_f64(0.3);
    let q = Q15::from_f64(0.4);
    bench("nco_cordic/cordic_to_polar", || {
        to_polar(black_box(i), black_box(q))
    });

    let mut pll = Pll::new(PllConfig::default());
    let x = Q15::from_f64(0.4);
    bench("loops/pll_per_sample", || pll.process(black_box(x)));
    let mut agc = Agc::new(AgcConfig::default());
    let s = Q15::from_f64(0.6);
    let cc = Q15::from_f64(0.8);
    bench("loops/agc_per_sample", || agc.process(black_box(x), s, cc));
    let mut demod = Demodulator::new(400.0 / 250_000.0, 101, 25);
    bench("loops/demod_per_sample", || {
        demod.process(black_box(x), s, cc)
    });
    let mut cic = CicDecimator::new(3, 16);
    bench("loops/cic_per_sample", || cic.process(black_box(x)));

    let xs: Vec<f64> = (0..1 << 14).map(|k| (k as f64 * 0.1).sin()).collect();
    bench("fft/welch_psd_16k", || {
        welch_psd(black_box(&xs), 10_000.0, 1024, Window::Hann)
    });
}
