//! Supervision-overhead benchmark: healthy campaign, watchdog on vs off.
//!
//! The supervision layer (panic isolation, deadline watchdog, retry
//! bookkeeping — PR 7) must be cheap enough to leave on everywhere: on a
//! healthy 16-scenario campaign the fully-armed runner (watchdog thread +
//! per-scenario deadline + retry budget) must stay within **2%** of the
//! bare runner's wall clock.
//!
//! Flags: `--short` shrinks the protocol (gate/CI smoke; never rewrites
//! the committed baseline and only warns on overhead), `--threads N` pins
//! the worker count. Full runs merge this bench's entries into
//! `BENCH_platform_sim.json` at the repo root, preserving the other
//! benches' entries.

use ascp_bench::harness::{merge_into_baseline, short_mode, threads_from_args, BenchStats};
use ascp_core::campaign::{CampaignOptions, CampaignRunner, ScenarioSpec, Step};
use ascp_core::platform::PlatformConfig;

/// The acceptance bar: supervised wall clock / bare wall clock − 1.
const MAX_OVERHEAD: f64 = 0.02;

/// A healthy 16-point rate table (same shape as `campaign_warmstart`'s):
/// no scenario panics, stalls, or overruns, so every supervised cycle is
/// pure overhead.
fn rate_table(settle_s: f64, window_s: f64) -> Vec<ScenarioSpec> {
    let config = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid campaign config");
    (0..16)
        .map(|i| {
            let dps = f64::from(i) * 20.0 - 150.0;
            ScenarioSpec::new(format!("rate_{i}"), config.clone())
                .with_seed(0xa5c)
                .with_step(Step::WaitReady { timeout_s: 2.0 })
                .with_step(Step::Run { seconds: settle_s })
                .with_step(Step::SetRate { dps })
                .with_step(Step::MeasureMeanRate {
                    label: "mean_dps".into(),
                    window_s,
                })
        })
        .collect()
}

/// Runs the campaign `reps` times and returns the fastest wall clock in
/// seconds (the minimum is the least scheduler-polluted sample).
fn best_wall(runner: &CampaignRunner, settle_s: f64, window_s: f64, reps: usize) -> f64 {
    (0..reps)
        .map(|_| runner.run(rate_table(settle_s, window_s)).wall_s)
        .fold(f64::INFINITY, f64::min)
}

fn main() -> std::io::Result<()> {
    println!("== campaign_supervised ==");
    let threads = threads_from_args();
    let (settle_s, window_s, reps) = if short_mode() {
        (0.02, 0.002, 2)
    } else {
        (0.05, 0.005, 4)
    };

    let bare = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .build()
            .expect("valid options"),
    );
    // Fully armed: watchdog thread scanning every slot against a (never
    // hit) deadline, retry budget, heartbeats from every step hook.
    let supervised = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .deadline_s(60.0)
            .retries(1)
            .build()
            .expect("valid options"),
    );

    // Identity first: supervision must change wall clock and nothing else.
    let bare_report = bare.run(rate_table(settle_s, window_s));
    let supervised_report = supervised.run(rate_table(settle_s, window_s));
    assert_eq!(
        bare_report.to_csv(),
        supervised_report.to_csv(),
        "supervision must be byte-identical to the bare runner on a healthy campaign"
    );
    assert_eq!(supervised_report.retries_total(), 0);
    assert_eq!(supervised_report.poisoned(), 0);

    let bare_s = best_wall(&bare, settle_s, window_s, reps).min(bare_report.wall_s);
    let supervised_s =
        best_wall(&supervised, settle_s, window_s, reps).min(supervised_report.wall_s);
    let overhead = supervised_s / bare_s - 1.0;
    println!("  threads            : {threads}");
    println!("  bare campaign      : {bare_s:.3} s (16 healthy scenarios)");
    println!("  supervised campaign: {supervised_s:.3} s (watchdog + retry budget armed)");
    println!(
        "  overhead           : {:+.2}% ({} <= {:.0}% acceptance bar)",
        overhead * 100.0,
        if overhead <= MAX_OVERHEAD {
            "within"
        } else {
            "OVER"
        },
        MAX_OVERHEAD * 100.0
    );

    let per = |name: &str, wall: f64| BenchStats {
        name: name.to_owned(),
        iters_per_sample: 1,
        ns_per_iter: wall * 1.0e9,
        min_ns_per_iter: wall * 1.0e9,
    };
    let stats = [
        per("campaign/supervised_16_off", bare_s),
        per("campaign/supervised_16_on", supervised_s),
    ];
    if short_mode() {
        // Short samples are too noisy to commit or to gate on; report only.
        println!("(short mode: baseline not rewritten, overhead informational)");
    } else {
        assert!(
            overhead <= MAX_OVERHEAD,
            "supervision overhead {:.2}% exceeds the {:.0}% bar",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        merge_into_baseline(&stats)?;
    }
    Ok(())
}
