//! Warm-start campaign benchmark: cold vs checkpoint-cached settle.
//!
//! A rate-table campaign is lock-dominated: every scenario spends most of
//! its simulated time waiting for PLL lock and AGC settling before a short
//! measurement window. With `CampaignOptions::builder().warm_start(true)`, scenarios
//! that share a settle recipe restore one cached checkpoint instead of
//! re-running the transient — this bench measures the wall-clock win on a
//! 16-point rate table and guards the >= 3x acceptance bar.
//!
//! Flags: `--short` shrinks the protocol (gate/CI smoke; never rewrites
//! the committed baseline), `--threads N` pins the worker count. Full runs
//! merge this bench's entries into `BENCH_platform_sim.json` at the repo
//! root, preserving the other benches' entries.

use ascp_bench::harness::{merge_into_baseline, short_mode, threads_from_args, BenchStats};
use ascp_core::campaign::{CampaignOptions, CampaignRunner, ScenarioSpec, Step};
use ascp_core::platform::PlatformConfig;

/// The lock-dominated 16-point rate table: one shared settle recipe
/// (identical config, seed and bring-up prefix), sixteen different
/// stimulus points.
fn rate_table(settle_s: f64, window_s: f64) -> Vec<ScenarioSpec> {
    let config = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid campaign config");
    (0..16)
        .map(|i| {
            let dps = f64::from(i) * 20.0 - 150.0;
            ScenarioSpec::new(format!("rate_{i}"), config.clone())
                .with_seed(0xa5c)
                .with_step(Step::WaitReady { timeout_s: 2.0 })
                .with_step(Step::Run { seconds: settle_s })
                .with_step(Step::SetRate { dps })
                .with_step(Step::MeasureMeanRate {
                    label: "mean_dps".into(),
                    window_s,
                })
        })
        .collect()
}

/// Runs the campaign `reps` times and returns the fastest wall clock in
/// seconds (the minimum is the least scheduler-polluted sample).
fn best_wall(runner: &CampaignRunner, settle_s: f64, window_s: f64, reps: usize) -> f64 {
    (0..reps)
        .map(|_| runner.run(rate_table(settle_s, window_s)).wall_s)
        .fold(f64::INFINITY, f64::min)
}

fn main() -> std::io::Result<()> {
    println!("== campaign_warmstart ==");
    let threads = threads_from_args();
    // The short profile keeps the same shape (lock transient dominates)
    // with a ~10x smaller measurement window; good enough for the smoke
    // gate, too noisy to commit.
    let (settle_s, window_s, reps) = if short_mode() {
        (0.02, 0.002, 1)
    } else {
        (0.05, 0.005, 2)
    };

    let cold_runner = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .build()
            .expect("valid options"),
    );
    let warm_runner = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .warm_start(true)
            .build()
            .expect("valid options"),
    );

    // Byte-identity first: warm-start must change wall clock and nothing
    // else, whatever the thread count.
    let cold_report = cold_runner.run(rate_table(settle_s, window_s));
    let warm_report = warm_runner.run(rate_table(settle_s, window_s));
    assert_eq!(
        cold_report.to_csv(),
        warm_report.to_csv(),
        "warm-start must be byte-identical to cold"
    );
    assert_eq!(
        warm_report.warm_hits, 15,
        "15 of 16 scenarios must restore the cached settle"
    );

    let cold_s = best_wall(&cold_runner, settle_s, window_s, reps).min(cold_report.wall_s);
    let warm_s = best_wall(&warm_runner, settle_s, window_s, reps).min(warm_report.wall_s);
    let speedup = cold_s / warm_s;
    println!("  threads            : {threads}");
    println!("  cold campaign      : {cold_s:.3} s (16 scenarios, full settle each)");
    println!("  warm campaign      : {warm_s:.3} s (1 settle + 15 restores)");
    println!(
        "  speedup            : {speedup:.2}x ({} >= 3x acceptance bar)",
        if speedup >= 3.0 { "within" } else { "UNDER" }
    );

    let per = |name: &str, wall: f64| BenchStats {
        name: name.to_owned(),
        iters_per_sample: 1,
        ns_per_iter: wall * 1.0e9,
        min_ns_per_iter: wall * 1.0e9,
    };
    let stats = [
        per("campaign/rate_table_16_cold", cold_s),
        per("campaign/rate_table_16_warm", warm_s),
    ];
    if short_mode() {
        println!("(short mode: baseline not rewritten)");
    } else {
        merge_into_baseline(&stats)?;
    }
    Ok(())
}
