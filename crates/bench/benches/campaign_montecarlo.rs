//! Monte-Carlo campaign benchmark: batched fleet vs scalar lane execution.
//!
//! A [`ScenarioSpec::monte_carlo`] population expands into N dispersed
//! lanes that share a step program, which makes the campaign the natural
//! customer of the structure-of-arrays [`PlatformFleet`] path: the runner
//! groups eligible lanes and steps them in lockstep instead of running N
//! independent platforms. This bench measures the end-to-end campaign
//! wall-clock win of that batching (`fleet(true)` vs `fleet(false)` on an
//! otherwise identical runner) and asserts the byte-identity contract —
//! batching must change wall clock and nothing else.
//!
//! Flags: `--short` shrinks the protocol (gate/CI smoke; never rewrites
//! the committed baseline), `--threads N` pins the worker count. Full runs
//! merge this bench's entries into `BENCH_platform_sim.json` at the repo
//! root, preserving the other benches' entries.

use ascp_bench::harness::{merge_into_baseline, short_mode, threads_from_args, BenchStats};
use ascp_core::campaign::{CampaignOptions, CampaignRunner, Dispersion, ScenarioSpec, Step};
use ascp_core::platform::PlatformConfig;

/// Fleet width exercised by the population; matches `FLEET_GROUP_MAX`.
const LANES: usize = 16;

/// A 16-lane Monte-Carlo population over the fleet-safe step vocabulary:
/// run, retarget, measure. Dispersion magnitudes sit at realistic
/// trim-spread levels so the lanes are genuinely distinct platforms.
fn population(run_s: f64, window_s: f64) -> Vec<ScenarioSpec> {
    let config = PlatformConfig::builder()
        .cpu_enabled(false)
        .seed(0x0c17)
        .build()
        .expect("valid campaign config");
    let dispersion = Dispersion::none()
        .with_omega_frac(0.02)
        .with_q_frac(0.05)
        .with_offset_dps(10.0)
        .with_gain_frac(0.03);
    vec![ScenarioSpec::new("mc_population", config)
        .with_step(Step::Run { seconds: run_s })
        .with_step(Step::SetRate { dps: 60.0 })
        .with_step(Step::MeasureMeanRate {
            label: "mean_dps".into(),
            window_s,
        })
        .monte_carlo(LANES, dispersion)]
}

/// Runs the campaign `reps` times and returns the fastest wall clock in
/// seconds (the minimum is the least scheduler-polluted sample).
fn best_wall(runner: &CampaignRunner, run_s: f64, window_s: f64, reps: usize) -> f64 {
    (0..reps)
        .map(|_| runner.run(population(run_s, window_s)).wall_s)
        .fold(f64::INFINITY, f64::min)
}

fn main() -> std::io::Result<()> {
    println!("== campaign_montecarlo ==");
    let threads = threads_from_args();
    let (run_s, window_s, reps) = if short_mode() {
        (0.02, 0.005, 1)
    } else {
        (0.1, 0.02, 2)
    };

    let runner_with = |fleet: bool| {
        CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(threads)
                .fleet(fleet)
                .build()
                .expect("valid options"),
        )
    };
    let scalar_runner = runner_with(false);
    let fleet_runner = runner_with(true);

    // Byte-identity first: the fleet path must be invisible in every
    // campaign artifact, whatever the thread count.
    let scalar_report = scalar_runner.run(population(run_s, window_s));
    let fleet_report = fleet_runner.run(population(run_s, window_s));
    assert_eq!(
        scalar_report.to_csv(),
        fleet_report.to_csv(),
        "fleet campaign must be byte-identical to scalar"
    );
    assert_eq!(
        fleet_report.outcomes.len(),
        LANES,
        "population must expand to one outcome per lane"
    );

    let scalar_s = best_wall(&scalar_runner, run_s, window_s, reps).min(scalar_report.wall_s);
    let fleet_s = best_wall(&fleet_runner, run_s, window_s, reps).min(fleet_report.wall_s);
    let speedup = scalar_s / fleet_s;
    println!("  threads            : {threads}");
    println!("  scalar campaign    : {scalar_s:.3} s ({LANES} independent lanes)");
    println!("  fleet campaign     : {fleet_s:.3} s (one lockstep group)");
    println!(
        "  speedup            : {speedup:.2}x ({} >= 1.5x acceptance bar)",
        if speedup >= 1.5 { "within" } else { "UNDER" }
    );

    let per = |name: &str, wall: f64| BenchStats {
        name: name.to_owned(),
        iters_per_sample: 1,
        ns_per_iter: wall * 1.0e9,
        min_ns_per_iter: wall * 1.0e9,
    };
    let stats = [
        per("campaign/montecarlo_16_scalar", scalar_s),
        per("campaign/montecarlo_16_fleet", fleet_s),
    ];
    if short_mode() {
        println!("(short mode: baseline not rewritten)");
    } else {
        merge_into_baseline(&stats)?;
    }
    Ok(())
}
