//! Minimal wall-clock micro-benchmark harness.
//!
//! Replaces criterion so the benches build with no registry access. The
//! protocol is the classic warmup → calibrate → sample loop: each sample
//! times a fixed batch of iterations, and the *median* sample is reported
//! to resist scheduler noise. Accuracy is in the few-percent range, which
//! is all the cycle-budget comparisons here need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Parses a `--threads N` (or `--threads=N`) flag from the process
/// arguments; defaults to the machine's available parallelism. Every
/// campaign-based bin routes its worker count through this, so
/// `cargo run --bin fault_campaign -- --threads 4` works uniformly.
#[must_use]
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    ascp_sim::campaign::available_parallelism()
}

/// Result of one [`bench`] run.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark label.
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Minimum nanoseconds per iteration across samples.
    pub min_ns_per_iter: f64,
}

impl BenchStats {
    /// Iterations per second implied by the median sample.
    #[must_use]
    pub fn per_second(&self) -> f64 {
        1.0e9 / self.ns_per_iter
    }
}

impl std::fmt::Display for BenchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} {:>12.1} ns/iter  ({:>14.0} iter/s)",
            self.name,
            self.ns_per_iter,
            self.per_second()
        )
    }
}

/// Times `f`, prints the result, and returns the stats.
///
/// The return value of `f` is passed through [`black_box`] so the work is
/// not optimized away; wrap inputs in `black_box` at the call site when
/// they are loop-invariant.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchStats {
    // Warm up (and measure a rough per-call cost) for ~20 ms.
    let warmup = Duration::from_millis(20);
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < warmup {
        black_box(f());
        warm_iters += 1;
    }
    let rough_ns = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;

    // Calibrate batches to ~10 ms each, then take the median of 9.
    let iters_per_sample = ((10.0e6 / rough_ns) as u64).clamp(1, 100_000_000);
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let stats = BenchStats {
        name: name.to_owned(),
        iters_per_sample,
        ns_per_iter: samples[samples.len() / 2],
        min_ns_per_iter: samples[0],
    };
    println!("{stats}");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_timing() {
        let s = bench("noop_add", || black_box(1u64) + black_box(2u64));
        assert!(
            s.ns_per_iter > 0.0 && s.ns_per_iter < 1.0e6,
            "{}",
            s.ns_per_iter
        );
        assert!(s.min_ns_per_iter <= s.ns_per_iter);
    }
}
