//! Minimal wall-clock micro-benchmark harness.
//!
//! Replaces criterion so the benches build with no registry access. The
//! protocol is the classic warmup → calibrate → sample loop: each sample
//! times a fixed batch of iterations, and the *median* sample is reported
//! to resist scheduler noise. Accuracy is in the few-percent range, which
//! is all the cycle-budget comparisons here need.

use ascp_core::campaign::{CampaignObserver, ScenarioProgress};
use std::error::Error;
use std::io;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Returns `true` when the process was started with `--short`: benches
/// shrink their warmup/sample budget (~10× faster, noisier) so the
/// repository gate and CI can smoke-run the kernel benches without paying
/// the full measurement protocol.
#[must_use]
pub fn short_mode() -> bool {
    std::env::args().any(|a| a == "--short")
}

/// Resolves `name` against the repository root (two levels above this
/// crate's manifest). Cargo runs bench binaries with the *package*
/// directory as cwd, so a bare relative filename would land in
/// `crates/bench/`; the committed bench-trajectory file lives at the
/// repo root. Absolute paths pass through unchanged.
#[must_use]
pub fn repo_root_path(name: impl AsRef<Path>) -> PathBuf {
    let name = name.as_ref();
    if name.is_absolute() {
        name.to_path_buf()
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(name)
    }
}

/// Parses `--check <path>` (or `--check=<path>`) from the process
/// arguments: the committed bench-trajectory file to guard against.
/// Relative paths are resolved against the repository root (see
/// [`repo_root_path`]).
#[must_use]
pub fn check_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--check" {
            return args.next().map(repo_root_path);
        }
        if let Some(v) = a.strip_prefix("--check=") {
            return Some(repo_root_path(v));
        }
    }
    None
}

/// Parses a `--threads N` (or `--threads=N`) flag from the process
/// arguments; defaults to the machine's available parallelism. Every
/// campaign-based bin routes its worker count through this, so
/// `cargo run --bin fault_campaign -- --threads 4` works uniformly.
#[must_use]
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    ascp_sim::campaign::available_parallelism()
}

/// Returns `true` when the bare flag `--<name>` appears in the process
/// arguments (`--chaos`, `--smoke`, …).
#[must_use]
pub fn flag_present(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Exit code for scenario-level failures: undetected faults, poisoned
/// (retry-exhausted) scenarios, coverage regressions. The campaign ran;
/// its *results* are bad.
pub const EXIT_SCENARIO_FAILURE: i32 = 1;

/// Exit code for infrastructure errors: journal create/read failures,
/// I/O errors, checkpoint decode errors. The campaign could not run (or
/// could not persist) at all.
pub const EXIT_INFRA_ERROR: i32 = 2;

/// Runs a campaign bin under the shared exit-code taxonomy: the closure
/// returns the exit code for completed runs (0 ok, [`EXIT_SCENARIO_FAILURE`]
/// for bad results), and any propagated error is reported on stderr and
/// mapped to [`EXIT_INFRA_ERROR`].
pub fn run_to_exit(name: &str, run: impl FnOnce() -> Result<i32, Box<dyn Error>>) -> ! {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("{name}: infrastructure error: {e}");
            std::process::exit(EXIT_INFRA_ERROR);
        }
    }
}

/// Parses `--<name> <value>` (or `--<name>=<value>`) from the process
/// arguments. Shared by every bench bin that takes flag-style options
/// (`--checkpoint`, `--resume`, `--serve-metrics`, `--check-coverage`, …).
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_owned());
        }
    }
    None
}

/// Usage text answered to `--help` (and appended to flag errors) by
/// [`Args::parse`].
pub const USAGE: &str = "\
Shared campaign-bin options:
  --threads N           campaign worker threads (default: available parallelism)
  --seed N              base noise-seed override
  --smoke               CI smoke mode: skip the slow measurement arms
  --short               shrunken bench measurement protocol (~10x faster)
  --chaos               enable seeded chaos injection (worker panics/stalls)
  --chaos-seed N        chaos plan seed (default: bin-specific)
  --deadline S          per-scenario wall-clock watchdog, in seconds
  --journal PATH        crash-recoverable campaign journal (resumes if present)
  --checkpoint PATH     save a settled platform checkpoint after bring-up
  --resume PATH         restore a settled platform checkpoint
  --serve-metrics ADDR  live Prometheus endpoint (e.g. 127.0.0.1:9464)
  --check PATH          bench-trajectory baseline to check against
  --check-coverage PATH coverage-matrix baseline to check against
  --help                print this help and exit";

/// Typed command-line arguments shared by the campaign bins
/// (`fault_campaign`, `stability_allan`, the `ablation_*` family).
///
/// [`Args::parse`] recognises the full shared vocabulary — individual
/// bins simply ignore fields they have no use for — so every bin accepts
/// a uniform flag set, `--help` is answered consistently, and an unknown
/// flag (or a malformed value) is a usage error that exits with
/// [`EXIT_INFRA_ERROR`] instead of being silently ignored.
///
/// Not for `cargo bench` harness benches: libtest passes its own flags
/// (`--bench`, filter strings), which this parser would reject — benches
/// keep using the tolerant [`short_mode`] / [`check_path_from_args`]
/// helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// `--threads N`: campaign worker threads, clamped to ≥ 1.
    pub threads: usize,
    /// `--seed N`: base noise-seed override.
    pub seed: Option<u64>,
    /// `--smoke`: CI smoke mode (skip slow measurement arms).
    pub smoke: bool,
    /// `--short`: shrunken bench measurement protocol.
    pub short: bool,
    /// `--chaos`: enable seeded chaos injection.
    pub chaos: bool,
    /// `--chaos-seed N`: chaos plan seed.
    pub chaos_seed: Option<u64>,
    /// `--deadline S`: per-scenario wall-clock watchdog, seconds.
    pub deadline_s: Option<f64>,
    /// `--journal PATH`: crash-recoverable campaign journal.
    pub journal: Option<String>,
    /// `--checkpoint PATH`: save a settled platform checkpoint.
    pub checkpoint: Option<String>,
    /// `--resume PATH`: restore a settled platform checkpoint.
    pub resume: Option<String>,
    /// `--serve-metrics ADDR`: live Prometheus endpoint address.
    pub serve_metrics: Option<String>,
    /// `--check PATH`: bench-trajectory baseline, repo-root relative.
    pub check: Option<PathBuf>,
    /// `--check-coverage PATH`: coverage-matrix baseline.
    pub check_coverage: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            threads: ascp_sim::campaign::available_parallelism(),
            seed: None,
            smoke: false,
            short: false,
            chaos: false,
            chaos_seed: None,
            deadline_s: None,
            journal: None,
            checkpoint: None,
            resume: None,
            serve_metrics: None,
            check: None,
            check_coverage: None,
        }
    }
}

impl Args {
    /// Parses the process arguments; answers `--help` with [`USAGE`] on
    /// stdout (exit 0) and any parse error on stderr (exit
    /// [`EXIT_INFRA_ERROR`]).
    #[must_use]
    pub fn parse(bin: &str) -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(Some(args)) => args,
            Ok(None) => {
                println!("{bin}\n\n{USAGE}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{bin}: {e}\n\n{USAGE}");
                std::process::exit(EXIT_INFRA_ERROR);
            }
        }
    }

    /// Parses an explicit argument list (no program name). `Ok(None)`
    /// means `--help` was requested.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unknown flag, the flag whose
    /// value is missing, or the value that failed to parse.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Option<Self>, String> {
        let mut out = Self::default();
        let mut args = args.into_iter();
        // `--flag value` and `--flag=value` are both accepted.
        let next_value =
            |flag: &str, inline: Option<&str>, args: &mut dyn Iterator<Item = String>| {
                inline.map(str::to_owned).map_or_else(
                    || {
                        args.next()
                            .ok_or_else(|| format!("--{flag}: missing value"))
                    },
                    Ok,
                )
            };
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.strip_prefix("--") {
                Some(rest) => match rest.split_once('=') {
                    Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                    None => (rest.to_owned(), None),
                },
                None => return Err(format!("unexpected positional argument `{arg}`")),
            };
            let inline = inline.as_deref();
            match flag.as_str() {
                "help" => return Ok(None),
                "smoke" => out.smoke = true,
                "short" => out.short = true,
                "chaos" => out.chaos = true,
                "threads" => {
                    let v = next_value("threads", inline, &mut args)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--threads: not a number: `{v}`"))?;
                    out.threads = n.max(1);
                }
                "seed" => {
                    let v = next_value("seed", inline, &mut args)?;
                    out.seed = Some(
                        v.parse()
                            .map_err(|_| format!("--seed: not a number: `{v}`"))?,
                    );
                }
                "chaos-seed" => {
                    let v = next_value("chaos-seed", inline, &mut args)?;
                    out.chaos_seed = Some(
                        v.parse()
                            .map_err(|_| format!("--chaos-seed: not a number: `{v}`"))?,
                    );
                }
                "deadline" => {
                    let v = next_value("deadline", inline, &mut args)?;
                    let d: f64 = v
                        .parse()
                        .map_err(|_| format!("--deadline: not a number: `{v}`"))?;
                    if !d.is_finite() || d <= 0.0 {
                        return Err(format!("--deadline: must be finite and > 0 (got {v})"));
                    }
                    out.deadline_s = Some(d);
                }
                "journal" => out.journal = Some(next_value("journal", inline, &mut args)?),
                "checkpoint" => {
                    out.checkpoint = Some(next_value("checkpoint", inline, &mut args)?);
                }
                "resume" => out.resume = Some(next_value("resume", inline, &mut args)?),
                "serve-metrics" => {
                    out.serve_metrics = Some(next_value("serve-metrics", inline, &mut args)?);
                }
                "check" => {
                    out.check = Some(repo_root_path(next_value("check", inline, &mut args)?));
                }
                "check-coverage" => {
                    out.check_coverage = Some(next_value("check-coverage", inline, &mut args)?);
                }
                other => return Err(format!("unknown flag `--{other}`")),
            }
        }
        Ok(Some(out))
    }

    /// Builds a [`MetricsServer`] when `--serve-metrics` was given. A
    /// bind failure is reported on stderr and ignored (observability must
    /// never kill the run it observes).
    #[must_use]
    pub fn metrics_server(&self) -> Option<MetricsServer> {
        let addr = self.serve_metrics.as_deref()?;
        match MetricsServer::bind(addr) {
            Ok(server) => {
                println!("serving live metrics on http://{}/metrics", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("warning: --serve-metrics {addr}: bind failed ({e}); continuing without");
                None
            }
        }
    }
}

/// A std-only Prometheus scrape endpoint for live campaign observability.
///
/// Binds a TCP listener and serves the most recently published
/// ([`MetricsServer::publish`]) exposition body to every HTTP request on a
/// detached thread — no HTTP framework, no async runtime, no registry
/// access. Point a Prometheus scrape job (or `curl`) at the address while
/// a long campaign runs to watch scenario progress live.
///
/// The server also implements [`CampaignObserver`]: attach it to a
/// [`CampaignRunner`](ascp_core::campaign::CampaignRunner) via
/// `CampaignOptions::builder().observer(..)` and it self-updates `ascp_campaign_scenarios_completed`
/// / `ascp_campaign_recorder_triggers` gauges as scenarios finish, in
/// addition to whatever body the driver publishes.
#[derive(Debug, Clone)]
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    body: Arc<Mutex<String>>,
    completed: Arc<AtomicU64>,
    triggered: Arc<AtomicU64>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and starts the serving thread.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let server = Self {
            addr: listener.local_addr()?,
            body: Arc::new(Mutex::new(String::new())),
            completed: Arc::new(AtomicU64::new(0)),
            triggered: Arc::new(AtomicU64::new(0)),
        };
        let worker = server.clone();
        std::thread::Builder::new()
            .name("metrics-server".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    worker.serve_one(stream);
                }
            })?;
        Ok(server)
    }

    /// The bound address (useful with port `0`).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Replaces the published exposition body (Prometheus text format).
    pub fn publish(&self, exposition: String) {
        *self.body.lock().expect("metrics body lock") = exposition;
    }

    /// The current exposition body: the published text plus the live
    /// campaign-progress gauges maintained by the observer hook.
    #[must_use]
    pub fn exposition(&self) -> String {
        let mut body = self.body.lock().expect("metrics body lock").clone();
        let _ = std::fmt::Write::write_fmt(
            &mut body,
            format_args!(
                "# TYPE ascp_campaign_scenarios_completed gauge\n\
                 ascp_campaign_scenarios_completed {}\n\
                 # TYPE ascp_campaign_recorder_triggers gauge\n\
                 ascp_campaign_recorder_triggers {}\n",
                self.completed.load(Ordering::Relaxed),
                self.triggered.load(Ordering::Relaxed),
            ),
        );
        body
    }

    /// Answers one HTTP request with the current exposition. The request
    /// is read (bounded) and discarded: every path serves the metrics.
    fn serve_one(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        let body = self.exposition();
        let response = format!(
            "HTTP/1.1 200 OK\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

impl CampaignObserver for MetricsServer {
    fn scenario_finished(&self, progress: &ScenarioProgress) {
        self.completed
            .store(progress.completed as u64, Ordering::Relaxed);
        if progress.triggered {
            self.triggered.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Builds a [`MetricsServer`] when the process was started with
/// `--serve-metrics <addr>`. A bind failure is reported on stderr and
/// ignored (observability must never kill the run it observes).
#[must_use]
pub fn metrics_server_from_args() -> Option<MetricsServer> {
    let addr = arg_value("serve-metrics")?;
    match MetricsServer::bind(&addr) {
        Ok(server) => {
            println!("serving live metrics on http://{}/metrics", server.addr());
            Some(server)
        }
        Err(e) => {
            eprintln!("warning: --serve-metrics {addr}: bind failed ({e}); continuing without");
            None
        }
    }
}

/// Result of one [`bench()`] run.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark label.
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Minimum nanoseconds per iteration across samples.
    pub min_ns_per_iter: f64,
}

impl BenchStats {
    /// Iterations per second implied by the median sample.
    #[must_use]
    pub fn per_second(&self) -> f64 {
        1.0e9 / self.ns_per_iter
    }
}

impl std::fmt::Display for BenchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} {:>12.1} ns/iter  (min {:>10.1})  ({:>14.0} iter/s)",
            self.name,
            self.ns_per_iter,
            self.min_ns_per_iter,
            self.per_second()
        )
    }
}

/// Times `f`, prints the result, and returns the stats.
///
/// The return value of `f` is passed through [`black_box`] so the work is
/// not optimized away; wrap inputs in `black_box` at the call site when
/// they are loop-invariant. Under [`short_mode`] the warmup and sample
/// budget shrink ~10× (for gate/CI smoke runs).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchStats {
    let (warmup_ms, sample_ms, sample_count) = if short_mode() { (5, 1, 5) } else { (20, 10, 9) };
    // Warm up (and measure a rough per-call cost).
    let warmup = Duration::from_millis(warmup_ms);
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < warmup {
        black_box(f());
        warm_iters += 1;
    }
    let rough_ns = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;

    // Calibrate batches to ~`sample_ms` each, then take the median.
    let iters_per_sample = ((sample_ms as f64 * 1.0e6 / rough_ns) as u64).clamp(1, 100_000_000);
    let mut samples: Vec<f64> = (0..sample_count)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let stats = BenchStats {
        name: name.to_owned(),
        iters_per_sample,
        ns_per_iter: samples[samples.len() / 2],
        min_ns_per_iter: samples[0],
    };
    println!("{stats}");
    stats
}

/// Serializes a bench run as the repo's bench-trajectory JSON:
/// `{"<name>": {"min_ns_per_iter": …, "ns_per_iter": …, "per_second": …}}`,
/// keys in run order. Committed at the repo root as
/// `BENCH_platform_sim.json`, this is the baseline the CI perf-smoke step
/// guards against.
#[must_use]
pub fn bench_json(stats: &[BenchStats]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in stats.iter().enumerate() {
        let sep = if i + 1 == stats.len() { "" } else { "," };
        out.push_str(&format!(
            "  \"{}\": {{\"min_ns_per_iter\": {:.1}, \"ns_per_iter\": {:.1}, \"per_second\": {:.0}}}{sep}\n",
            s.name, s.min_ns_per_iter, s.ns_per_iter, s.per_second()
        ));
    }
    out.push_str("}\n");
    out
}

/// Writes the bench-trajectory JSON to `path` and reports it on stdout.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_bench_json(path: impl AsRef<Path>, stats: &[BenchStats]) -> io::Result<()> {
    std::fs::write(path.as_ref(), bench_json(stats))?;
    println!("bench trajectory -> {}", path.as_ref().display());
    Ok(())
}

/// Extracts `"name": {"min_ns_per_iter": X` pairs from a bench-trajectory
/// JSON body (the fixed subset [`bench_json`] emits — no general JSON
/// parser needed offline).
#[must_use]
pub fn parse_bench_json(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(idx) = rest.find("\"min_ns_per_iter\":") else {
            continue;
        };
        let tail = &rest[idx + "\"min_ns_per_iter\":".len()..];
        let num: String = tail
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_owned(), v));
        }
    }
    out
}

/// Splices this run's entries into the committed bench trajectory at the
/// repo root (`BENCH_platform_sim.json`), replacing lines whose benchmark
/// name matches one of `stats` **exactly** and keeping every other
/// benchmark's line verbatim — so independent bench bins can each merge
/// their own entries without clobbering each other's.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn merge_into_baseline(stats: &[BenchStats]) -> io::Result<()> {
    let path = repo_root_path("BENCH_platform_sim.json");
    let body = std::fs::read_to_string(&path).unwrap_or_else(|_| "{\n}\n".into());
    let replaced: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
    let mut lines: Vec<String> = body
        .lines()
        .map(str::trim)
        .filter(|l| {
            l.starts_with('"')
                && !replaced.iter().any(|name| {
                    l.strip_prefix('"')
                        .and_then(|rest| rest.split_once('"'))
                        .is_some_and(|(n, _)| n == *name)
                })
        })
        .map(|l| l.trim_end_matches(',').to_owned())
        .collect();
    for s in stats {
        lines.push(format!(
            "\"{}\": {{\"min_ns_per_iter\": {:.1}, \"ns_per_iter\": {:.1}, \"per_second\": {:.0}}}",
            s.name,
            s.min_ns_per_iter,
            s.ns_per_iter,
            s.per_second()
        ));
    }
    let mut out = String::from("{\n");
    for (i, l) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        out.push_str(&format!("  {l}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(&path, out)?;
    println!("bench trajectory -> {}", path.display());
    Ok(())
}

/// Compares a fresh run against a committed baseline file: prints one row
/// per shared benchmark and returns the names that regressed by more than
/// `tolerance` (e.g. `0.5` = 50% slower on the min-ns metric). Benchmarks
/// missing on either side are reported but never counted as regressions
/// (the guard is noise-tolerant by design: only a large, reproducible
/// slowdown on a known benchmark fails).
///
/// # Errors
///
/// Returns the underlying I/O error if the baseline cannot be read.
pub fn check_against(
    baseline_path: impl AsRef<Path>,
    stats: &[BenchStats],
    tolerance: f64,
) -> io::Result<Vec<String>> {
    let body = std::fs::read_to_string(baseline_path.as_ref())?;
    let baseline = parse_bench_json(&body);
    let mut regressed = Vec::new();
    println!(
        "== perf check vs {} (fail > {:.0}% on min ns/iter) ==",
        baseline_path.as_ref().display(),
        tolerance * 100.0
    );
    for s in stats {
        match baseline.iter().find(|(n, _)| n == &s.name) {
            Some((_, base_min)) if *base_min > 0.0 => {
                let delta = (s.min_ns_per_iter - base_min) / base_min;
                let verdict = if delta > tolerance { "REGRESSED" } else { "ok" };
                println!(
                    "  {:<28} base {:>10.1}  now {:>10.1}  ({:+7.1}%)  {verdict}",
                    s.name,
                    base_min,
                    s.min_ns_per_iter,
                    delta * 100.0
                );
                if delta > tolerance {
                    regressed.push(s.name.clone());
                }
            }
            _ => println!("  {:<28} (no baseline entry — skipped)", s.name),
        }
    }
    Ok(regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Args>, String> {
        Args::try_parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn args_parse_the_full_shared_vocabulary() {
        let args = parse(&[
            "--threads=4",
            "--seed",
            "7",
            "--smoke",
            "--chaos",
            "--chaos-seed=99",
            "--deadline",
            "2.5",
            "--journal",
            "j.bin",
            "--checkpoint=cp.bin",
            "--resume",
            "cp.bin",
            "--serve-metrics",
            "127.0.0.1:0",
            "--check-coverage",
            "cov.csv",
        ])
        .expect("valid")
        .expect("not help");
        assert_eq!(args.threads, 4);
        assert_eq!(args.seed, Some(7));
        assert!(args.smoke && args.chaos && !args.short);
        assert_eq!(args.chaos_seed, Some(99));
        assert_eq!(args.deadline_s, Some(2.5));
        assert_eq!(args.journal.as_deref(), Some("j.bin"));
        assert_eq!(args.checkpoint.as_deref(), Some("cp.bin"));
        assert_eq!(args.resume.as_deref(), Some("cp.bin"));
        assert_eq!(args.serve_metrics.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(args.check_coverage.as_deref(), Some("cov.csv"));
    }

    #[test]
    fn args_defaults_match_the_legacy_helpers() {
        let args = parse(&[]).expect("valid").expect("not help");
        assert_eq!(args, Args::default());
        assert_eq!(
            args.threads,
            ascp_sim::campaign::available_parallelism(),
            "default thread count is the machine's parallelism"
        );
        // `--threads 0` clamps like `threads_from_args` always has.
        let clamped = parse(&["--threads", "0"])
            .expect("valid")
            .expect("not help");
        assert_eq!(clamped.threads, 1);
    }

    #[test]
    fn args_reject_unknown_flags_and_bad_values() {
        assert!(parse(&["--frobnicate"])
            .expect_err("unknown flag")
            .contains("--frobnicate"));
        assert!(parse(&["positional"])
            .expect_err("positional")
            .contains("positional"));
        assert!(parse(&["--threads"])
            .expect_err("missing value")
            .contains("missing value"));
        assert!(parse(&["--threads", "many"])
            .expect_err("bad number")
            .contains("not a number"));
        assert!(parse(&["--deadline", "-1"])
            .expect_err("bad deadline")
            .contains("deadline"));
        assert!(parse(&["--help"]).expect("help is valid").is_none());
    }

    #[test]
    fn args_check_resolves_against_the_repo_root() {
        let args = parse(&["--check", "BENCH_x.json"])
            .expect("valid")
            .expect("not help");
        assert_eq!(args.check, Some(repo_root_path("BENCH_x.json")));
        let usage_flags = [
            "--threads",
            "--seed",
            "--smoke",
            "--short",
            "--chaos",
            "--chaos-seed",
            "--deadline",
            "--journal",
            "--checkpoint",
            "--resume",
            "--serve-metrics",
            "--check",
            "--check-coverage",
            "--help",
        ];
        for flag in usage_flags {
            assert!(USAGE.contains(flag), "{flag} missing from USAGE");
        }
    }

    #[test]
    fn bench_reports_plausible_timing() {
        let s = bench("noop_add", || black_box(1u64) + black_box(2u64));
        assert!(
            s.ns_per_iter > 0.0 && s.ns_per_iter < 1.0e6,
            "{}",
            s.ns_per_iter
        );
        assert!(s.min_ns_per_iter <= s.ns_per_iter);
    }

    #[test]
    fn bench_json_round_trips_min_ns() {
        let stats = vec![
            BenchStats {
                name: "platform/dsp_tick_no_cpu".into(),
                iters_per_sample: 1,
                ns_per_iter: 1000.0,
                min_ns_per_iter: 950.5,
            },
            BenchStats {
                name: "mems/gyro_step".into(),
                iters_per_sample: 1,
                ns_per_iter: 60.0,
                min_ns_per_iter: 55.0,
            },
        ];
        let body = bench_json(&stats);
        let parsed = parse_bench_json(&body);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "platform/dsp_tick_no_cpu");
        assert!((parsed[0].1 - 950.5).abs() < 1e-9);
        assert!((parsed[1].1 - 55.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_server_serves_published_body_over_loopback() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind loopback");
        server.publish("# TYPE ascp_up gauge\nascp_up 1\n".to_owned());
        server.scenario_finished(&ScenarioProgress {
            index: 0,
            total: 2,
            name: "smoke".to_owned(),
            wall_ms: 1.0,
            warm: None,
            triggered: true,
            completed: 1,
            retries: 0,
            status: ascp_core::campaign::ScenarioStatus::Done,
        });

        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("ascp_up 1"), "{response}");
        assert!(
            response.contains("ascp_campaign_scenarios_completed 1"),
            "{response}"
        );
        assert!(
            response.contains("ascp_campaign_recorder_triggers 1"),
            "{response}"
        );
    }

    #[test]
    fn check_against_flags_only_large_regressions() {
        let dir = std::env::temp_dir().join("ascp_bench_check_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("baseline.json");
        let baseline = vec![
            BenchStats {
                name: "a".into(),
                iters_per_sample: 1,
                ns_per_iter: 100.0,
                min_ns_per_iter: 100.0,
            },
            BenchStats {
                name: "b".into(),
                iters_per_sample: 1,
                ns_per_iter: 100.0,
                min_ns_per_iter: 100.0,
            },
        ];
        std::fs::write(&path, bench_json(&baseline)).expect("write baseline");
        let now = vec![
            BenchStats {
                name: "a".into(),
                iters_per_sample: 1,
                ns_per_iter: 120.0,
                min_ns_per_iter: 120.0, // +20%: within tolerance
            },
            BenchStats {
                name: "b".into(),
                iters_per_sample: 1,
                ns_per_iter: 200.0,
                min_ns_per_iter: 200.0, // +100%: regression
            },
            BenchStats {
                name: "c".into(), // no baseline: skipped, not a failure
                iters_per_sample: 1,
                ns_per_iter: 1.0,
                min_ns_per_iter: 1.0,
            },
        ];
        let regressed = check_against(&path, &now, 0.5).expect("check runs");
        assert_eq!(regressed, vec!["b".to_owned()]);
        std::fs::remove_file(&path).ok();
    }
}
