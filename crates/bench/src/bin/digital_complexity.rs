//! Digital-complexity regenerator: the paper's "roughly 200 Kgates ...
//! running a 20 MHz clock frequency" claim (§4.3).
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin digital_complexity
//! ```

use ascp_bench::{compare, paper, write_metrics};
use ascp_core::report::{CycleBudget, DigitalParams, GateReport};
use ascp_sim::telemetry::Telemetry;

fn main() -> std::io::Result<()> {
    let params = DigitalParams::default();
    let report = GateReport::estimate(&params);
    println!("{report}");

    println!("paper vs measured:");
    compare(
        "digital complexity",
        paper::DIGITAL_KGATES,
        report.total_gate_equivalents() / 1000.0,
        "kGE",
    );

    let budget = CycleBudget::default();
    println!("\n20 MHz cycle budget per 250 kHz DSP sample:");
    println!("  cycles available : {:.0}", budget.cycles_per_sample());
    println!(
        "  cycles demanded  : {:.0} (naive serial MAC — over budget!)",
        budget.cycles_demanded()
    );
    println!(
        "  with polyphase 25: {:.1} % utilization",
        budget.utilization_polyphase(25) * 100.0
    );
    compare(
        "clock frequency",
        paper::DIGITAL_CLOCK_MHZ,
        budget.clock_hz / 1.0e6,
        "MHz",
    );

    let mut tele = Telemetry::default();
    tele.gauge_set(
        "complexity.kgates",
        report.total_gate_equivalents() / 1000.0,
    );
    tele.gauge_set("clock.mhz", budget.clock_hz / 1.0e6);
    tele.gauge_set(
        "cycle_budget.utilization_polyphase25",
        budget.utilization_polyphase(25),
    );
    write_metrics("digital_complexity", &tele.snapshot(0.0))?;
    Ok(())
}
