//! Fig. 5 regenerator: "Waveforms of PLL locking (MATLAB)".
//!
//! Runs the float system model (the MATLAB stage) from rest and writes the
//! four traces the paper plots — amplitude control, phase error, amplitude
//! error, VCO control — to `target/experiments/fig5_pll_matlab.csv`.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin fig5_pll_matlab
//! ```

use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_sim::telemetry::{Event, Telemetry};

fn main() -> std::io::Result<()> {
    let cfg = SystemModelConfig::default();
    let mut model = SystemModel::new(cfg);

    println!("fig5: float system model, PLL+AGC locking from rest");
    let traces = model.run_traces(1.2, 4);
    let path = experiments_dir()?.join("fig5_pll_matlab.csv");
    traces.save_csv(&path).expect("write CSV");

    // Shape summary (what the paper's figure shows qualitatively).
    let phase = traces.get("phase_error").expect("trace");
    let amp_err = traces.get("amplitude_error").expect("trace");
    let vco = traces.get("vco_control").expect("trace");
    let drive = traces.get("amplitude_control").expect("trace");

    let tail_phase = ascp_sim::stats::rms(phase.values_after(1.0));
    let tail_amp = ascp_sim::stats::rms(amp_err.values_after(1.0));
    let peak_phase = ascp_sim::stats::peak(phase.values());

    println!("  locked              : {}", model.is_locked());
    println!("  final frequency     : {:.2} Hz", model.frequency().0);
    println!("  peak phase error    : {peak_phase:.4}");
    println!("  residual phase error: {tail_phase:.5} (RMS after 1 s)");
    println!("  residual amp error  : {tail_amp:.5} (RMS after 1 s)");
    println!(
        "  drive settles at    : {:.3} (full scale 1.0)",
        drive.last().unwrap_or(0.0)
    );
    println!(
        "  VCO control settles : {:.5} (normalized pull)",
        vco.last().unwrap_or(0.0)
    );
    println!("  traces -> {}", path.display());

    // The float model has no built-in collector; record the run summary.
    let mut tele = Telemetry::default();
    tele.gauge_set("pll.frequency_hz", model.frequency().0);
    tele.gauge_set("phase_error.rms_tail", tail_phase);
    tele.gauge_set("amplitude_error.rms_tail", tail_amp);
    tele.gauge_set("phase_error.peak", peak_phase);
    if model.is_locked() {
        tele.record_event(Event::PllLocked {
            t: 1.2,
            frequency_hz: model.frequency().0,
        });
    }
    write_metrics("fig5_pll_matlab", &tele.snapshot(1.2))?;
    println!(
        "shape check vs paper Fig. 5: errors decay to ~0, VCO and drive settle: {}",
        model.is_locked() && tail_phase < 0.01 && tail_amp < 0.02
    );
    Ok(())
}
