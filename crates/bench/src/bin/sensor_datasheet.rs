//! Cross-sensor datasheet campaign: the paper's platform-based-design
//! claim, demonstrated. One campaign binary characterizes **three sensor
//! families** through the same conditioning IP portfolio — the case-study
//! vibrating-ring gyro (full platform), the automotive MAP/IAT
//! pressure/temperature divider pair, and a capacitive crash accelerometer
//! (plus the promoted capacitive-pressure and LVDT-position demo sensors)
//! — and renders the merged results as a Table-1-style cross-sensor
//! datasheet.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin sensor_datasheet            # full
//! cargo run --release -p ascp-bench --bin sensor_datasheet -- --smoke # CI
//! ```
//!
//! Per sensor the campaign measures the static transfer (sensitivity,
//! linearity, zero offset), the output noise density, and the response to
//! the wire-harness fault classes the dbus-adc-style supervisor checks
//! introduce (`wire_not_connected`, `wire_short_to_ground`,
//! `wire_reverse_polarity`). Gyro scenarios run on the full-platform
//! campaign runner (Step DSL); the other sensors run as generic
//! [`SensorChannel`] scenarios on the same worker pool. Both outcome
//! streams merge into one [`CampaignReport`], so the CSV, telemetry and
//! coverage-matrix artifacts are shared.
//!
//! Artifacts: `DATASHEET.md` at the repo root (full run; smoke writes to
//! `target/experiments/`), the long-format campaign CSV, merged metrics
//! JSON, and the fault-class × transition coverage matrix. The process
//! exits non-zero when a scheduled wire fault goes undetected, a sensor
//! family fails to characterize, or (`--check-coverage`) a baseline
//! coverage cell goes dark.

use ascp_bench::harness::{repo_root_path, run_to_exit, Args, EXIT_SCENARIO_FAILURE};
use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::datasheet::{FaultCoverage, SensorColumn};
use ascp_core::prelude::*;
use ascp_mems::accel::CapacitiveAccelFrontEnd;
use ascp_mems::frontend::WireFault;
use ascp_mems::pressure::{IatThermistorFrontEnd, MapSensorFrontEnd};
use std::sync::Arc;

/// Channel wire-fault injection time / duration, seconds. The channel
/// supervisor window is 1 ms with a 3-window persistence filter, so 50 ms
/// of fault leaves ample margin for detection *and* latch.
const T_INJECT_S: f64 = 0.05;
const T_FAULT_S: f64 = 0.05;

/// Gyro fault timing (full-platform time scale, matches `fault_campaign`).
const GYRO_T_INJECT_S: f64 = 0.7;
const GYRO_T_FAULT_S: f64 = 0.3;

/// One generic-channel device entry in the sweep.
struct Device {
    name: &'static str,
    factory: Arc<dyn Fn(u64) -> SensorChannel + Send + Sync>,
    /// Static-transfer stimulus points, engineering units.
    points: Vec<f64>,
    /// Noise-density hold point, engineering units.
    noise_at: f64,
    /// Wire-fault classes this front-end's plausibility bands are
    /// designed to detect (the datasheet shows the per-sensor contrast).
    faults: Vec<WireFault>,
    seed: u64,
}

fn devices(smoke: bool) -> Vec<Device> {
    use WireFault::{NotConnected, ReversePolarity, ShortToGround};
    let thin = |points: Vec<f64>| -> Vec<f64> {
        if smoke {
            // Keep the end points and the middle: enough for a slope fit.
            let mid = points.len() / 2;
            vec![points[0], points[mid], points[points.len() - 1]]
        } else {
            points
        }
    };
    vec![
        Device {
            name: "map",
            factory: Arc::new(|seed| {
                let mut cfg = ChannelConfig::new("map", seed);
                cfg.adc_vref = 5.0;
                SensorChannel::new(cfg, Box::new(MapSensorFrontEnd::automotive(seed)))
            }),
            points: thin(vec![30.0, 75.0, 120.0, 165.0, 210.0, 255.0, 290.0]),
            noise_at: 101.325,
            faults: vec![NotConnected, ShortToGround, ReversePolarity],
            seed: 0x0DA7_0001,
        },
        Device {
            name: "iat",
            factory: Arc::new(|seed| {
                let mut cfg = ChannelConfig::new("iat", seed);
                cfg.adc_vref = 5.0;
                SensorChannel::new(cfg, Box::new(IatThermistorFrontEnd::automotive(seed)))
            }),
            points: thin(vec![-20.0, 0.0, 20.0, 40.0, 60.0, 85.0, 110.0]),
            noise_at: 25.0,
            // The thermistor's valid span crosses the protection-diode
            // band, so reverse polarity is undetectable by design.
            faults: vec![NotConnected, ShortToGround],
            seed: 0x0DA7_0002,
        },
        Device {
            name: "accel",
            factory: Arc::new(|seed| {
                SensorChannel::new(
                    ChannelConfig::new("accel", seed),
                    Box::new(CapacitiveAccelFrontEnd::crash_50g(seed)),
                )
            }),
            points: thin(vec![-40.0, -25.0, -10.0, 0.0, 10.0, 25.0, 40.0]),
            noise_at: 0.0,
            faults: vec![NotConnected, ShortToGround, ReversePolarity],
            seed: 0x0DA7_0003,
        },
    ]
}

/// Channel scenarios for one device: transfer, noise, one scenario per
/// designed-detectable wire fault.
fn channel_scenarios(dev: &Device, smoke: bool) -> Vec<ChannelScenario> {
    let mut out = Vec::new();
    out.push(ChannelScenario {
        name: format!("{}/transfer", dev.name),
        factory: dev.factory.clone(),
        measurement: ChannelMeasurement::StaticTransfer {
            points: dev.points.clone(),
            avg: if smoke { 16 } else { 64 },
        },
        seed: dev.seed,
    });
    out.push(ChannelScenario {
        name: format!("{}/noise", dev.name),
        factory: dev.factory.clone(),
        measurement: ChannelMeasurement::NoiseDensity {
            at: dev.noise_at,
            samples: if smoke { 1 << 10 } else { 1 << 13 },
        },
        seed: dev.seed,
    });
    for &fault in &dev.faults {
        out.push(ChannelScenario {
            name: format!("{}/fault/{}", dev.name, fault.label()),
            factory: dev.factory.clone(),
            measurement: ChannelMeasurement::WireFaultResponse {
                fault,
                at_s: T_INJECT_S,
                duration_s: T_FAULT_S,
            },
            seed: dev.seed,
        });
    }
    out
}

/// Gyro scenarios on the full-platform campaign runner: the datasheet
/// measurements plus the three new wire-fault classes (mapped onto the
/// pickoff harness by the platform fault catalog).
fn gyro_scenarios(smoke: bool) -> Vec<ScenarioSpec> {
    let quiet = || {
        PlatformConfig::builder()
            .quiet()
            .cpu_enabled(false)
            .build()
            .expect("valid gyro config")
    };
    let mut out = vec![ScenarioSpec::new("gyro/characterize", quiet())
        .with_step(Step::WaitReady { timeout_s: 2.0 })
        .with_step(Step::MeasureStaticTransfer {
            rate_points: if smoke {
                vec![-300.0, 0.0, 300.0]
            } else {
                vec![-300.0, -200.0, -100.0, 0.0, 100.0, 200.0, 300.0]
            },
            samples_per_point: if smoke { 100 } else { 400 },
        })
        .with_step(Step::MeasureNoiseDensity {
            samples: if smoke { 1 << 12 } else { 1 << 14 },
        })];
    for kind in [
        FaultKind::WireNotConnected,
        FaultKind::WireShortToGround,
        FaultKind::WireReversePolarity,
    ] {
        let config = PlatformConfig::builder()
            .quiet()
            .cpu_enabled(false)
            .fault_one_shot(kind, GYRO_T_INJECT_S, GYRO_T_FAULT_S)
            .build()
            .expect("valid gyro fault config");
        out.push(
            ScenarioSpec::new(format!("gyro/fault/{}", kind.label()), config)
                .with_step(Step::WaitReady { timeout_s: 2.0 })
                .with_step(Step::WaitSupervisorNormal { timeout_s: 0.1 })
                .with_step(Step::FaultResponse {
                    t_inject_s: GYRO_T_INJECT_S,
                    t_clear_s: GYRO_T_INJECT_S + GYRO_T_FAULT_S,
                    detect_budget_s: 0.5,
                    recover_budget_s: 4.0,
                    measure_recovery: !smoke,
                }),
        );
    }
    out
}

/// Finds `device/suffix` in the merged outcomes.
fn outcome<'a>(report: &'a CampaignReport, name: &str) -> Option<&'a ScenarioOutcome> {
    report.outcomes.iter().find(|o| o.name == name)
}

fn fault_row(report: &CampaignReport, scenario: &str, class: &str) -> Option<FaultCoverage> {
    let o = outcome(report, scenario)?;
    Some(FaultCoverage {
        class: class.to_owned(),
        detected: o.metric("detected") == Some(1.0),
        latency_ms: o
            .metric("latency_ms")
            .or_else(|| o.metric("detection_latency_s").map(|s| s * 1.0e3))
            .unwrap_or(-1.0),
    })
}

/// Assembles one device column from the merged report.
fn device_column(report: &CampaignReport, dev: &Device) -> SensorColumn {
    // One throwaway channel instance answers the static questions
    // (unit, range) straight from the front-end contract.
    let ch = (dev.factory)(dev.seed);
    let (lo, hi) = ch.frontend().range();
    let unit = ch.frontend().unit();
    let transfer = outcome(report, &format!("{}/transfer", dev.name));
    let noise = outcome(report, &format!("{}/noise", dev.name));
    SensorColumn {
        device: dev.name.to_owned(),
        unit: unit.to_owned(),
        full_scale: format!("{lo}..{hi} {unit}"),
        sensitivity_v_per_eu: transfer.and_then(|o| o.metric("sensitivity_v_per_eu")),
        transfer_slope: transfer.and_then(|o| o.metric("transfer_slope")),
        linearity_pct_fs: transfer.and_then(|o| o.metric("linearity_pct_fs")),
        noise_density_eu_rthz: noise.and_then(|o| o.metric("noise_density_eu_rthz")),
        offset_eu: transfer.and_then(|o| o.metric("offset_eu")),
        fault_coverage: dev
            .faults
            .iter()
            .filter_map(|f| {
                fault_row(
                    report,
                    &format!("{}/fault/{}", dev.name, f.label()),
                    f.label(),
                )
            })
            .collect(),
    }
}

/// Assembles the gyro column (platform metric names differ: °/s scale,
/// volts-referenced sensitivity and null).
fn gyro_column(report: &CampaignReport) -> SensorColumn {
    let c = outcome(report, "gyro/characterize");
    let sensitivity = c.and_then(|o| o.metric("sensitivity_v_per_dps"));
    SensorColumn {
        device: "gyro".to_owned(),
        unit: "°/s".to_owned(),
        full_scale: "-300..300 °/s".to_owned(),
        sensitivity_v_per_eu: sensitivity,
        // The platform output is volts around a 2.5 V null; the channel
        // slope metric has no analogue here.
        transfer_slope: None,
        linearity_pct_fs: c.and_then(|o| o.metric("nonlinearity_pct_fs")),
        noise_density_eu_rthz: c.and_then(|o| o.metric("noise_density_dps_rthz")),
        offset_eu: c.and_then(|o| {
            let null = o.metric("null_v")?;
            Some((null - 2.5) / sensitivity?)
        }),
        fault_coverage: [
            FaultKind::WireNotConnected,
            FaultKind::WireShortToGround,
            FaultKind::WireReversePolarity,
        ]
        .iter()
        .filter_map(|k| fault_row(report, &format!("gyro/fault/{}", k.label()), k.label()))
        .collect(),
    }
}

fn main() {
    run_to_exit("sensor_datasheet", run);
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<i32, Box<dyn std::error::Error>> {
    let args = Args::parse("sensor_datasheet");
    let smoke = args.smoke;
    let threads = args.threads;
    let devs = devices(smoke);
    println!(
        "sensor_datasheet: characterizing {} sensor families on {threads} worker thread(s){}",
        devs.len() + 1,
        if smoke { " (smoke)" } else { "" }
    );

    // Phase 1: the gyro on the full-platform campaign runner.
    let runner = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .progress(true)
            .build()?,
    );
    let mut report = runner.run(gyro_scenarios(smoke));

    // Phase 2: the generic channels on the same worker pool; outcomes
    // merge into the same report so CSV/coverage/telemetry are shared.
    let channel: Vec<ChannelScenario> = devs
        .iter()
        .flat_map(|d| channel_scenarios(d, smoke))
        .collect();
    report
        .outcomes
        .extend(run_channel_scenarios(channel, threads));

    for o in &report.outcomes {
        print!("  {:<32}", o.name);
        if o.failed() {
            println!("POISONED");
            continue;
        }
        match o.metric("detected") {
            Some(1.0) => {
                let ms = o
                    .metric("latency_ms")
                    .or_else(|| o.metric("detection_latency_s").map(|s| s * 1.0e3))
                    .unwrap_or(-1.0);
                println!("detected in {ms:>6.1} ms");
            }
            Some(_) => println!("NOT DETECTED"),
            None => println!("done"),
        }
    }

    // The cross-sensor datasheet: gyro column first, then the sweep order.
    let mut sheet = CrossSensorReport::default();
    sheet.push(gyro_column(&report));
    for dev in &devs {
        sheet.push(device_column(&report, dev));
    }
    let md = sheet.to_markdown();
    let md_path = if smoke {
        experiments_dir()?.join("DATASHEET.md")
    } else {
        repo_root_path("DATASHEET.md")
    };
    std::fs::write(&md_path, &md)?;
    println!("  datasheet -> {}", md_path.display());
    let sheet_csv = experiments_dir()?.join("sensor_datasheet.sheet.csv");
    std::fs::write(&sheet_csv, sheet.to_csv())?;

    // Shared campaign artifacts.
    let csv_path = experiments_dir()?.join("sensor_datasheet.csv");
    std::fs::write(&csv_path, report.to_csv())?;
    println!("  csv -> {}", csv_path.display());
    write_metrics("sensor_datasheet", &report.to_telemetry())?;
    let coverage = report.coverage();
    std::fs::write(
        experiments_dir()?.join("sensor_datasheet.coverage.md"),
        coverage.to_markdown(),
    )?;
    let cov_csv = coverage.to_csv();
    std::fs::write(
        experiments_dir()?.join("sensor_datasheet.coverage.csv"),
        &cov_csv,
    )?;
    println!(
        "  coverage: {}/{} fault classes exercised -> target/experiments/",
        coverage.exercised_classes().len(),
        coverage.classes().len()
    );

    let mut failures = false;

    // Gate 1: every sensor family produced a characterization column.
    for col in &sheet.columns {
        if col.sensitivity_v_per_eu.is_none() || col.noise_density_eu_rthz.is_none() {
            eprintln!(
                "sensor_datasheet: sensor `{}` failed to characterize",
                col.device
            );
            failures = true;
        }
    }

    // Gate 2: every scheduled wire fault was detected.
    for col in &sheet.columns {
        for fc in &col.fault_coverage {
            if !fc.detected {
                eprintln!(
                    "sensor_datasheet: UNDETECTED wire fault {} on `{}`",
                    fc.class, col.device
                );
                failures = true;
            }
        }
    }

    // Gate 3: the three new wire-fault classes all appear in coverage.
    for class in [
        "wire_not_connected",
        "wire_short_to_ground",
        "wire_reverse_polarity",
    ] {
        if !sheet.fault_classes().iter().any(|c| c == class) {
            eprintln!("sensor_datasheet: wire-fault class `{class}` never exercised");
            failures = true;
        }
    }

    // Gate 4 (CI): baseline coverage cells must stay lit.
    if let Some(baseline) = args.check_coverage.as_deref() {
        let path = repo_root_path(baseline);
        let body = std::fs::read_to_string(&path)?;
        let lost = coverage.regressions(&body);
        if lost.is_empty() {
            println!("  coverage check vs {}: ok", path.display());
        } else {
            eprintln!(
                "sensor_datasheet: coverage REGRESSION vs {} — cells no longer exercised:",
                path.display()
            );
            for (class, edge) in &lost {
                eprintln!("  {class} × {edge}");
            }
            failures = true;
        }
    }

    let poisoned = report.failed_scenarios();
    if !poisoned.is_empty() {
        eprintln!("sensor_datasheet: POISONED scenarios: {poisoned:?}");
        failures = true;
    }
    if failures {
        return Ok(EXIT_SCENARIO_FAILURE);
    }
    println!(
        "sensor_datasheet: {} sensor families, {} scenarios, wall {:.2} s",
        sheet.columns.len(),
        report.outcomes.len(),
        report.wall_s
    );
    Ok(0)
}
