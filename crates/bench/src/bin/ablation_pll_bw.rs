//! Ablation: PLL loop-gain sweep — lock time vs residual phase jitter.
//!
//! The turn-on-time row of Table 1 is dominated by PLL acquisition; a
//! faster loop locks sooner but passes more noise into the drive phase.
//! This is the classic trade the MATLAB design-space exploration (§2)
//! settles before the RTL is frozen.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_pll_bw [-- --threads N]
//! ```
//!
//! The float-model gain sweep fans out on the raw
//! [`ascp_sim::campaign::parallel_map`] pool (it sweeps `SystemModel`
//! configurations, not platforms); the platform spot check is a one-entry
//! scenario campaign.

use ascp_bench::harness::Args;
use ascp_bench::write_metrics;
use ascp_core::prelude::*;
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_sim::campaign::parallel_map;
use ascp_sim::stats;

fn main() -> std::io::Result<()> {
    let threads = Args::parse("ablation_pll_bw").threads;
    println!(
        "ablation: PLL loop gain sweep (float model for speed, platform spot check, {threads} worker thread(s))"
    );
    println!(
        "  {:>8} {:>8} {:>12} {:>18}",
        "kp", "ki", "lock (ms)", "phase jitter (rms)"
    );
    let scales = vec![0.25, 0.5, 1.0, 2.0, 4.0];
    let rows = parallel_map(scales, threads, |_idx, scale| {
        let mut cfg = SystemModelConfig::default();
        cfg.pll_kp *= scale;
        cfg.pll_ki *= scale;
        cfg.gyro.noise_density = 0.05;
        let (kp, ki) = (cfg.pll_kp, cfg.pll_ki);
        let mut m = SystemModel::new(cfg);
        let lock = m.measure_lock_time(3.0, 50);
        // Residual phase jitter once locked.
        let mut phases = Vec::new();
        for _ in 0..200_000 {
            if let Some(s) = m.step() {
                phases.push(s.phase_error);
            }
        }
        (kp, ki, lock, stats::std_dev(&phases))
    });
    for (kp, ki, lock, jitter) in rows {
        match lock {
            Some(t) => println!("  {kp:>8.0} {ki:>8.0} {:>12.1} {jitter:>18.6}", t * 1.0e3),
            None => println!("  {kp:>8.0} {ki:>8.0} {:>12} {jitter:>18.6}", "no lock"),
        }
    }

    // Spot check: the shipped gains on the full platform.
    let config = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid spot-check config");
    let spot =
        ScenarioSpec::new("shipped_gains", config).with_step(Step::WaitReady { timeout_s: 3.0 });
    let report = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .build()
            .expect("valid options"),
    )
    .run(vec![spot]);
    let turn_on = report.metric("shipped_gains", "turn_on_s");
    println!(
        "  platform (shipped gains): turn-on {} ms",
        turn_on.map_or("timeout".into(), |v| format!("{:.0}", v * 1.0e3))
    );
    write_metrics("ablation_pll_bw", &report.to_telemetry())?;
    println!("expected shape: lock time falls ~1/gain; jitter grows with gain —");
    println!("the paper's 500 ms sits at the low-jitter end of this trade.");
    Ok(())
}
