//! Ablation: PLL loop-gain sweep — lock time vs residual phase jitter.
//!
//! The turn-on-time row of Table 1 is dominated by PLL acquisition; a
//! faster loop locks sooner but passes more noise into the drive phase.
//! This is the classic trade the MATLAB design-space exploration (§2)
//! settles before the RTL is frozen.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_pll_bw
//! ```

use ascp_bench::write_metrics;
use ascp_core::platform::{Platform, PlatformConfig};
use ascp_core::system::{SystemModel, SystemModelConfig};
use ascp_sim::stats;

fn main() -> std::io::Result<()> {
    println!("ablation: PLL loop gain sweep (float model for speed, platform spot check)");
    println!(
        "  {:>8} {:>8} {:>12} {:>18}",
        "kp", "ki", "lock (ms)", "phase jitter (rms)"
    );
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut cfg = SystemModelConfig::default();
        cfg.pll_kp *= scale;
        cfg.pll_ki *= scale;
        cfg.gyro.noise_density = 0.05;
        let mut m = SystemModel::new(cfg);
        let lock = m.measure_lock_time(3.0, 50);
        // Residual phase jitter once locked.
        let mut phases = Vec::new();
        for _ in 0..200_000 {
            if let Some(s) = m.step() {
                phases.push(s.phase_error);
            }
        }
        let jitter = stats::std_dev(&phases);
        match lock {
            Some(t) => println!(
                "  {:>8.0} {:>8.0} {:>12.1} {:>18.6}",
                cfg.pll_kp,
                cfg.pll_ki,
                t * 1.0e3,
                jitter
            ),
            None => println!(
                "  {:>8.0} {:>8.0} {:>12} {:>18.6}",
                cfg.pll_kp, cfg.pll_ki, "no lock", jitter
            ),
        }
    }

    // Spot check: the shipped gains on the full platform.
    let mut cfg = PlatformConfig::default();
    cfg.cpu_enabled = false;
    let mut p = Platform::new(cfg);
    let t = p.wait_for_ready(3.0).map(|s| s.to_millis());
    println!(
        "  platform (shipped gains): turn-on {} ms",
        t.map_or("timeout".into(), |v| format!("{v:.0}"))
    );
    write_metrics("ablation_pll_bw", &p.telemetry_snapshot())?;
    println!("expected shape: lock time falls ~1/gain; jitter grows with gain —");
    println!("the paper's 500 ms sits at the low-jitter end of this trade.");
    Ok(())
}
