//! Extension experiment: Allan-deviation stability analysis.
//!
//! The paper's Table 1 quotes only rate noise density; the modern way to
//! report a gyro's stability is the Allan deviation curve with its angle
//! random walk (−1/2 slope) and bias instability (flat bottom). This
//! extension records a long zero-rate run on the full platform and extracts
//! both figures — the evaluation a 2024 reviewer would have asked the 2005
//! authors for.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin stability_allan
//! ```

use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::characterize::RateSensor;
use ascp_core::platform::{Platform, PlatformConfig};
use ascp_sim::allan::{allan_deviation, angle_random_walk, bias_instability};
use std::io::Write;

fn main() -> std::io::Result<()> {
    let mut cfg = PlatformConfig::default();
    cfg.cpu_enabled = false;
    let mut p = Platform::new(cfg);
    println!("stability: locking, then recording 40 s of zero-rate output ...");
    p.wait_for_ready(2.0).expect("lock");

    let fs = p.output_sample_rate();
    let n = (40.0 * fs) as usize;
    let volts = p.sample_output(0.5, n);
    // Convert to rate using the nominal transfer (5 mV/°/s, 2.5 V null).
    let rate: Vec<f64> = volts.iter().map(|v| (v - 2.5) / 0.005).collect();

    let curve = allan_deviation(&rate, fs, 5);
    let path = experiments_dir()?.join("stability_allan.csv");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "tau_s,sigma_dps")?;
    for pt in &curve {
        writeln!(f, "{},{}", pt.tau, pt.sigma)?;
    }

    let arw = angle_random_walk(&curve);
    let bi = bias_instability(&curve);
    println!("  curve points       : {}", curve.len());
    println!(
        "  angle random walk  : {} °/s/√Hz-class (σ at τ=1 s)",
        arw.map_or("n/a".into(), |v| format!("{v:.4}"))
    );
    println!(
        "  bias instability   : {} °/s",
        bi.map_or("n/a".into(), |v| format!("{v:.4}"))
    );
    println!("  curve -> {}", path.display());
    write_metrics("stability_allan", &p.telemetry_snapshot())?;
    println!("shape check: −1/2 slope at short τ (white rate noise consistent with");
    println!("Table 1's density row), flattening toward the bias floor at long τ.");
    Ok(())
}
