//! Extension experiment: Allan-deviation stability analysis.
//!
//! The paper's Table 1 quotes only rate noise density; the modern way to
//! report a gyro's stability is the Allan deviation curve with its angle
//! random walk (−1/2 slope) and bias instability (flat bottom). This
//! extension records a long zero-rate run on the full platform and extracts
//! both figures — the evaluation a 2024 reviewer would have asked the 2005
//! authors for.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin stability_allan [-- --threads N]
//! ```
//!
//! The capture is a one-entry scenario campaign; the Allan analysis reads
//! the zero-rate series back out of the [`CampaignReport`].
//!
//! # Checkpoint & resume
//!
//! The lock transient is pure overhead when iterating on the analysis, so
//! the bring-up can be checkpointed and skipped on later runs:
//!
//! ```sh
//! # First run: lock, save the settled platform, then capture.
//! cargo run --release -p ascp-bench --bin stability_allan -- --checkpoint settled.ckpt
//! # Later runs: restore the settled platform, capture immediately.
//! cargo run --release -p ascp-bench --bin stability_allan -- --resume settled.ckpt
//! ```
//!
//! Restores are bit-exact (see [`ascp_core::checkpoint`]): a resumed run
//! produces byte-identical samples to the run that saved the checkpoint
//! continuing past it.

use ascp_bench::harness::{run_to_exit, Args, EXIT_SCENARIO_FAILURE};
use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::characterize::RateSensor;
use ascp_core::checkpoint;
use ascp_core::prelude::*;
use ascp_sim::allan::{allan_deviation, angle_random_walk, bias_instability};
use std::io::Write;
use std::sync::Arc;

fn io_err(e: checkpoint::CheckpointError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

fn main() {
    // Exit taxonomy: 0 ok, 1 scenario-level failures (poisoned capture
    // scenario, missing series), 2 infrastructure errors (I/O,
    // checkpoint decode).
    run_to_exit("stability_allan", run);
}

fn run() -> Result<i32, Box<dyn std::error::Error>> {
    let args = Args::parse("stability_allan");
    let threads = args.threads;
    let save_path = args.checkpoint.clone();
    let resume_path = args.resume.clone();
    let config = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid stability config");

    let (rate, fs, report) = if save_path.is_some() || resume_path.is_some() {
        // Platform-level flow: bring up (or restore) a settled platform,
        // optionally checkpoint it, then capture directly.
        let mut p = match &resume_path {
            Some(path) => {
                println!("stability: resuming settled platform from {path} ...");
                checkpoint::restore_from_file(config.clone(), path).map_err(io_err)?
            }
            None => {
                println!("stability: locking (bring-up will be checkpointed) ...");
                let mut p = Platform::new(config.clone());
                if p.wait_for_ready(2.0).is_none() {
                    eprintln!("stability_allan: platform failed to lock within 2 s");
                    return Ok(EXIT_SCENARIO_FAILURE);
                }
                p
            }
        };
        if let Some(path) = &save_path {
            checkpoint::save_to_file(&p, path).map_err(io_err)?;
            println!("  settled checkpoint -> {path}");
        }
        println!("stability: recording 40 s of zero-rate output ...");
        let fs = p.output_sample_rate();
        let n = (40.0 * fs).round() as usize;
        let volts = p.sample_output(0.5, n);
        // Nominal transfer: 5 mV/°/s around the 2.5 V null (the same
        // conversion Step::CaptureZeroRate applies).
        let rate: Vec<f64> = volts.iter().map(|v| (v - 2.5) / 0.005).collect();
        (rate, fs, None)
    } else {
        let spec = ScenarioSpec::new("stability", config)
            .with_step(Step::WaitReady { timeout_s: 2.0 })
            .with_step(Step::CaptureZeroRate {
                label: "zero_rate".into(),
                seconds: 40.0,
                settle_s: 0.5,
            });
        println!("stability: locking, then recording 40 s of zero-rate output ...");
        let metrics_server = args.metrics_server();
        let mut options = CampaignOptions::builder().threads(threads).progress(true);
        if let Some(server) = &metrics_server {
            options = options.observer(Arc::new(server.clone()));
        }
        let report = CampaignRunner::with_options(options.build()?).run(vec![spec]);
        if let Some(server) = &metrics_server {
            server.publish(report.to_telemetry().to_prometheus());
        }
        if report.poisoned() > 0 {
            eprintln!(
                "stability_allan: capture scenario poisoned: {:?}",
                report.failed_scenarios()
            );
            return Ok(EXIT_SCENARIO_FAILURE);
        }
        let (Some(rate), Some(fs)) = (
            report.series("stability", "zero_rate").map(<[f64]>::to_vec),
            report.metric("stability", "zero_rate_fs_hz"),
        ) else {
            eprintln!("stability_allan: capture scenario produced no zero-rate series");
            return Ok(EXIT_SCENARIO_FAILURE);
        };
        (rate, fs, Some(report))
    };

    let curve = allan_deviation(&rate, fs, 5);
    let path = experiments_dir()?.join("stability_allan.csv");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "tau_s,sigma_dps")?;
    for pt in &curve {
        writeln!(f, "{},{}", pt.tau, pt.sigma)?;
    }

    let arw = angle_random_walk(&curve);
    let bi = bias_instability(&curve);
    println!("  curve points       : {}", curve.len());
    println!(
        "  angle random walk  : {} °/s/√Hz-class (σ at τ=1 s)",
        arw.map_or("n/a".into(), |v| format!("{v:.4}"))
    );
    println!(
        "  bias instability   : {} °/s",
        bi.map_or("n/a".into(), |v| format!("{v:.4}"))
    );
    println!("  curve -> {}", path.display());
    if let Some(report) = report {
        write_metrics("stability_allan", &report.to_telemetry())?;
    }
    println!("shape check: −1/2 slope at short τ (white rate noise consistent with");
    println!("Table 1's density row), flattening toward the bias floor at long τ.");
    Ok(0)
}
