//! Extension experiment: Allan-deviation stability analysis.
//!
//! The paper's Table 1 quotes only rate noise density; the modern way to
//! report a gyro's stability is the Allan deviation curve with its angle
//! random walk (−1/2 slope) and bias instability (flat bottom). This
//! extension records a long zero-rate run on the full platform and extracts
//! both figures — the evaluation a 2024 reviewer would have asked the 2005
//! authors for.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin stability_allan [-- --threads N]
//! ```
//!
//! The capture is a one-entry scenario campaign; the Allan analysis reads
//! the zero-rate series back out of the [`CampaignReport`].

use ascp_bench::harness::threads_from_args;
use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::prelude::*;
use ascp_sim::allan::{allan_deviation, angle_random_walk, bias_instability};
use std::io::Write;

fn main() -> std::io::Result<()> {
    let threads = threads_from_args();
    let config = PlatformConfig::builder()
        .cpu_enabled(false)
        .build()
        .expect("valid stability config");
    let spec = ScenarioSpec::new("stability", config)
        .with_step(Step::WaitReady { timeout_s: 2.0 })
        .with_step(Step::CaptureZeroRate {
            label: "zero_rate".into(),
            seconds: 40.0,
            settle_s: 0.5,
        });
    println!("stability: locking, then recording 40 s of zero-rate output ...");
    let report = CampaignRunner::new().with_threads(threads).run(vec![spec]);

    let rate = report
        .series("stability", "zero_rate")
        .expect("zero-rate capture");
    let fs = report
        .metric("stability", "zero_rate_fs_hz")
        .expect("output sample rate");

    let curve = allan_deviation(rate, fs, 5);
    let path = experiments_dir()?.join("stability_allan.csv");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "tau_s,sigma_dps")?;
    for pt in &curve {
        writeln!(f, "{},{}", pt.tau, pt.sigma)?;
    }

    let arw = angle_random_walk(&curve);
    let bi = bias_instability(&curve);
    println!("  curve points       : {}", curve.len());
    println!(
        "  angle random walk  : {} °/s/√Hz-class (σ at τ=1 s)",
        arw.map_or("n/a".into(), |v| format!("{v:.4}"))
    );
    println!(
        "  bias instability   : {} °/s",
        bi.map_or("n/a".into(), |v| format!("{v:.4}"))
    );
    println!("  curve -> {}", path.display());
    write_metrics("stability_allan", &report.to_telemetry())?;
    println!("shape check: −1/2 slope at short τ (white rate noise consistent with");
    println!("Table 1's density row), flattening toward the bias floor at long τ.");
    Ok(())
}
