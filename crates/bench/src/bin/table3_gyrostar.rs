//! Table 3 regenerator: "Performance of Murata's Gyrostar".
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin table3_gyrostar
//! ```

use ascp_bench::{compare, paper, write_metrics};
use ascp_core::baseline::{BaselineGyro, BaselineSpec};
use ascp_core::characterize::{characterize, CharacterizationConfig};
use ascp_sim::telemetry::Telemetry;

fn main() -> std::io::Result<()> {
    println!("table3: characterizing the Murata Gyrostar behavioural model");
    let mut gyro = BaselineGyro::new(BaselineSpec::gyrostar(0x1b));
    let mut cfg = CharacterizationConfig::default();
    // Gyrostar operates −5..+75 °C only.
    cfg.temperatures = vec![-5.0, 25.0, 75.0];
    cfg.bandwidth_tones = vec![5.0, 10.0, 20.0, 35.0, 50.0, 70.0];
    // Its nonlinearity is cubic: use a dense sweep so the residual shows.
    cfg.rate_points = vec![
        -300.0, -225.0, -150.0, -75.0, 0.0, 75.0, 150.0, 225.0, 300.0,
    ];
    let ds = characterize(&mut gyro, &cfg);
    println!("\n{ds}");

    println!("paper vs measured:");
    if let Some(s) = ds.sensitivity_initial {
        compare(
            "sensitivity (typ)",
            paper::T3_SENSITIVITY_TYP,
            s.typ,
            "mV/°/s",
        );
    }
    if let Some(nl) = ds.nonlinearity_pct_fs {
        compare("nonlinearity (max)", 5.0, nl.max, "% FS");
    }
    if let Some(b) = ds.bandwidth_hz {
        compare("3 dB bandwidth (<50)", 50.0, b, "Hz");
    }
    println!(
        "  (temp range: paper −5..+75 °C, measured {:.0}..{:.0} °C)",
        ds.temp_range.0, ds.temp_range.1
    );
    let mut tele = Telemetry::default();
    if let Some(s) = ds.sensitivity_initial {
        tele.gauge_set("sensitivity.mv_per_dps", s.typ);
    }
    if let Some(nl) = ds.nonlinearity_pct_fs {
        tele.gauge_set("nonlinearity.pct_fs", nl.max);
    }
    if let Some(b) = ds.bandwidth_hz {
        tele.gauge_set("bandwidth.hz", b);
    }
    write_metrics("table3_gyrostar", &tele.snapshot(0.0))?;
    Ok(())
}
