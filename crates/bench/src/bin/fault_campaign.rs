//! Fault-injection campaign: sweeps every fault class in the catalog
//! through the full platform and records, per class, whether the safety
//! supervisor detected it, the detection latency, the recovery time after
//! the fault clears, and the residual rate error once service resumes.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin fault_campaign            # full
//! cargo run --release -p ascp-bench --bin fault_campaign -- --smoke # CI
//! ```
//!
//! Results land in `target/experiments/fault_campaign.csv` and
//! `target/experiments/fault_campaign.metrics.json`. The process exits
//! non-zero if any fault class goes undetected — `--smoke` runs the same
//! sweep but skips the (slow) recovery measurements.

use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::platform::{Platform, PlatformConfig};
use ascp_core::supervisor::SupervisorState;
use ascp_mcu8051::periph::Bus16Device;
use ascp_sim::fault::{AdcChannel, FaultKind};
use ascp_sim::telemetry::{Telemetry, TelemetryConfig};
use std::io::Write as _;

/// One campaign entry: the fault to inject and its timing envelope.
struct Case {
    kind: FaultKind,
    /// Fault active time, seconds (one-shot from `T_INJECT`).
    duration_s: f64,
    /// Wall deadline for the supervisor to leave `Normal`, from injection.
    detect_budget_s: f64,
    /// Wall deadline to return to `Normal` after the fault clears.
    recover_budget_s: f64,
    /// Whether the 8051 monitor must run (UART framing, watchdog).
    needs_cpu: bool,
}

/// Measured outcome for one campaign case.
struct Outcome {
    label: &'static str,
    detected: bool,
    detection_latency_s: f64,
    recovered: bool,
    recovery_time_s: f64,
    residual_rate_dps: f64,
    final_state: &'static str,
}

const T_INJECT: f64 = 0.7;

fn catalog() -> Vec<Case> {
    let case = |kind, duration_s, detect_budget_s, recover_budget_s, needs_cpu| Case {
        kind,
        duration_s,
        detect_budget_s,
        recover_budget_s,
        needs_cpu,
    };
    vec![
        case(FaultKind::MemsDriveLoss, 0.45, 0.8, 3.0, false),
        case(FaultKind::SensorDisconnect, 0.3, 0.2, 2.5, false),
        case(
            FaultKind::AdcStuckBit {
                channel: AdcChannel::Secondary,
                bit: 11,
                value: false,
            },
            0.3,
            0.2,
            2.0,
            false,
        ),
        case(
            FaultKind::AdcStuckCode {
                channel: AdcChannel::Primary,
                code: 0,
            },
            0.3,
            0.2,
            3.5,
            false,
        ),
        case(
            FaultKind::AdcOverload {
                channel: AdcChannel::Primary,
                gain: 4.0,
            },
            0.3,
            0.15,
            2.0,
            false,
        ),
        case(
            FaultKind::ReferenceDroop { frac: 0.4 },
            0.3,
            0.35,
            2.5,
            false,
        ),
        case(FaultKind::PllUnlock, 0.05, 0.15, 8.0, false),
        case(FaultKind::SpiBitErrors { rate: 0.9 }, 0.3, 0.15, 1.0, false),
        case(FaultKind::UartBitErrors { rate: 0.5 }, 0.3, 0.35, 1.0, true),
        case(
            FaultKind::JtagCorruption { rate: 0.1 },
            0.3,
            0.25,
            1.0,
            false,
        ),
        case(FaultKind::CpuHang, 0.06, 0.25, 2.0, true),
    ]
}

/// Steps `p` until `pred` holds or `timeout_s` elapses.
fn run_until(
    p: &mut Platform,
    timeout_s: f64,
    mut pred: impl FnMut(&Platform) -> bool,
) -> Option<f64> {
    let ticks = (timeout_s * p.config().dsp_rate.0) as u64;
    for _ in 0..ticks {
        p.step();
        if pred(p) {
            return Some(p.time());
        }
    }
    None
}

/// Mean |rate output| over `window_s`.
fn mean_rate(p: &mut Platform, window_s: f64) -> f64 {
    let ticks = ((window_s * p.config().dsp_rate.0) as u64).max(1);
    let mut acc = 0.0;
    for _ in 0..ticks {
        p.step();
        acc += p.rate_output_dps();
    }
    acc / ticks as f64
}

fn run_case(case: &Case, smoke: bool) -> Outcome {
    let label = case.kind.label();
    let mut config = PlatformConfig::default();
    config.gyro.noise_density = 0.005;
    config.cpu_enabled = case.needs_cpu;
    config.supervisor.spi_probe_period_ticks = 1;
    config.supervisor.jtag_probe_period_ticks = 10;
    config.faults.one_shot(case.kind, T_INJECT, case.duration_s);
    let mut p = Platform::new(config);
    if case.needs_cpu {
        // Arm the watchdog through its register interface: 20 000 machine
        // cycles ≈ 12 ms at the divided CPU clock.
        p.bus_mut().watchdog.write16(1, 20_000);
        p.bus_mut().watchdog.write16(0, 1);
    }

    p.wait_for_ready(2.0).expect("platform bring-up");
    run_until(&mut p, 0.1, |p| {
        p.supervisor().state() == SupervisorState::Normal
    })
    .expect("supervisor Normal before injection");

    let baseline = mean_rate(&mut p, 0.05);
    assert!(p.time() < T_INJECT, "baseline window overran the injection");

    // Detection: first departure from Normal after the injection point.
    let detect_window = (T_INJECT - p.time()) + case.detect_budget_s;
    let detected_at = run_until(&mut p, detect_window, |p| {
        p.supervisor().state() != SupervisorState::Normal
    });
    let (detected, detection_latency_s) = match detected_at {
        Some(t) => (true, t - T_INJECT),
        None => (false, f64::NAN),
    };

    let t_clear = T_INJECT + case.duration_s;
    let (mut recovered, mut recovery_time_s) = (false, f64::NAN);
    let mut residual_rate_dps = f64::NAN;
    if detected && !smoke {
        // Recovery: first return to Normal after the fault clears.
        let remaining = (t_clear - p.time()).max(0.0) + case.recover_budget_s;
        if let Some(t) = run_until(&mut p, remaining, |p| {
            p.supervisor().state() == SupervisorState::Normal
        }) {
            recovered = true;
            recovery_time_s = (t - t_clear).max(0.0);
            residual_rate_dps = (mean_rate(&mut p, 0.1) - baseline).abs();
        }
    }

    Outcome {
        label,
        detected,
        detection_latency_s,
        recovered,
        recovery_time_s,
        residual_rate_dps,
        final_state: p.supervisor().state().label(),
    }
}

fn main() -> std::io::Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "fault_campaign: sweeping {} fault classes{}",
        catalog().len(),
        if smoke {
            " (smoke: detection only)"
        } else {
            ""
        }
    );

    let mut outcomes = Vec::new();
    for case in catalog() {
        let label = case.kind.label();
        print!("  {label:<20}");
        std::io::stdout().flush()?;
        let o = run_case(&case, smoke);
        if o.detected {
            print!("detected in {:>6.1} ms", o.detection_latency_s * 1e3);
        } else {
            print!("NOT DETECTED          ");
        }
        if o.recovered {
            print!(
                ", recovered in {:.2} s, residual {:.2} °/s",
                o.recovery_time_s, o.residual_rate_dps
            );
        } else if !smoke && o.detected {
            print!(", no recovery (final state: {})", o.final_state);
        }
        println!();
        outcomes.push(o);
    }

    // CSV record, one row per fault class.
    let csv_path = experiments_dir()?.join("fault_campaign.csv");
    let mut csv = String::from(
        "fault,detected,detection_latency_s,recovered,recovery_time_s,residual_rate_dps,final_state\n",
    );
    for o in &outcomes {
        csv.push_str(&format!(
            "{},{},{:.4},{},{:.3},{:.3},{}\n",
            o.label,
            o.detected,
            o.detection_latency_s,
            o.recovered,
            o.recovery_time_s,
            o.residual_rate_dps,
            o.final_state
        ));
    }
    std::fs::write(&csv_path, csv)?;
    println!("  csv -> {}", csv_path.display());

    // Metrics snapshot mirroring the CSV for machine consumption.
    let mut tel = Telemetry::new(TelemetryConfig::default());
    let mut detected_total = 0u64;
    let mut recovered_total = 0u64;
    for o in &outcomes {
        let name = |suffix: &str| -> &'static str {
            Box::leak(format!("fault.{}.{suffix}", o.label).into_boxed_str())
        };
        tel.counter_set(name("detected"), u64::from(o.detected));
        if o.detected {
            tel.gauge_set(name("detection_latency_s"), o.detection_latency_s);
            detected_total += 1;
        }
        if o.recovered {
            tel.gauge_set(name("recovery_time_s"), o.recovery_time_s);
            tel.gauge_set(name("residual_rate_dps"), o.residual_rate_dps);
            recovered_total += 1;
        }
    }
    tel.counter_set("campaign.classes", outcomes.len() as u64);
    tel.counter_set("campaign.detected", detected_total);
    tel.counter_set("campaign.recovered", recovered_total);
    write_metrics("fault_campaign", &tel.snapshot(0.0))?;

    let undetected: Vec<_> = outcomes
        .iter()
        .filter(|o| !o.detected)
        .map(|o| o.label)
        .collect();
    if !undetected.is_empty() {
        eprintln!("fault_campaign: UNDETECTED fault classes: {undetected:?}");
        std::process::exit(1);
    }
    println!(
        "fault_campaign: all {} classes detected{}",
        outcomes.len(),
        if smoke {
            String::new()
        } else {
            format!(", {recovered_total} recovered")
        }
    );
    Ok(())
}
