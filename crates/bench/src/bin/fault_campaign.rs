//! Fault-injection campaign: sweeps every fault class in the catalog
//! through the full platform and records, per class, whether the safety
//! supervisor detected it, the detection latency, the recovery time after
//! the fault clears, and the residual rate error once service resumes.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin fault_campaign            # full
//! cargo run --release -p ascp-bench --bin fault_campaign -- --smoke # CI
//! cargo run --release -p ascp-bench --bin fault_campaign -- --threads 4
//! ```
//!
//! Each fault class is one [`ScenarioSpec`] on the campaign runner, so the
//! sweep shards across worker threads (`--threads N`, default = available
//! parallelism) with results identical to the serial run. Results land in
//! `target/experiments/`: the long-format CSV, merged metrics JSON, a
//! Chrome trace (`fault_campaign.trace.json`, load in Perfetto), one
//! flight-recorder capture bundle per triggered scenario, and the
//! fault-class × supervisor-transition coverage matrix (`.coverage.md` /
//! `.coverage.csv`). The process exits non-zero if any fault class goes
//! undetected — `--smoke` runs the same sweep but skips the (slow)
//! recovery measurements. `--check-coverage <baseline.csv>` additionally
//! fails the run when a previously-exercised coverage cell goes dark, and
//! `--serve-metrics <addr>` serves live Prometheus metrics while the
//! campaign runs.
//!
//! # Supervision, chaos, and crash recovery
//!
//! The sweep runs under the campaign supervision layer (panic isolation,
//! watchdog, deterministic retry — see `ascp_core::campaign`):
//!
//! - `--chaos` injects seeded worker panics and stalls (the supervision
//!   layer's analogue of the device's `FaultPlan`); `--chaos-seed N`
//!   picks the injection pattern. Healthy scenarios' CSV rows stay
//!   byte-identical to an undisturbed run.
//! - `--deadline S` arms the per-scenario wall-clock watchdog.
//! - `--journal <path>` journals each completed scenario; re-running the
//!   same command after a crash/`SIGKILL` resumes, re-executing only the
//!   unfinished scenarios, with a byte-identical merged report.
//!
//! Exit codes: `0` all scenarios healthy and every fault detected, `1`
//! scenario-level failures (undetected faults, poisoned scenarios,
//! coverage regressions), `2` infrastructure errors (journal I/O).

use ascp_bench::harness::{repo_root_path, run_to_exit, Args, EXIT_SCENARIO_FAILURE};
use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::prelude::*;
use ascp_sim::fault::AdcChannel;
use ascp_sim::telemetry::RecorderConfig;
use std::sync::Arc;

/// Default chaos seed: chosen so the 11-class catalog draws at least one
/// panic and one stall injection.
const CHAOS_SEED: u64 = 0xC4A0;

/// Default chaos stall cap, seconds: long enough to prove the stall
/// happened, short enough for CI smoke.
const CHAOS_STALL_CAP_S: f64 = 2.0;

/// Pre-trigger flight-recorder depth: 2048 DSP ticks ≈ 2 ms of signal
/// history ahead of every supervisor trigger.
const RECORDER_DEPTH: usize = 2048;

/// One campaign entry: the fault to inject and its timing envelope.
struct Case {
    kind: FaultKind,
    /// Fault active time, seconds (one-shot from `T_INJECT`).
    duration_s: f64,
    /// Wall deadline for the supervisor to leave `Normal`, from injection.
    detect_budget_s: f64,
    /// Wall deadline to return to `Normal` after the fault clears.
    recover_budget_s: f64,
    /// Whether the 8051 monitor must run (UART framing, watchdog).
    needs_cpu: bool,
}

const T_INJECT: f64 = 0.7;

fn catalog() -> Vec<Case> {
    let case = |kind, duration_s, detect_budget_s, recover_budget_s, needs_cpu| Case {
        kind,
        duration_s,
        detect_budget_s,
        recover_budget_s,
        needs_cpu,
    };
    vec![
        case(FaultKind::MemsDriveLoss, 0.45, 0.8, 3.0, false),
        case(FaultKind::SensorDisconnect, 0.3, 0.2, 2.5, false),
        case(
            FaultKind::AdcStuckBit {
                channel: AdcChannel::Secondary,
                bit: 11,
                value: false,
            },
            0.3,
            0.2,
            2.0,
            false,
        ),
        case(
            FaultKind::AdcStuckCode {
                channel: AdcChannel::Primary,
                code: 0,
            },
            0.3,
            0.2,
            3.5,
            false,
        ),
        case(
            FaultKind::AdcOverload {
                channel: AdcChannel::Primary,
                gain: 4.0,
            },
            0.3,
            0.15,
            2.0,
            false,
        ),
        case(
            FaultKind::ReferenceDroop { frac: 0.4 },
            0.3,
            0.35,
            2.5,
            false,
        ),
        case(FaultKind::PllUnlock, 0.05, 0.15, 8.0, false),
        case(FaultKind::SpiBitErrors { rate: 0.9 }, 0.3, 0.15, 1.0, false),
        case(FaultKind::UartBitErrors { rate: 0.5 }, 0.3, 0.35, 1.0, true),
        case(
            FaultKind::JtagCorruption { rate: 0.1 },
            0.3,
            0.25,
            1.0,
            false,
        ),
        case(FaultKind::CpuHang, 0.06, 0.25, 2.0, true),
    ]
}

/// Declares one fault class as a campaign scenario.
fn scenario(case: &Case, smoke: bool) -> ScenarioSpec {
    let config = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(case.needs_cpu)
        .spi_probe_period(1)
        .jtag_probe_period(10)
        .fault_one_shot(case.kind, T_INJECT, case.duration_s)
        .recorder(RecorderConfig::fault_triggers(RECORDER_DEPTH))
        .build()
        .expect("valid fault-campaign config");
    let mut spec = ScenarioSpec::new(case.kind.label(), config);
    if case.needs_cpu {
        // Arm the watchdog through its register interface: 20 000 machine
        // cycles ≈ 12 ms at the divided CPU clock.
        spec = spec.with_step(Step::ArmWatchdog {
            timeout_cycles: 20_000,
        });
    }
    spec.with_step(Step::WaitReady { timeout_s: 2.0 })
        .with_step(Step::WaitSupervisorNormal { timeout_s: 0.1 })
        .with_step(Step::FaultResponse {
            t_inject_s: T_INJECT,
            t_clear_s: T_INJECT + case.duration_s,
            detect_budget_s: case.detect_budget_s,
            recover_budget_s: case.recover_budget_s,
            measure_recovery: !smoke,
        })
}

fn main() {
    run_to_exit("fault_campaign", run);
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<i32, Box<dyn std::error::Error>> {
    let args = Args::parse("fault_campaign");
    let smoke = args.smoke;
    let chaos = args.chaos;
    let threads = args.threads;
    let scenarios: Vec<ScenarioSpec> = catalog().iter().map(|c| scenario(c, smoke)).collect();
    println!(
        "fault_campaign: sweeping {} fault classes on {threads} worker thread(s){}",
        scenarios.len(),
        if smoke {
            " (smoke: detection only)"
        } else {
            ""
        }
    );

    let metrics_server = args.metrics_server();
    let mut options = CampaignOptions::builder()
        .threads(threads)
        .tracing(true)
        .progress(true);
    if chaos {
        let seed = args.chaos_seed.unwrap_or(CHAOS_SEED);
        options = options.chaos(ChaosPlan::new(seed).with_stall_cap_s(CHAOS_STALL_CAP_S));
        println!("  chaos: seeded worker panics + stalls (seed {seed:#x}); healthy rows stay byte-identical");
    }
    if let Some(deadline) = args.deadline_s {
        options = options.deadline_s(deadline);
        println!("  watchdog: per-scenario deadline {deadline} s");
    }
    if let Some(server) = &metrics_server {
        options = options.observer(Arc::new(server.clone()));
    }
    let runner = CampaignRunner::with_options(options.build()?);
    let journal_path = args.journal.clone();
    let report = match &journal_path {
        Some(path) => {
            // `resume` starts fresh when the journal does not exist yet,
            // so the same command line works before and after a crash.
            let report = runner.resume(scenarios, path)?;
            if report.resumed > 0 {
                println!(
                    "  journal: resumed {} completed scenario(s) from {path}",
                    report.resumed
                );
            } else {
                println!("  journal: recording to {path}");
            }
            report
        }
        None => runner.run(scenarios),
    };
    if let Some(server) = &metrics_server {
        server.publish(report.to_telemetry().to_prometheus());
    }

    for o in &report.outcomes {
        print!("  {:<20}", o.name);
        if o.failed() {
            let history: Vec<&str> = o.attempt_errors.iter().map(ScenarioError::label).collect();
            println!(
                "POISONED after {} attempt(s): {history:?}",
                o.attempt_errors.len()
            );
            continue;
        }
        if o.retries() > 0 {
            print!(
                "[{} retr{}] ",
                o.retries(),
                if o.retries() == 1 { "y" } else { "ies" }
            );
        }
        if o.metric("detected") == Some(1.0) {
            print!(
                "detected in {:>6.1} ms",
                o.metric("detection_latency_s").unwrap_or(0.0) * 1.0e3
            );
        } else {
            print!("NOT DETECTED          ");
        }
        if o.metric("recovered") == Some(1.0) {
            print!(
                ", recovered in {:.2} s, residual {:.2} °/s",
                o.metric("recovery_time_s").unwrap_or(0.0),
                o.metric("residual_rate_dps").unwrap_or(0.0)
            );
        } else if !smoke && o.metric("detected") == Some(1.0) {
            print!(
                ", no recovery (final state code: {})",
                o.metric("final_state_code").unwrap_or(-1.0)
            );
        }
        println!();
    }

    // Long-format CSV and merged metrics, one artifact per campaign —
    // both bit-identical for any --threads value.
    let csv_path = experiments_dir()?.join("fault_campaign.csv");
    std::fs::write(&csv_path, report.to_csv())?;
    println!("  csv -> {}", csv_path.display());
    write_metrics("fault_campaign", &report.to_telemetry())?;

    // Observability artifacts: Chrome trace, flight-recorder captures, and
    // the fault-class × supervisor-transition coverage matrix.
    if let Some(trace) = &report.trace {
        let trace_path = experiments_dir()?.join("fault_campaign.trace.json");
        std::fs::write(&trace_path, trace.to_chrome_json())?;
        println!(
            "  trace -> {} ({} spans, load in Perfetto / chrome://tracing)",
            trace_path.display(),
            trace.spans.len()
        );
    }
    let mut captures = 0usize;
    for o in &report.outcomes {
        if let Some(capture) = &o.capture {
            let path = experiments_dir()?.join(format!("fault_campaign.capture.{}.json", o.name));
            std::fs::write(&path, capture.to_json())?;
            captures += 1;
        }
    }
    println!("  flight recorder: {captures} capture bundle(s) -> target/experiments/");

    let coverage = report.coverage();
    let md_path = experiments_dir()?.join("fault_campaign.coverage.md");
    let csv_cov_path = experiments_dir()?.join("fault_campaign.coverage.csv");
    std::fs::write(&md_path, coverage.to_markdown())?;
    std::fs::write(&csv_cov_path, coverage.to_csv())?;
    println!(
        "  coverage: {}/{} fault classes exercised -> {}",
        coverage.exercised_classes().len(),
        coverage.classes().len(),
        md_path.display()
    );

    if chaos || report.retries_total() > 0 || report.poisoned() > 0 {
        println!(
            "  supervision: {} retr{}, {} timeout(s), {} panic(s), {} poisoned",
            report.retries_total(),
            if report.retries_total() == 1 {
                "y"
            } else {
                "ies"
            },
            report.timeouts_total(),
            report.panics_total(),
            report.poisoned(),
        );
    }
    println!(
        "  wall clock: {:.2} s on {} thread(s)",
        report.wall_s, report.threads
    );

    let mut scenario_failures = false;

    // CI guard: a previously-exercised coverage cell going dark is a
    // regression even when every fault is still detected.
    if let Some(baseline) = args.check_coverage.as_deref() {
        let path = repo_root_path(baseline);
        let body = std::fs::read_to_string(&path)?;
        let lost = coverage.regressions(&body);
        if lost.is_empty() {
            println!("  coverage check vs {}: ok", path.display());
        } else {
            eprintln!(
                "fault_campaign: coverage REGRESSION vs {} — cells no longer exercised:",
                path.display()
            );
            for (class, edge) in &lost {
                eprintln!("  {class} × {edge}");
            }
            scenario_failures = true;
        }
    }

    let poisoned = report.failed_scenarios();
    if !poisoned.is_empty() {
        eprintln!("fault_campaign: POISONED scenarios (retries exhausted): {poisoned:?}");
        scenario_failures = true;
    }
    let undetected: Vec<&str> = report
        .outcomes
        .iter()
        .filter(|o| !o.failed() && o.metric("detected") != Some(1.0))
        .map(|o| o.name.as_str())
        .collect();
    if !undetected.is_empty() {
        eprintln!("fault_campaign: UNDETECTED fault classes: {undetected:?}");
        scenario_failures = true;
    }
    if scenario_failures {
        return Ok(EXIT_SCENARIO_FAILURE);
    }
    let recovered = report
        .outcomes
        .iter()
        .filter(|o| o.metric("recovered") == Some(1.0))
        .count();
    println!(
        "fault_campaign: all {} classes detected{}",
        report.outcomes.len(),
        if smoke {
            String::new()
        } else {
            format!(", {recovered} recovered")
        }
    );
    Ok(0)
}
