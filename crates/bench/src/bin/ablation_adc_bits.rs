//! Ablation: ADC resolution sweep (8–16 bits).
//!
//! "Programming main components parameters (such as ... number of ADC
//! bits ...) allows a more accurate adaptation of the front end circuitry"
//! (§3). This sweep shows where the platform's quantization knee sits: the
//! rate noise floor and nonlinearity versus converter resolution.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_adc_bits
//! ```

use ascp_bench::write_metrics;
use ascp_core::characterize::{
    measure_noise_density, measure_static_transfer, CharacterizationConfig,
};
use ascp_core::platform::{Platform, PlatformConfig};

fn main() -> std::io::Result<()> {
    println!("ablation: ADC resolution sweep");
    println!(
        "  {:>5} {:>14} {:>14} {:>12}",
        "bits", "noise °/s/√Hz", "nonlin % FS", "sens mV/°/s"
    );
    let mut cfg_meas = CharacterizationConfig::default();
    cfg_meas.rate_points = vec![-300.0, -150.0, 0.0, 150.0, 300.0];
    cfg_meas.samples_per_point = 400;
    cfg_meas.noise_samples = 1 << 14;

    let mut last_snapshot = None;
    for bits in [8u32, 10, 12, 14, 16] {
        let mut cfg = PlatformConfig::default();
        cfg.adc.bits = bits;
        cfg.cpu_enabled = false;
        let mut p = Platform::new(cfg);
        if p.wait_for_ready(2.0).is_none() {
            println!("  {bits:>5} failed to lock");
            continue;
        }
        let t = measure_static_transfer(&mut p, &cfg_meas, 25.0);
        let noise = measure_noise_density(&mut p, &cfg_meas, t.sensitivity);
        println!(
            "  {bits:>5} {noise:>14.4} {:>14.4} {:>12.4}",
            t.nonlinearity_pct_fs,
            t.sensitivity * 1.0e3
        );
        last_snapshot = Some(p.telemetry_snapshot());
    }
    if let Some(snap) = &last_snapshot {
        write_metrics("ablation_adc_bits", snap)?;
    }
    println!("expected shape: flat across 8..16 bits — the ~15 kHz carrier dithers");
    println!("converter quantization through the demodulator, and the mechanical");
    println!("floor dominates. The knob costs nothing on this sensor, which is why");
    println!("the paper can leave 'number of ADC bits' programmable per application.");
    Ok(())
}
