//! Ablation: ADC resolution sweep (8–16 bits).
//!
//! "Programming main components parameters (such as ... number of ADC
//! bits ...) allows a more accurate adaptation of the front end circuitry"
//! (§3). This sweep shows where the platform's quantization knee sits: the
//! rate noise floor and nonlinearity versus converter resolution.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_adc_bits [-- --threads N]
//! ```
//!
//! Each resolution is one scenario on the campaign runner, so the sweep
//! shards across worker threads.

use ascp_bench::harness::Args;
use ascp_bench::write_metrics;
use ascp_core::prelude::*;

fn main() -> std::io::Result<()> {
    let threads = Args::parse("ablation_adc_bits").threads;
    println!("ablation: ADC resolution sweep ({threads} worker thread(s))");
    println!(
        "  {:>5} {:>14} {:>14} {:>12}",
        "bits", "noise °/s/√Hz", "nonlin % FS", "sens mV/°/s"
    );

    let scenarios: Vec<ScenarioSpec> = [8u32, 10, 12, 14, 16]
        .iter()
        .map(|&bits| {
            let config = PlatformConfig::builder()
                .cpu_enabled(false)
                .adc_bits(bits)
                .build()
                .expect("valid sweep config");
            ScenarioSpec::new(format!("bits_{bits}"), config)
                .with_step(Step::WaitReady { timeout_s: 2.0 })
                .with_step(Step::MeasureStaticTransfer {
                    rate_points: vec![-300.0, -150.0, 0.0, 150.0, 300.0],
                    samples_per_point: 400,
                })
                .with_step(Step::MeasureNoiseDensity { samples: 1 << 14 })
        })
        .collect();
    let report = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .build()
            .expect("valid options"),
    )
    .run(scenarios);

    for o in &report.outcomes {
        let bits = o.name.trim_start_matches("bits_");
        if o.metric("locked") != Some(1.0) {
            println!("  {bits:>5} failed to lock");
            continue;
        }
        println!(
            "  {bits:>5} {:>14.4} {:>14.4} {:>12.4}",
            o.metric("noise_density_dps_rthz").unwrap_or(f64::NAN),
            o.metric("nonlinearity_pct_fs").unwrap_or(f64::NAN),
            o.metric("sensitivity_v_per_dps").unwrap_or(f64::NAN) * 1.0e3
        );
    }
    write_metrics("ablation_adc_bits", &report.to_telemetry())?;
    println!("expected shape: flat across 8..16 bits — the ~15 kHz carrier dithers");
    println!("converter quantization through the demodulator, and the mechanical");
    println!("floor dominates. The knob costs nothing on this sensor, which is why");
    println!("the paper can leave 'number of ADC bits' programmable per application.");
    Ok(())
}
