//! Fig. 6 regenerator: "Measured waveforms (AC probe)".
//!
//! Runs the full fixed-point platform — MEMS, AFE nonidealities, 12-bit
//! converters, Q15 DSP, monitoring CPU — from power-on and records the same
//! observables as Fig. 5. The paper's point: the emulated platform locks
//! like the MATLAB model predicted; the differences are quantization and
//! noise.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin fig6_pll_measured
//! ```

use ascp_bench::{experiments_dir, write_metrics};
use ascp_core::platform::{Platform, PlatformConfig};

fn main() -> std::io::Result<()> {
    let cfg = PlatformConfig::builder().build().expect("valid config");
    let mut platform = Platform::new(cfg);

    println!("fig6: full mixed-signal platform, measured lock transient");
    let traces = platform.run_traces(1.2, 4);
    let dir = experiments_dir()?;
    let path = dir.join("fig6_pll_measured.csv");
    traces.save_csv(&path).expect("write CSV");
    let vcd_path = dir.join("fig6_pll_measured.vcd");
    ascp_sim::vcd::save_vcd(&traces, &vcd_path).expect("write VCD");

    let phase = traces.get("phase_error").expect("trace");
    let amp_err = traces.get("amplitude_error").expect("trace");
    let tail_phase = ascp_sim::stats::rms(phase.values_after(1.0));
    let tail_amp = ascp_sim::stats::rms(amp_err.values_after(1.0));

    println!("  locked              : {}", platform.chain().is_locked());
    println!(
        "  final frequency     : {:.2} Hz",
        platform.chain().frequency()
    );
    println!("  residual phase error: {tail_phase:.5} (RMS after 1 s)");
    println!("  residual amp error  : {tail_amp:.5} (RMS after 1 s)");
    println!(
        "  drive envelope      : {:.3} of ADC full scale (setpoint {:.3})",
        platform.chain().envelope(),
        platform.chain().config().agc.setpoint
    );
    println!("  traces -> {} (+ .vcd for GTKWave)", path.display());
    write_metrics("fig6_pll_measured", &platform.telemetry_snapshot())?;
    println!(
        "shape check vs paper Fig. 6: real(istic) sensor locks like the model, \
         with a noisier floor than fig5: {}",
        platform.chain().is_locked()
    );
    Ok(())
}
