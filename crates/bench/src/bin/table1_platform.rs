//! Table 1 regenerator: "Performance of SensorDynamics implementation".
//!
//! Calibrates the platform (final-test temperature sweep), then runs the
//! full datasheet characterization — sensitivity, null, nonlinearity over
//! −40/25/85 °C, rate noise density, 3 dB bandwidth, turn-on time — and
//! prints the table next to the paper's reported values.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin table1_platform
//! ```

use ascp_bench::{compare, paper, write_metrics};
use ascp_core::calibrate::{calibrate, install, CalibrationConfig};
use ascp_core::characterize::{characterize, CharacterizationConfig};
use ascp_core::platform::{Platform, PlatformConfig};

fn main() -> std::io::Result<()> {
    println!("table1: characterizing the ASCP platform (this work)");
    let cfg = PlatformConfig::builder().build().expect("valid config");
    let mut platform = Platform::new(cfg);

    println!("  power-on + final-test calibration sweep ...");
    platform.wait_for_ready(2.0).expect("platform lock");
    let cal = calibrate(&mut platform, &CalibrationConfig::default());
    install(&mut platform, &cal);

    println!("  running characterization (rate sweeps x temperature, PSD, tones) ...");
    let cfg = CharacterizationConfig::default();
    let ds = characterize(&mut platform, &cfg);
    println!("\n{ds}");

    println!("paper vs measured:");
    if let Some(s) = ds.sensitivity_initial {
        compare(
            "sensitivity (typ)",
            paper::T1_SENSITIVITY_TYP,
            s.typ.abs(),
            "mV/°/s",
        );
    }
    if let Some(n) = ds.null_initial {
        compare("null (typ)", paper::T1_NULL_TYP, n.typ, "V");
    }
    if let Some(n) = ds.noise_density {
        compare("noise density (typ)", paper::T1_NOISE_TYP, n.typ, "°/s/√Hz");
    }
    if let Some(b) = ds.bandwidth_hz {
        compare("3 dB bandwidth", paper::T1_BANDWIDTH.1, b, "Hz");
    }
    if let Some(t) = ds.turn_on_time_ms {
        compare("turn-on time", paper::T1_TURN_ON_MS, t, "ms");
    }
    if let Some(nl) = ds.nonlinearity_pct_fs {
        compare("nonlinearity (max)", paper::T1_NONLIN_MAX, nl.max, "% FS");
    }
    write_metrics("table1_platform", &platform.telemetry_snapshot())?;
    Ok(())
}
