//! Ablation: AGC on vs off — scale-factor stability over temperature.
//!
//! The Coriolis signal is proportional to drive velocity, so without
//! amplitude regulation the scale factor inherits the resonator's Q(T)
//! drift. This ablation disables the AGC (fixed drive at the nominal
//! command) and compares sensitivity drift over temperature against the
//! regulated platform.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_agc [-- --threads N]
//! ```
//!
//! The two arms are campaign scenarios, so they run concurrently when a
//! second worker thread is available.

use ascp_bench::harness::Args;
use ascp_bench::write_metrics;
use ascp_core::prelude::*;
use ascp_sim::stats;

const TEMPS: [f64; 3] = [-40.0, 25.0, 85.0];

/// Sensitivity-over-temperature protocol shared by both arms.
fn temp_sweep_steps() -> Vec<Step> {
    TEMPS
        .iter()
        .flat_map(|&t| {
            [
                Step::SetTemperature { celsius: t },
                Step::Run { seconds: 0.6 },
                Step::MeasureSensitivity {
                    label: format!("sens_{t}"),
                    rate_dps: 200.0,
                    settle_s: 0.4,
                    samples: 200,
                },
            ]
        })
        .collect()
}

fn spread(vals: &[f64]) -> f64 {
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    (max - min) / stats::mean(vals).abs() * 100.0
}

fn main() -> std::io::Result<()> {
    let threads = Args::parse("ablation_agc").threads;
    println!(
        "ablation: AGC on vs off (scale factor across -40/25/85 degC, {threads} worker thread(s))"
    );
    // Exaggerate the Q temperature coefficient so the effect is clearly
    // visible above measurement noise in a short run.
    let config = || {
        PlatformConfig::builder()
            .cpu_enabled(false)
            .noise_density(0.01)
            .tc_q(-3.0e-3)
            .build()
            .expect("valid ablation config")
    };
    let scenarios = vec![
        // Shipped platform: the AGC regulates the drive over temperature.
        ScenarioSpec::new("agc_on", config())
            .with_step(Step::WaitReady { timeout_s: 2.0 })
            .with_steps(temp_sweep_steps()),
        // AGC effectively disabled: clamp the drive to the settled value.
        ScenarioSpec::new("agc_off", config())
            .with_step(Step::WaitReady { timeout_s: 2.0 })
            .with_step(Step::FreezeAgcDrive { resettle_s: 1.5 })
            .with_steps(temp_sweep_steps()),
    ];
    let report = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .build()
            .expect("valid options"),
    )
    .run(scenarios);

    let arm = |name: &str| -> Vec<f64> {
        TEMPS
            .iter()
            .filter_map(|t| report.metric(name, &format!("sens_{t}")))
            .collect()
    };
    let on = arm("agc_on");
    let off = arm("agc_off");

    println!("  {:>8} {:>14} {:>14}", "temp", "AGC on", "AGC off");
    for (i, &t) in TEMPS.iter().enumerate() {
        println!("  {t:>8.1} {:>14.4} {:>14.4}", on[i], off[i]);
    }
    println!(
        "  scale-factor spread: AGC on {:.2} %, AGC off {:.2} %",
        spread(&on),
        spread(&off)
    );
    write_metrics("ablation_agc", &report.to_telemetry())?;
    println!("expected shape: the regulated loop holds the scale factor; the fixed");
    println!("drive inherits Q(T), exactly why the platform includes an AGC IP.");
    Ok(())
}
