//! Ablation: AGC on vs off — scale-factor stability over temperature.
//!
//! The Coriolis signal is proportional to drive velocity, so without
//! amplitude regulation the scale factor inherits the resonator's Q(T)
//! drift. This ablation disables the AGC (fixed drive at the nominal
//! command) and compares sensitivity drift over temperature against the
//! regulated platform.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_agc
//! ```

use ascp_bench::write_metrics;
use ascp_core::platform::{Platform, PlatformConfig};
use ascp_sim::stats;
use ascp_sim::units::{Celsius, DegPerSec};

/// Measures sensitivity (output °/s per applied °/s) at one temperature.
fn sensitivity(p: &mut Platform, t: f64) -> f64 {
    p.set_temperature(Celsius(t));
    p.run(0.6);
    p.set_rate(DegPerSec(200.0));
    let plus = stats::mean(&p.sample_rate_output(0.4, 200));
    p.set_rate(DegPerSec(-200.0));
    let minus = stats::mean(&p.sample_rate_output(0.4, 200));
    p.set_rate(DegPerSec(0.0));
    (plus - minus) / 400.0
}

fn spread(vals: &[f64]) -> f64 {
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    (max - min) / stats::mean(vals).abs() * 100.0
}

fn main() -> std::io::Result<()> {
    println!("ablation: AGC on vs off (scale factor across -40/25/85 degC)");
    let temps = [-40.0, 25.0, 85.0];
    // Exaggerate the Q temperature coefficient so the effect is clearly
    // visible above measurement noise in a short run.
    let tc_q = -3.0e-3;

    // --- AGC regulated (shipped platform) ---
    let mut cfg = PlatformConfig::default();
    cfg.cpu_enabled = false;
    cfg.gyro.noise_density = 0.01;
    cfg.gyro.tc_q = tc_q;
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    let on: Vec<f64> = temps.iter().map(|&t| sensitivity(&mut p, t)).collect();
    write_metrics("ablation_agc", &p.telemetry_snapshot())?;

    // --- AGC effectively disabled: clamp the drive to the 25 degC value ---
    let mut cfg = PlatformConfig::default();
    cfg.cpu_enabled = false;
    cfg.gyro.noise_density = 0.01;
    cfg.gyro.tc_q = tc_q;
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    // Freeze the AGC by pinning its drive ceiling to the settled value.
    let settled_drive = p.chain().drive();
    {
        let chain_cfg = p.chain().config().clone();
        let mut frozen = chain_cfg;
        frozen.agc.max_drive = settled_drive;
        frozen.agc.kp = 0.0;
        frozen.agc.ki = 1.0e6; // integrator pegs at max_drive = fixed drive
        *p.chain_mut() = ascp_core::chain::ConditioningChain::new(frozen);
        p.run(1.5); // re-lock with the frozen drive
    }
    let off: Vec<f64> = temps.iter().map(|&t| sensitivity(&mut p, t)).collect();

    println!("  {:>8} {:>14} {:>14}", "temp", "AGC on", "AGC off");
    for (i, &t) in temps.iter().enumerate() {
        println!("  {t:>8.1} {:>14.4} {:>14.4}", on[i], off[i]);
    }
    println!(
        "  scale-factor spread: AGC on {:.2} %, AGC off {:.2} %",
        spread(&on),
        spread(&off)
    );
    println!("expected shape: the regulated loop holds the scale factor; the fixed");
    println!("drive inherits Q(T), exactly why the platform includes an AGC IP.");
    Ok(())
}
