//! Table 2 regenerator: "Performance of AD XRS300".
//!
//! Characterizes the behavioural ADXRS300 model through the same harness
//! as Table 1 — the comparison the paper makes with datasheet values.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin table2_adxrs300
//! ```

use ascp_bench::{compare, paper, write_metrics};
use ascp_core::baseline::{BaselineGyro, BaselineSpec};
use ascp_core::characterize::{characterize, CharacterizationConfig};
use ascp_sim::telemetry::Telemetry;

fn main() -> std::io::Result<()> {
    println!("table2: characterizing the ADXRS300 behavioural model");
    let mut gyro = BaselineGyro::new(BaselineSpec::adxrs300(0x1a));
    let mut cfg = CharacterizationConfig::default();
    // ADXRS300 has a 40 Hz output pole; sweep tones around it.
    cfg.bandwidth_tones = vec![5.0, 10.0, 20.0, 30.0, 40.0, 60.0, 90.0];
    let ds = characterize(&mut gyro, &cfg);
    println!("\n{ds}");

    println!("paper vs measured:");
    if let Some(s) = ds.sensitivity_initial {
        compare(
            "sensitivity (typ)",
            paper::T2_SENSITIVITY_TYP,
            s.typ,
            "mV/°/s",
        );
    }
    if let Some(n) = ds.noise_density {
        compare("noise density (typ)", paper::T2_NOISE_TYP, n.typ, "°/s/√Hz");
    }
    if let Some(t) = ds.turn_on_time_ms {
        compare("turn-on time", paper::T2_TURN_ON_MS, t, "ms");
    }
    if let Some(b) = ds.bandwidth_hz {
        compare("3 dB bandwidth", 40.0, b, "Hz");
    }
    // The behavioural baseline has no platform collector; record the
    // datasheet figures the run produced.
    let mut tele = Telemetry::default();
    if let Some(s) = ds.sensitivity_initial {
        tele.gauge_set("sensitivity.mv_per_dps", s.typ);
    }
    if let Some(n) = ds.noise_density {
        tele.gauge_set("noise_density.dps_rthz", n.typ);
    }
    if let Some(b) = ds.bandwidth_hz {
        tele.gauge_set("bandwidth.hz", b);
    }
    if let Some(t) = ds.turn_on_time_ms {
        tele.gauge_set("turn_on.ms", t);
    }
    write_metrics("table2_adxrs300", &tele.snapshot(0.0))?;
    Ok(())
}
