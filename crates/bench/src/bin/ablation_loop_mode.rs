//! Ablation: open-loop vs closed-loop (force-rebalance) sense path.
//!
//! The paper motivates the control electrodes with "a closed loop
//! configuration ... in order to let the sensor work around its rest point,
//! thus achieving more linear and accurate measures" (§4.1). The mechanism:
//! the capacitive pickoff is only linear near rest, so reading large
//! open-loop deflections inherits the electrode nonlinearity, while force
//! rebalance holds the deflection at zero and measures the force instead.
//!
//! This ablation sweeps the sense-electrode cubic coefficient (a device /
//! process quality knob) and measures transfer nonlinearity in both modes:
//! open loop degrades with the electrode, closed loop does not.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_loop_mode [-- --threads N]
//! ```
//!
//! The six (mode × electrode) cells are campaign scenarios, sharded
//! across worker threads.

use ascp_bench::harness::Args;
use ascp_bench::write_metrics;
use ascp_core::prelude::*;

const PICKOFF_NLS: [f64; 3] = [3.0e3, 3.0e4, 1.0e5];

fn scenario(mode: SenseMode, pickoff_nl: f64) -> ScenarioSpec {
    let config = PlatformConfig::builder()
        .loop_mode(mode)
        .cpu_enabled(false)
        .noise_density(0.005)
        .sense_pickoff_nl(pickoff_nl)
        .build()
        .expect("valid ablation config");
    let tag = if mode == SenseMode::ClosedLoop {
        "closed"
    } else {
        "open"
    };
    let mut spec = ScenarioSpec::new(format!("{tag}_{pickoff_nl:.0}"), config)
        .with_step(Step::WaitReady { timeout_s: 2.0 })
        .with_step(Step::Run { seconds: 0.5 });
    if mode == SenseMode::ClosedLoop {
        // Final-test axis trim (the paper's on-line parameter trimming).
        spec = spec.with_step(Step::TrimRebalancePhase {
            probe_rate_dps: 200.0,
            iterations: 2,
        });
    }
    spec.with_step(Step::MeasureLinearity {
        label: "nonlin_pct".into(),
        rates: vec![-300.0, -200.0, -100.0, 0.0, 100.0, 200.0, 300.0],
        dwell_s: 0.5,
        settle_s: 0.2,
        samples: 1000,
    })
}

fn main() -> std::io::Result<()> {
    let threads = Args::parse("ablation_loop_mode").threads;
    println!(
        "ablation: open loop vs force rebalance across electrode quality ({threads} worker thread(s))"
    );
    println!(
        "  {:>22} {:>14} {:>14}",
        "pickoff cubic coeff", "open loop", "closed loop"
    );
    let scenarios: Vec<ScenarioSpec> = PICKOFF_NLS
        .iter()
        .flat_map(|&nl| {
            [
                scenario(SenseMode::OpenLoop, nl),
                scenario(SenseMode::ClosedLoop, nl),
            ]
        })
        .collect();
    let report = CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .build()
            .expect("valid options"),
    )
    .run(scenarios);

    for nl in PICKOFF_NLS {
        let open = report
            .metric(&format!("open_{nl:.0}"), "nonlin_pct")
            .unwrap_or(f64::NAN);
        let closed = report
            .metric(&format!("closed_{nl:.0}"), "nonlin_pct")
            .unwrap_or(f64::NAN);
        println!("  {nl:>22.0} {open:>13.3}% {closed:>13.3}%");
    }
    write_metrics("ablation_loop_mode", &report.to_telemetry())?;
    println!("expected shape: open-loop nonlinearity grows with the electrode cubic;");
    println!("force rebalance keeps the deflection at zero and stays flat — the");
    println!("paper's 'more linear and accurate measures' (§4.1).");
    Ok(())
}
