//! Ablation: open-loop vs closed-loop (force-rebalance) sense path.
//!
//! The paper motivates the control electrodes with "a closed loop
//! configuration ... in order to let the sensor work around its rest point,
//! thus achieving more linear and accurate measures" (§4.1). The mechanism:
//! the capacitive pickoff is only linear near rest, so reading large
//! open-loop deflections inherits the electrode nonlinearity, while force
//! rebalance holds the deflection at zero and measures the force instead.
//!
//! This ablation sweeps the sense-electrode cubic coefficient (a device /
//! process quality knob) and measures transfer nonlinearity in both modes:
//! open loop degrades with the electrode, closed loop does not.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin ablation_loop_mode
//! ```

use ascp_bench::write_metrics;
use ascp_core::calibrate::trim_rebalance_phase;
use ascp_core::chain::SenseMode;
use ascp_core::platform::{Platform, PlatformConfig};
use ascp_sim::stats;
use ascp_sim::telemetry::TelemetrySnapshot;
use ascp_sim::units::DegPerSec;

fn nonlinearity(mode: SenseMode, pickoff_nl: f64) -> (f64, TelemetrySnapshot) {
    let mut cfg = PlatformConfig::default();
    cfg.mode = mode;
    cfg.cpu_enabled = false;
    cfg.gyro.noise_density = 0.005;
    cfg.gyro.sense_pickoff_nl = pickoff_nl;
    let mut p = Platform::new(cfg);
    p.wait_for_ready(2.0).expect("lock");
    p.run(0.5);
    if mode == SenseMode::ClosedLoop {
        // Final-test axis trim (the paper's on-line parameter trimming).
        trim_rebalance_phase(&mut p, 200.0, 2);
    }
    let rates = [-300.0, -200.0, -100.0, 0.0, 100.0, 200.0, 300.0];
    let mut outs = Vec::new();
    for &r in &rates {
        p.set_rate(DegPerSec(r));
        p.run(0.5);
        outs.push(stats::mean(&p.sample_rate_output(0.2, 1000)));
    }
    let fit = stats::linear_fit(&rates, &outs);
    let pct = fit.max_residual / (fit.slope.abs() * 300.0) * 100.0;
    (pct, p.telemetry_snapshot())
}

fn main() -> std::io::Result<()> {
    println!("ablation: open loop vs force rebalance across electrode quality");
    println!(
        "  {:>22} {:>14} {:>14}",
        "pickoff cubic coeff", "open loop", "closed loop"
    );
    let mut last_snapshot = None;
    for nl in [3.0e3, 3.0e4, 1.0e5] {
        let (open, _) = nonlinearity(SenseMode::OpenLoop, nl);
        let (closed, snap) = nonlinearity(SenseMode::ClosedLoop, nl);
        println!("  {nl:>22.0} {open:>13.3}% {closed:>13.3}%");
        last_snapshot = Some(snap);
    }
    if let Some(snap) = &last_snapshot {
        write_metrics("ablation_loop_mode", snap)?;
    }
    println!("expected shape: open-loop nonlinearity grows with the electrode cubic;");
    println!("force rebalance keeps the deflection at zero and stays flat — the");
    println!("paper's 'more linear and accurate measures' (§4.1).");
    Ok(())
}
