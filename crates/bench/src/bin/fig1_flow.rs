//! Fig. 1 regenerator: the design flow's cross-level verification.
//!
//! The flow's value is that each level behaves like the one above it. This
//! binary runs the float system model (MATLAB stage) and the fixed-point
//! platform (RTL/prototype stage) through the same lock + rate-step
//! scenario and reports the agreement — the "verification" arrows of
//! Fig. 1 made executable.
//!
//! ```sh
//! cargo run --release -p ascp-bench --bin fig1_flow
//! ```

use ascp_bench::write_metrics;
use ascp_core::platform::PlatformConfig;
use ascp_core::system::SystemModelConfig;
use ascp_core::verify::{cross_verify, VerifyScenario};
use ascp_sim::telemetry::Telemetry;

fn main() -> std::io::Result<()> {
    println!("fig1: cross-level verification (system model vs full platform)");
    let mut sys_cfg = SystemModelConfig::default();
    // Same moderate noise on both levels.
    sys_cfg.gyro.noise_density = 0.02;
    let plat_cfg = PlatformConfig::builder()
        .noise_density(0.02)
        .build()
        .expect("valid");

    let scenario = VerifyScenario::default();
    let report = cross_verify(sys_cfg, plat_cfg, &scenario);

    println!("  system model locked : {}", report.system_locked);
    println!("  platform locked     : {}", report.platform_locked);
    println!(
        "  lock frequency delta: {:+.2} Hz",
        report.frequency_error_hz
    );
    println!("  rate-step agreement (applied / model / platform, °/s):");
    for (a, s, p) in &report.rate_readings {
        println!("    {a:>8.1}  {s:>8.2}  {p:>8.2}");
    }
    println!(
        "  disagreement        : RMS {:.2} °/s, max {:.2} °/s",
        report.rms_disagreement, report.max_disagreement
    );
    let pass = report.passes(10.0, 20.0);
    println!("  VERIFICATION {}", if pass { "PASSED" } else { "FAILED" });

    let mut tele = Telemetry::default();
    tele.gauge_set("verify.frequency_error_hz", report.frequency_error_hz);
    tele.gauge_set("verify.rms_disagreement_dps", report.rms_disagreement);
    tele.gauge_set("verify.max_disagreement_dps", report.max_disagreement);
    tele.counter_set("verify.rate_points", report.rate_readings.len() as u64);
    tele.counter_set("verify.passed", u64::from(pass));
    write_metrics("fig1_flow", &tele.snapshot(0.0))?;
    Ok(())
}
