//! # ascp-bench — experiment regenerators and benchmarks
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index), plus wall-clock benchmarks of the simulation
//! machinery (`benches/`, on the vendored [`harness`]). Shared helpers
//! live here: the experiment output directory and the paper-reported
//! reference values each regenerator prints next to its measurement.

use ascp_sim::telemetry::TelemetrySnapshot;
use std::io;
use std::path::PathBuf;

pub mod harness;

/// Directory experiment CSVs and `.metrics.json` snapshots are written to.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created.
pub fn experiments_dir() -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a telemetry snapshot to `target/experiments/<name>.metrics.json`
/// and reports the path on stdout, so every regenerator run leaves a
/// machine-readable record next to its CSVs.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or file cannot be
/// written.
pub fn write_metrics(name: &str, snapshot: &TelemetrySnapshot) -> io::Result<PathBuf> {
    let path = experiments_dir()?.join(format!("{name}.metrics.json"));
    std::fs::write(&path, snapshot.to_json())?;
    println!("  metrics -> {}", path.display());
    Ok(path)
}

/// Paper-reported values used for side-by-side "paper vs measured" rows.
pub mod paper {
    /// Table 1 (SensorDynamics): typ sensitivity, mV/°/s.
    pub const T1_SENSITIVITY_TYP: f64 = 5.00;
    /// Table 1: typ null, V.
    pub const T1_NULL_TYP: f64 = 2.50;
    /// Table 1: typ rate noise density, °/s/√Hz.
    pub const T1_NOISE_TYP: f64 = 0.09;
    /// Table 1: min/typ 3 dB bandwidth, Hz.
    pub const T1_BANDWIDTH: (f64, f64) = (25.0, 75.0);
    /// Table 1: typ turn-on time, ms.
    pub const T1_TURN_ON_MS: f64 = 500.0;
    /// Table 1: max nonlinearity, % FS.
    pub const T1_NONLIN_MAX: f64 = 0.20;
    /// Table 2 (ADXRS300): typ sensitivity.
    pub const T2_SENSITIVITY_TYP: f64 = 5.00;
    /// Table 2: typ noise density.
    pub const T2_NOISE_TYP: f64 = 0.1;
    /// Table 2: turn-on, ms.
    pub const T2_TURN_ON_MS: f64 = 35.0;
    /// Table 3 (Gyrostar): typ sensitivity.
    pub const T3_SENSITIVITY_TYP: f64 = 0.67;
    /// Digital complexity, kgates.
    pub const DIGITAL_KGATES: f64 = 200.0;
    /// Digital clock, MHz.
    pub const DIGITAL_CLOCK_MHZ: f64 = 20.0;
}

/// Measured/paper ratios outside this band are flagged by [`compare`].
pub const COMPARE_BAND: (f64, f64) = (0.5, 2.0);

/// Prints a `paper vs measured` comparison row.
///
/// Returns `true` when the measured/paper ratio lies inside
/// [`COMPARE_BAND`]; out-of-band rows (and non-finite ratios) are marked
/// `** OUT OF BAND **` so a regenerator run cannot silently drift away
/// from the reference values.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) -> bool {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    let in_band = ratio.is_finite() && ratio >= COMPARE_BAND.0 && ratio <= COMPARE_BAND.1;
    let flag = if in_band { "" } else { "  ** OUT OF BAND **" };
    println!(
        "  {label:<28} paper {paper:>10.3} {unit:<8} measured {measured:>10.3} {unit:<8} (x{ratio:.2}){flag}"
    );
    in_band
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_flags_out_of_band() {
        assert!(compare("in band", 1.0, 1.4, "u"));
        assert!(compare("low edge", 1.0, 0.5, "u"));
        assert!(!compare("too low", 1.0, 0.4, "u"));
        assert!(!compare("too high", 1.0, 2.5, "u"));
        assert!(!compare("zero paper", 0.0, 1.0, "u"));
    }

    #[test]
    fn experiments_dir_is_creatable() {
        let dir = experiments_dir().expect("create experiments dir");
        assert!(dir.ends_with("target/experiments") || dir.ends_with("experiments"));
    }

    #[test]
    fn write_metrics_round_trips_json() {
        use ascp_sim::telemetry::Telemetry;
        let mut t = Telemetry::default();
        t.counter_set("sim.ticks", 99);
        let path =
            write_metrics("write_metrics_test", &t.snapshot(0.1)).expect("write metrics file");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"sim.ticks\": 99"), "{body}");
        std::fs::remove_file(path).ok();
    }
}
