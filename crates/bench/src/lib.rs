//! # ascp-bench — experiment regenerators and benchmarks
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index), plus Criterion benchmarks of the simulation
//! machinery. Shared helpers live here: the experiment output directory
//! and the paper-reported reference values each regenerator prints next to
//! its measurement.

use std::path::PathBuf;

/// Directory experiment CSVs are written to.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Paper-reported values used for side-by-side "paper vs measured" rows.
pub mod paper {
    /// Table 1 (SensorDynamics): typ sensitivity, mV/°/s.
    pub const T1_SENSITIVITY_TYP: f64 = 5.00;
    /// Table 1: typ null, V.
    pub const T1_NULL_TYP: f64 = 2.50;
    /// Table 1: typ rate noise density, °/s/√Hz.
    pub const T1_NOISE_TYP: f64 = 0.09;
    /// Table 1: min/typ 3 dB bandwidth, Hz.
    pub const T1_BANDWIDTH: (f64, f64) = (25.0, 75.0);
    /// Table 1: typ turn-on time, ms.
    pub const T1_TURN_ON_MS: f64 = 500.0;
    /// Table 1: max nonlinearity, % FS.
    pub const T1_NONLIN_MAX: f64 = 0.20;
    /// Table 2 (ADXRS300): typ sensitivity.
    pub const T2_SENSITIVITY_TYP: f64 = 5.00;
    /// Table 2: typ noise density.
    pub const T2_NOISE_TYP: f64 = 0.1;
    /// Table 2: turn-on, ms.
    pub const T2_TURN_ON_MS: f64 = 35.0;
    /// Table 3 (Gyrostar): typ sensitivity.
    pub const T3_SENSITIVITY_TYP: f64 = 0.67;
    /// Digital complexity, kgates.
    pub const DIGITAL_KGATES: f64 = 200.0;
    /// Digital clock, MHz.
    pub const DIGITAL_CLOCK_MHZ: f64 = 20.0;
}

/// Prints a `paper vs measured` comparison row.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 { measured / paper } else { f64::NAN };
    println!("  {label:<28} paper {paper:>10.3} {unit:<8} measured {measured:>10.3} {unit:<8} (x{ratio:.2})");
}
