//! Generic sensor models for platform-genericity demonstrations.
//!
//! The paper's platform is *generic*: the same AFE/DSP/CPU architecture,
//! customized from an IP portfolio, conditions "capacitive, resistive,
//! inductive, etc." automotive sensors (§1, §3). These behavioural models
//! let the examples show the platform conditioning something other than the
//! gyro: a capacitive pressure bridge, a resistive (Wheatstone) temperature
//! bridge and an inductive position half-bridge.
//!
//! All models share the [`AnalogSensor`] trait: given a physical stimulus
//! and an excitation voltage, produce a differential output voltage with
//! noise and temperature effects.

use crate::frontend::{Conditioning, Excitation, PlausibilityBands, SensorFrontEnd};
use ascp_sim::noise::WhiteNoise;
use ascp_sim::snapshot::{fnv1a64, SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, Volts};

/// A sensor producing a differential voltage from excitation.
///
/// Object-safe so a platform channel can hold `Box<dyn AnalogSensor>`.
pub trait AnalogSensor {
    /// Updates the physical stimulus (unit depends on the sensor:
    /// kPa, °C, mm, ...).
    fn set_stimulus(&mut self, value: f64);

    /// Current stimulus.
    fn stimulus(&self) -> f64;

    /// Sets the ambient temperature affecting the transducer.
    fn set_temperature(&mut self, t: Celsius);

    /// Produces one output sample given the excitation voltage.
    fn sample(&mut self, excitation: Volts) -> Volts;

    /// Full-scale stimulus range `(min, max)`.
    fn range(&self) -> (f64, f64);

    /// Human-readable sensor kind (for platform reports).
    fn kind(&self) -> &'static str;
}

/// Capacitive pressure sensor in a half-bridge with a fixed reference
/// capacitor: output ratio `(C_s − C_r) / (C_s + C_r)` times excitation.
///
/// `C_s = C0 (1 + k·p/p_fs)` with a small temperature coefficient.
#[derive(Debug, Clone)]
pub struct CapacitivePressureSensor {
    pressure_kpa: f64,
    full_scale_kpa: f64,
    sensitivity: f64,
    temp_coeff: f64,
    temperature: Celsius,
    noise: WhiteNoise,
}

impl CapacitivePressureSensor {
    /// Creates a sensor with full scale `full_scale_kpa` (e.g. 400 kPa for
    /// manifold pressure) and capacitance ratio sensitivity `sensitivity`
    /// at full scale (typ. 0.2).
    ///
    /// # Panics
    ///
    /// Panics if `full_scale_kpa` or `sensitivity` is not positive.
    #[must_use]
    pub fn new(full_scale_kpa: f64, sensitivity: f64, seed: u64) -> Self {
        assert!(full_scale_kpa > 0.0, "full scale must be positive");
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        Self {
            pressure_kpa: 0.0,
            full_scale_kpa,
            sensitivity,
            temp_coeff: 2.0e-4,
            temperature: Celsius(25.0),
            noise: WhiteNoise::new(40.0e-6, seed),
        }
    }
}

impl AnalogSensor for CapacitivePressureSensor {
    fn set_stimulus(&mut self, value: f64) {
        self.pressure_kpa = value.clamp(0.0, self.full_scale_kpa);
    }

    fn stimulus(&self) -> f64 {
        self.pressure_kpa
    }

    fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    fn sample(&mut self, excitation: Volts) -> Volts {
        let dcap = self.sensitivity * self.pressure_kpa / self.full_scale_kpa;
        // Half-bridge ratio for C_s = C0(1+d): d/(2+d).
        let ratio = dcap / (2.0 + dcap);
        let drift = self.temp_coeff * (self.temperature.0 - 25.0);
        Volts(excitation.0 * (ratio + drift) + self.noise.sample())
    }

    fn range(&self) -> (f64, f64) {
        (0.0, self.full_scale_kpa)
    }

    fn kind(&self) -> &'static str {
        "capacitive-pressure"
    }
}

/// Promotion onto the platform's generic front-end contract: DC
/// excitation from the shared bandgap, an exact half-bridge inversion
/// table, and wire-fault bands tuned to the bridge's small output span
/// (the short check is disabled — a dead bridge and 0 kPa both read 0 V).
impl SensorFrontEnd for CapacitivePressureSensor {
    fn kind(&self) -> &'static str {
        AnalogSensor::kind(self)
    }

    fn unit(&self) -> &'static str {
        "kPa"
    }

    fn range(&self) -> (f64, f64) {
        AnalogSensor::range(self)
    }

    fn excitation(&self) -> Excitation {
        Excitation::Dc { volts: 2.5 }
    }

    fn conditioning(&self) -> Conditioning {
        // Invert the half-bridge ratio d/(2+d), d = sens·p/FS, exactly at
        // nine breakpoints; between them the table interpolates linearly.
        let points = (0..=8)
            .map(|i| {
                let p = self.full_scale_kpa * f64::from(i) / 8.0;
                let d = self.sensitivity * p / self.full_scale_kpa;
                (d / (2.0 + d), p)
            })
            .collect();
        Conditioning::Table { points }
    }

    fn plausibility(&self) -> PlausibilityBands {
        PlausibilityBands::Ratiometric {
            short_below: -1.0,
            reverse: Some((0.15, 0.25)),
            open_above: 0.96,
        }
    }

    fn set_stimulus(&mut self, value: f64) {
        AnalogSensor::set_stimulus(self, value);
    }

    fn stimulus(&self) -> f64 {
        AnalogSensor::stimulus(self)
    }

    fn set_temperature(&mut self, t: Celsius) {
        AnalogSensor::set_temperature(self, t);
    }

    fn sense(&mut self, excitation: Volts, _dt: f64) -> Volts {
        self.sample(excitation)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.pressure_kpa);
        w.put_f64(self.temperature.0);
        self.noise.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.pressure_kpa = r.take_f64()?;
        self.temperature = Celsius(r.take_f64()?);
        self.noise.load_state(r)
    }

    fn config_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u8_slice(b"capacitive-pressure/v1");
        w.put_f64(self.full_scale_kpa);
        w.put_f64(self.sensitivity);
        w.put_f64(self.temp_coeff);
        fnv1a64(w.bytes())
    }
}

/// Platinum-RTD style resistive bridge (Wheatstone, one active arm):
/// output ≈ excitation · α·ΔT / (4 + 2·α·ΔT).
#[derive(Debug, Clone)]
pub struct ResistiveTempBridge {
    measured: Celsius,
    alpha: f64,
    noise: WhiteNoise,
    /// Self-heating offset (K) proportional to excitation².
    self_heating: f64,
}

impl ResistiveTempBridge {
    /// Creates a bridge with temperature coefficient `alpha` (1/K,
    /// 0.00385 for Pt).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    #[must_use]
    pub fn new(alpha: f64, seed: u64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        Self {
            measured: Celsius(25.0),
            alpha,
            noise: WhiteNoise::new(5.0e-6, seed),
            self_heating: 0.05,
        }
    }
}

impl AnalogSensor for ResistiveTempBridge {
    fn set_stimulus(&mut self, value: f64) {
        self.measured = Celsius(value);
    }

    fn stimulus(&self) -> f64 {
        self.measured.0
    }

    fn set_temperature(&mut self, t: Celsius) {
        // The bridge *is* the thermometer; ambient equals stimulus here.
        self.measured = t;
    }

    fn sample(&mut self, excitation: Volts) -> Volts {
        let dt = self.measured.0 - 0.0 + self.self_heating * excitation.0 * excitation.0;
        let x = self.alpha * dt;
        Volts(excitation.0 * x / (4.0 + 2.0 * x) + self.noise.sample())
    }

    fn range(&self) -> (f64, f64) {
        (-40.0, 150.0)
    }

    fn kind(&self) -> &'static str {
        "resistive-temperature"
    }
}

/// Inductive (LVDT-style) position half-bridge: output ratio is linear in
/// core position over ±`stroke_mm`, with cubic end-of-stroke compression.
#[derive(Debug, Clone)]
pub struct InductivePositionSensor {
    position_mm: f64,
    stroke_mm: f64,
    sensitivity: f64,
    noise: WhiteNoise,
}

impl InductivePositionSensor {
    /// Creates a sensor with stroke ±`stroke_mm` and mid-stroke ratio
    /// sensitivity `sensitivity` per mm.
    ///
    /// # Panics
    ///
    /// Panics if `stroke_mm` or `sensitivity` is not positive.
    #[must_use]
    pub fn new(stroke_mm: f64, sensitivity: f64, seed: u64) -> Self {
        assert!(stroke_mm > 0.0, "stroke must be positive");
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        Self {
            position_mm: 0.0,
            stroke_mm,
            sensitivity,
            noise: WhiteNoise::new(20.0e-6, seed),
        }
    }
}

impl AnalogSensor for InductivePositionSensor {
    fn set_stimulus(&mut self, value: f64) {
        self.position_mm = value.clamp(-self.stroke_mm, self.stroke_mm);
    }

    fn stimulus(&self) -> f64 {
        self.position_mm
    }

    fn set_temperature(&mut self, _t: Celsius) {
        // LVDT ratiometric output is first-order temperature free.
    }

    fn sample(&mut self, excitation: Volts) -> Volts {
        let u = self.position_mm / self.stroke_mm;
        // 2 % cubic compression near the stroke ends.
        let ratio = self.sensitivity * self.position_mm * (1.0 - 0.02 * u * u);
        Volts(excitation.0 * ratio + self.noise.sample())
    }

    fn range(&self) -> (f64, f64) {
        (-self.stroke_mm, self.stroke_mm)
    }

    fn kind(&self) -> &'static str {
        "inductive-position"
    }
}

/// Promotion onto the generic front-end contract: the LVDT keeps the
/// gyro-style carrier excitation and coherent demodulation. It has no
/// pilot imbalance and a true null at mid-stroke, so only the open-harness
/// check is electrically available — the cross-sensor coverage report
/// shows exactly that contrast against the pilot-carrying accelerometer.
impl SensorFrontEnd for InductivePositionSensor {
    fn kind(&self) -> &'static str {
        AnalogSensor::kind(self)
    }

    fn unit(&self) -> &'static str {
        "mm"
    }

    fn range(&self) -> (f64, f64) {
        AnalogSensor::range(self)
    }

    fn excitation(&self) -> Excitation {
        Excitation::Carrier {
            freq_hz: 5_000.0,
            amplitude_v: 3.0,
        }
    }

    fn conditioning(&self) -> Conditioning {
        Conditioning::Linear {
            scale: 1.0 / self.sensitivity,
            offset: 0.0,
        }
    }

    fn plausibility(&self) -> PlausibilityBands {
        PlausibilityBands::Carrier {
            open_above: 0.5,
            ac_floor: -1.0,
            reverse_below: -2.0,
        }
    }

    fn set_stimulus(&mut self, value: f64) {
        AnalogSensor::set_stimulus(self, value);
    }

    fn stimulus(&self) -> f64 {
        AnalogSensor::stimulus(self)
    }

    fn set_temperature(&mut self, t: Celsius) {
        AnalogSensor::set_temperature(self, t);
    }

    fn sense(&mut self, excitation: Volts, _dt: f64) -> Volts {
        self.sample(excitation)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.position_mm);
        self.noise.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.position_mm = r.take_f64()?;
        self.noise.load_state(r)
    }

    fn config_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u8_slice(b"inductive-position/v1");
        w.put_f64(self.stroke_mm);
        w.put_f64(self.sensitivity);
        fnv1a64(w.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::{
        AnalogSensor, CapacitivePressureSensor, InductivePositionSensor, ResistiveTempBridge,
    };
    use ascp_sim::units::{Celsius, Volts};

    #[test]
    fn pressure_output_monotonic() {
        let mut s = CapacitivePressureSensor::new(400.0, 0.2, 1);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 100.0, 200.0, 300.0, 400.0] {
            s.set_stimulus(p);
            // Average out noise.
            let v: f64 = (0..200).map(|_| s.sample(Volts(5.0)).0).sum::<f64>() / 200.0;
            assert!(v > last, "not monotonic at {p} kPa");
            last = v;
        }
    }

    #[test]
    fn pressure_clamps_to_range() {
        let mut s = CapacitivePressureSensor::new(400.0, 0.2, 1);
        s.set_stimulus(900.0);
        assert_eq!(s.stimulus(), 400.0);
        s.set_stimulus(-50.0);
        assert_eq!(s.stimulus(), 0.0);
    }

    #[test]
    fn pressure_temperature_drift_visible() {
        let mut s = CapacitivePressureSensor::new(400.0, 0.2, 1);
        s.set_stimulus(200.0);
        let v25: f64 = (0..500).map(|_| s.sample(Volts(5.0)).0).sum::<f64>() / 500.0;
        s.set_temperature(Celsius(125.0));
        let v125: f64 = (0..500).map(|_| s.sample(Volts(5.0)).0).sum::<f64>() / 500.0;
        assert!((v125 - v25) > 0.01, "no drift: {v25} vs {v125}");
    }

    #[test]
    fn temp_bridge_tracks_temperature() {
        let mut s = ResistiveTempBridge::new(0.00385, 2);
        s.set_stimulus(0.0);
        let v0: f64 = (0..500).map(|_| s.sample(Volts(2.0)).0).sum::<f64>() / 500.0;
        s.set_stimulus(100.0);
        let v100: f64 = (0..500).map(|_| s.sample(Volts(2.0)).0).sum::<f64>() / 500.0;
        assert!(v100 > v0 + 0.1, "bridge insensitive: {v0} vs {v100}");
    }

    #[test]
    fn temp_bridge_self_heating_with_excitation() {
        let mut s = ResistiveTempBridge::new(0.00385, 2);
        s.set_stimulus(25.0);
        let lo: f64 = (0..500).map(|_| s.sample(Volts(1.0)).0).sum::<f64>() / 500.0;
        let hi: f64 = (0..500).map(|_| s.sample(Volts(5.0)).0).sum::<f64>() / 500.0;
        // Normalize by excitation: the ratio should differ by self-heating.
        assert!(hi / 5.0 > lo / 1.0, "no self-heating visible");
    }

    #[test]
    fn position_sign_follows_core() {
        let mut s = InductivePositionSensor::new(5.0, 0.05, 3);
        s.set_stimulus(2.0);
        let vp: f64 = (0..200).map(|_| s.sample(Volts(3.0)).0).sum::<f64>() / 200.0;
        s.set_stimulus(-2.0);
        let vn: f64 = (0..200).map(|_| s.sample(Volts(3.0)).0).sum::<f64>() / 200.0;
        assert!(vp > 0.0 && vn < 0.0, "signs wrong: {vp} {vn}");
        assert!((vp + vn).abs() < 0.01, "not symmetric: {vp} {vn}");
    }

    #[test]
    fn trait_objects_work() {
        let sensors: Vec<Box<dyn AnalogSensor>> = vec![
            Box::new(CapacitivePressureSensor::new(400.0, 0.2, 1)),
            Box::new(ResistiveTempBridge::new(0.00385, 2)),
            Box::new(InductivePositionSensor::new(5.0, 0.05, 3)),
        ];
        let kinds: Vec<&str> = sensors.iter().map(|s| s.kind()).collect();
        assert_eq!(
            kinds,
            [
                "capacitive-pressure",
                "resistive-temperature",
                "inductive-position"
            ]
        );
    }
}
