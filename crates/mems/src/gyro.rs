//! Vibrating-ring MEMS gyroscope model.
//!
//! The paper's case study conditions a vibrating ring gyro (refs \[7\], \[8\]:
//! the polysilicon ring of Ayazi & Najafi and the DAVED© sensor): drive
//! electrodes keep the ring vibrating in the primary elliptical mode at
//! ~15 kHz; rotation about the sensitive axis transfers energy through the
//! Coriolis force into the secondary mode at 45°, whose amplitude is
//! proportional to the angular rate. Control electrodes can null the
//! secondary motion (closed-loop / force-rebalance operation).
//!
//! The model is the standard two-mode lumped equivalent:
//!
//! ```text
//! ẍ_d + (ω_d/Q_d) ẋ_d + ω_d² x_d = F_drive + n_d(t)
//! ẍ_s + (ω_s/Q_s) ẋ_s + ω_s² x_s = F_rebalance − 2 k_ang Ω ẋ_d
//!                                   + k_quad x_d + n_s(t)
//! ```
//!
//! with temperature-dependent ω and Q, Brownian force noise, and a
//! quadrature stiffness-coupling term `k_quad x_d` (the dominant error of
//! real ring gyros, in phase with displacement and therefore 90° away from
//! the Coriolis term, which is in phase with velocity).

use crate::resonator::{Resonator, ResonatorLanes};
use ascp_sim::noise::{WhiteLanes, WhiteNoise};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, DegPerSec, Hertz};

/// Physical and error parameters of the ring gyro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GyroParams {
    /// Drive-mode resonance at 25 °C (Hz). Paper: ≈15 kHz.
    pub f0: Hertz,
    /// Drive-mode quality factor at 25 °C. Sets the envelope time constant
    /// `2Q/ω` and hence the dominant part of turn-on time.
    pub q_drive: f64,
    /// Sense-mode quality factor at 25 °C.
    pub q_sense: f64,
    /// Sense-mode resonance offset above the drive mode (Hz). A deliberate
    /// mode split keeps the open-loop sense response bounded and flat.
    pub mode_split: Hertz,
    /// Angular gain (Coriolis coupling factor); ≈0.37 for a ring.
    pub angular_gain: f64,
    /// Drive-force scaling: commanded force 1.0 equals this acceleration
    /// (normalized units/s²).
    pub force_scale: f64,
    /// Quadrature error expressed as an equivalent rate at 25 °C (°/s).
    pub quadrature_rate: DegPerSec,
    /// Quadrature drift with temperature (°/s per °C).
    pub quadrature_tc: f64,
    /// Mechanical (Brownian) noise floor as an equivalent rate density at
    /// the nominal drive amplitude (°/s/√Hz).
    pub noise_density: f64,
    /// Relative resonance drift per °C (e.g. −30 ppm/°C for polysilicon).
    pub tc_f0: f64,
    /// Relative Q change per °C.
    pub tc_q: f64,
    /// Nominal drive displacement amplitude the AGC regulates to
    /// (normalized units; used to convert the noise density into a force).
    pub nominal_amplitude: f64,
    /// Cubic compression of the *sense* capacitive pickoff
    /// (`x_out = x (1 − c·x²)`, c in 1/units²): the gap nonlinearity that
    /// motivates closed-loop operation — force rebalance keeps the sense
    /// displacement near zero and never sees it.
    pub sense_pickoff_nl: f64,
    /// Noise seed (deterministic runs).
    pub seed: u64,
}

impl Default for GyroParams {
    /// Parameters sized to the paper's case study: 15 kHz ring,
    /// vacuum-packaged Q ≈ 20 000 (envelope τ = 2Q/ω ≈ 0.42 s, so the
    /// amplitude settles on the paper's 500 ms turn-on scale), 200 Hz mode
    /// split, 0.05 °/s/√Hz mechanical floor.
    fn default() -> Self {
        Self {
            f0: Hertz(15_000.0),
            q_drive: 20_000.0,
            q_sense: 2_000.0,
            mode_split: Hertz(200.0),
            angular_gain: 0.37,
            // Sized so a 0.1 drive command at Q = 20 000 settles at the
            // nominal 0.5 displacement amplitude: F = X·ω²/Q / 0.1.
            force_scale: 2.2e6,
            quadrature_rate: DegPerSec(80.0),
            quadrature_tc: 0.15,
            noise_density: 0.05,
            tc_f0: -30.0e-6,
            tc_q: -1.0e-3,
            nominal_amplitude: 0.5,
            sense_pickoff_nl: 3.0e3,
            seed: 0x5eed_6b70,
        }
    }
}

impl GyroParams {
    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.f0.0 > 0.0) {
            return Err("f0 must be positive".into());
        }
        if !(self.q_drive > 1.0 && self.q_sense > 1.0) {
            return Err("quality factors must exceed 1".into());
        }
        if !(self.angular_gain > 0.0 && self.angular_gain <= 1.0) {
            return Err(format!("angular gain {} outside (0, 1]", self.angular_gain));
        }
        if self.noise_density < 0.0 {
            return Err("noise density must be non-negative".into());
        }
        if !(self.nominal_amplitude > 0.0) {
            return Err("nominal amplitude must be positive".into());
        }
        Ok(())
    }
}

/// Pickoff outputs of one integration step (normalized displacement units,
/// converted to volts by the AFE's charge amplifiers).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GyroPickoffs {
    /// Primary (drive) mode displacement.
    pub primary: f64,
    /// Secondary (sense) mode displacement.
    pub secondary: f64,
}

/// The ring gyro simulation.
#[derive(Debug, Clone)]
pub struct RingGyro {
    params: GyroParams,
    drive_mode: Resonator,
    sense_mode: Resonator,
    temperature: Celsius,
    rate: DegPerSec,
    drive_noise: WhiteNoise,
    sense_noise: WhiteNoise,
    /// Sense-force noise sigma per √Hz (derived from `noise_density`).
    sense_noise_density: f64,
    /// Quadrature stiffness coupling (derived, updated with temperature).
    k_quad: f64,
    /// Step size the cached sigmas below were built for (0 = stale; set
    /// stale by temperature changes and rebuilt on the next step).
    sigma_dt: f64,
    /// Cached per-step sense-force noise sigma `density·√(0.5/dt)`.
    sigma_s: f64,
    /// Cached drive-force noise sigma (1 % of the sense sigma).
    sigma_d: f64,
}

impl RingGyro {
    /// Builds a gyro at 25 °C, zero rate, at rest.
    ///
    /// # Panics
    ///
    /// Panics if `params.validate()` fails.
    #[must_use]
    pub fn new(params: GyroParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid gyro parameters: {e}");
        }
        let w0 = params.f0.angular();
        // Equivalent-rate density → force density at the nominal velocity
        // amplitude v = ω·X_nom:  F_n = 2·k_ang·Ω_n·v.
        let omega_n = params.noise_density.to_radians(); // (rad/s)/√Hz
        let sense_noise_density =
            2.0 * params.angular_gain * omega_n * w0 * params.nominal_amplitude;
        let mut gyro = Self {
            drive_mode: Resonator::new(params.f0.0, params.q_drive),
            sense_mode: Resonator::new(params.f0.0 + params.mode_split.0, params.q_sense),
            temperature: Celsius(25.0),
            rate: DegPerSec(0.0),
            drive_noise: WhiteNoise::new(1.0, params.seed ^ 0xd1),
            sense_noise: WhiteNoise::new(1.0, params.seed ^ 0x5e),
            sense_noise_density,
            k_quad: 0.0,
            sigma_dt: 0.0,
            sigma_s: 0.0,
            sigma_d: 0.0,
            params,
        };
        gyro.apply_temperature();
        gyro
    }

    /// Model parameters.
    #[must_use]
    pub fn params(&self) -> &GyroParams {
        &self.params
    }

    /// Applied angular rate.
    #[must_use]
    pub fn rate(&self) -> DegPerSec {
        self.rate
    }

    /// Sets the applied yaw rate (the quantity under measurement).
    pub fn set_rate(&mut self, rate: DegPerSec) {
        self.rate = rate;
    }

    /// Die temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Sets the ambient/die temperature, retuning both modes and the
    /// quadrature coupling.
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
        self.apply_temperature();
    }

    fn apply_temperature(&mut self) {
        let dt = self.temperature.0 - 25.0;
        let p = &self.params;
        let f_scale = 1.0 + p.tc_f0 * dt;
        let q_scale = (1.0 + p.tc_q * dt).max(0.05);
        self.drive_mode
            .retune(p.f0.0 * f_scale, p.q_drive * q_scale);
        self.sense_mode
            .retune((p.f0.0 + p.mode_split.0) * f_scale, p.q_sense * q_scale);
        // Quadrature: k_quad x_d ≡ 2 k_ang Ω_q ω x_d with Ω_q(T) linear.
        let quad_rate = (p.quadrature_rate.0 + p.quadrature_tc * dt).to_radians();
        let w = self.drive_mode.frequency() * 2.0 * std::f64::consts::PI;
        self.k_quad = 2.0 * p.angular_gain * quad_rate * w;
        // Invalidate the per-step noise sigmas alongside the couplings.
        self.sigma_dt = 0.0;
    }

    /// Current drive-mode resonance (what the PLL must track).
    #[must_use]
    pub fn resonance(&self) -> Hertz {
        Hertz(self.drive_mode.frequency())
    }

    /// Advances `dt` seconds.
    ///
    /// `drive_force` and `rebalance_force` are the commanded electrode
    /// forces in DAC units (±1.0 full scale); `dt` is the solver step.
    pub fn step(&mut self, drive_force: f64, rebalance_force: f64, dt: f64) -> GyroPickoffs {
        // White force noise with the configured density, realized per step:
        // sigma = density · √(fs/2). The sigma (and the 1 % drive-mode
        // term, ~40 dB below the regulated drive signal) depends only on
        // `dt`, so it is cached and refreshed when `dt` or the temperature
        // tuning changes — not recomputed per substep.
        if dt != self.sigma_dt {
            self.sigma_s = self.sense_noise_density * (0.5 / dt).sqrt();
            self.sigma_d = 0.01 * self.sigma_s;
            self.sigma_dt = dt;
        }
        let p = &self.params;
        let n_d = self.sigma_d * self.drive_noise.sample();
        let n_s = self.sigma_s * self.sense_noise.sample();

        // The coupling forces ride on the drive motion at the carrier
        // frequency; evaluating them from the *trapezoid* of the drive
        // state across the step (both endpoints are exact under the ZOH
        // propagator) centers their phase mid-step, so one step per DSP
        // tick carries no systematic Coriolis/quadrature phase lag.
        let s0 = self.drive_mode.state();
        self.drive_mode.step(p.force_scale * drive_force + n_d, dt);
        let s1 = self.drive_mode.state();
        let omega_rad = self.rate.to_rad_per_sec();
        let coriolis = -2.0 * p.angular_gain * omega_rad * 0.5 * (s0.v + s1.v);
        let quadrature = self.k_quad * 0.5 * (s0.x + s1.x);

        self.sense_mode.step(
            p.force_scale * rebalance_force + coriolis + quadrature + n_s,
            dt,
        );

        let xs = self.sense_mode.state().x;
        GyroPickoffs {
            primary: self.drive_mode.state().x,
            // Capacitive gap compression on the sense electrode.
            secondary: xs * (1.0 - p.sense_pickoff_nl * xs * xs),
        }
    }

    /// Returns the mechanical scale factor: open-loop secondary
    /// displacement amplitude per °/s at the nominal drive amplitude
    /// (small-signal, analytic).
    #[must_use]
    pub fn open_loop_scale(&self) -> f64 {
        let p = &self.params;
        let w_d = self.drive_mode.frequency() * 2.0 * std::f64::consts::PI;
        let w_s = self.sense_mode.frequency() * 2.0 * std::f64::consts::PI;
        let v_amp = w_d * p.nominal_amplitude;
        let f_per_dps = 2.0 * p.angular_gain * 1f64.to_radians() * v_amp;
        // |H(jw_d)| of the sense mode.
        let r = w_d / w_s;
        let denom = ((1.0 - r * r).powi(2) + (r / p.q_sense).powi(2)).sqrt();
        f_per_dps / (w_s * w_s * denom)
    }

    /// Resets motion to rest (temperature and rate preserved).
    pub fn reset(&mut self) {
        self.drive_mode.reset();
        self.sense_mode.reset();
    }

    /// Serializes the mechanical state: both mode resonators, the applied
    /// stimulus (temperature, rate), the Brownian-noise generators, and the
    /// temperature-derived quadrature coupling. The per-`dt` noise sigmas
    /// are caches and are not saved.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.temperature.0);
        w.put_f64(self.rate.0);
        self.drive_mode.save_state(w);
        self.sense_mode.save_state(w);
        self.drive_noise.save_state(w);
        self.sense_noise.save_state(w);
        w.put_f64(self.k_quad);
    }

    /// Restores state saved by [`RingGyro::save_state`] and marks the
    /// cached per-step noise sigmas stale (rebuilt on the next step).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.temperature = Celsius(r.take_f64()?);
        self.rate = DegPerSec(r.take_f64()?);
        self.drive_mode.load_state(r)?;
        self.sense_mode.load_state(r)?;
        self.drive_noise.load_state(r)?;
        self.sense_noise.load_state(r)?;
        self.k_quad = r.take_f64()?;
        self.sigma_dt = 0.0;
        Ok(())
    }
}

/// Lane-parallel ring-gyro kernel: N gyros advancing in lockstep with
/// structure-of-arrays mode state and batched Brownian noise.
///
/// Per-lane parameters (resonance, Q, quadrature, rate, temperature-derived
/// couplings) may differ — Monte-Carlo dispersion lives here — but every
/// lane executes the *same expressions* as [`RingGyro::step`] in the same
/// order, so each lane's trajectory is bit-identical to stepping that gyro
/// alone. Extraction fails (returns `None`) only if the noise generators
/// are out of lockstep phase, which cannot happen for gyros stepped the
/// same number of times.
#[derive(Debug, Clone)]
pub struct GyroLanes {
    dt: f64,
    drive: ResonatorLanes,
    sense: ResonatorLanes,
    /// Fused `[drive | sense]` Brownian sources, 2N lanes: one batched
    /// draw per substep instead of two (lanes are independent, so fusing
    /// populations cannot change any lane's stream).
    noise: WhiteLanes,
    angular_gain: Vec<f64>,
    force_scale: Vec<f64>,
    k_quad: Vec<f64>,
    pickoff_nl: Vec<f64>,
    /// Applied rate in rad/s (the scalar step converts per call; pure).
    rate_rad: Vec<f64>,
    sigma_s: Vec<f64>,
    sigma_d: Vec<f64>,
    // Scratch buffers (allocated once, reused every substep).
    s0x: Vec<f64>,
    s0v: Vec<f64>,
    /// `[drive | sense]` noise draws, 2N wide.
    n_ds: Vec<f64>,
    force_d: Vec<f64>,
    force_s: Vec<f64>,
}

impl GyroLanes {
    /// Captures N gyros for lockstep stepping at solver step `dt`.
    ///
    /// Returns `None` if the Brownian-noise generators are not phase-uniform
    /// (see [`WhiteLanes::extract`]).
    pub fn extract<'a>(gyros: impl Iterator<Item = &'a RingGyro>, dt: f64) -> Option<Self> {
        let gs: Vec<&RingGyro> = gyros.collect();
        let noise = WhiteLanes::extract(
            gs.iter()
                .map(|g| &g.drive_noise)
                .chain(gs.iter().map(|g| &g.sense_noise)),
        )?;
        let n = gs.len();
        let mut lanes = Self {
            dt,
            drive: ResonatorLanes::extract(gs.iter().map(|g| &g.drive_mode), dt),
            sense: ResonatorLanes::extract(gs.iter().map(|g| &g.sense_mode), dt),
            noise,
            angular_gain: Vec::with_capacity(n),
            force_scale: Vec::with_capacity(n),
            k_quad: Vec::with_capacity(n),
            pickoff_nl: Vec::with_capacity(n),
            rate_rad: Vec::with_capacity(n),
            sigma_s: Vec::with_capacity(n),
            sigma_d: Vec::with_capacity(n),
            s0x: vec![0.0; n],
            s0v: vec![0.0; n],
            n_ds: vec![0.0; 2 * n],
            force_d: vec![0.0; n],
            force_s: vec![0.0; n],
        };
        for g in &gs {
            lanes.angular_gain.push(g.params.angular_gain);
            lanes.force_scale.push(g.params.force_scale);
            lanes.k_quad.push(g.k_quad);
            lanes.pickoff_nl.push(g.params.sense_pickoff_nl);
            lanes.rate_rad.push(g.rate.to_rad_per_sec());
            // Same expressions the scalar step caches per dt.
            let sigma_s = g.sense_noise_density * (0.5 / dt).sqrt();
            lanes.sigma_s.push(sigma_s);
            lanes.sigma_d.push(0.01 * sigma_s);
        }
        Some(lanes)
    }

    /// Writes lane state back into the gyros; the per-`dt` sigma caches are
    /// marked stale and rebuilt (identically) on the next scalar step.
    pub fn restore<'a>(&self, gyros: impl Iterator<Item = &'a mut RingGyro>) {
        let mut gs: Vec<&mut RingGyro> = gyros.collect();
        self.drive.restore(gs.iter_mut().map(|g| &mut g.drive_mode));
        self.sense.restore(gs.iter_mut().map(|g| &mut g.sense_mode));
        {
            let mut drive: Vec<&mut WhiteNoise> = Vec::with_capacity(gs.len());
            let mut sense: Vec<&mut WhiteNoise> = Vec::with_capacity(gs.len());
            for g in gs.iter_mut() {
                drive.push(&mut g.drive_noise);
                sense.push(&mut g.sense_noise);
            }
            self.noise.restore(drive.into_iter().chain(sense));
        }
        for g in gs {
            g.sigma_dt = 0.0;
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.angular_gain.len()
    }

    /// The solver step the lanes were extracted for.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advances every lane one solver step; pickoffs land in
    /// `primary[l]` / `secondary[l]`.
    #[inline]
    pub fn step(
        &mut self,
        drive_force: &[f64],
        rebalance_force: &[f64],
        primary: &mut [f64],
        secondary: &mut [f64],
    ) {
        let n = self.angular_gain.len();
        self.noise.sample(&mut self.n_ds);
        self.s0x.copy_from_slice(self.drive.x());
        self.s0v.copy_from_slice(self.drive.v());
        for (l, &f) in drive_force.iter().enumerate().take(n) {
            self.force_d[l] = self.force_scale[l] * f + self.sigma_d[l] * self.n_ds[l];
        }
        self.drive.step(&self.force_d);
        let s1x = self.drive.x();
        let s1v = self.drive.v();
        for l in 0..n {
            let coriolis =
                -2.0 * self.angular_gain[l] * self.rate_rad[l] * 0.5 * (self.s0v[l] + s1v[l]);
            let quadrature = self.k_quad[l] * 0.5 * (self.s0x[l] + s1x[l]);
            self.force_s[l] = self.force_scale[l] * rebalance_force[l]
                + coriolis
                + quadrature
                + self.sigma_s[l] * self.n_ds[n + l];
        }
        self.sense.step(&self.force_s);
        primary[..n].copy_from_slice(self.drive.x());
        let xs_all = self.sense.x();
        for l in 0..n {
            let xs = xs_all[l];
            secondary[l] = xs * (1.0 - self.pickoff_nl[l] * xs * xs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 1.0e6;

    /// Drives the gyro open loop at its resonance with a fixed force and
    /// returns the steady primary/secondary amplitudes.
    fn run_open_loop(rate: f64, seconds: f64, noise: bool) -> (f64, f64, RingGyro) {
        let mut p = GyroParams::default();
        // Tests use a lower Q so the envelope settles within a short run
        // (τ = 2Q/ω; Q = 2000 → τ ≈ 42 ms).
        p.q_drive = 2_000.0;
        if !noise {
            p.noise_density = 0.0;
        }
        let mut g = RingGyro::new(p);
        g.set_rate(DegPerSec(rate));
        let w = g.resonance().angular();
        let steps = (seconds / DT) as usize;
        let mut p_peak = 0.0f64;
        let mut s_peak = 0.0f64;
        for k in 0..steps {
            // Drive with the in-velocity phase (cos) like a locked PLL+AGC.
            let force = 0.4 * (w * k as f64 * DT).cos();
            let out = g.step(force, 0.0, DT);
            if k > steps * 9 / 10 {
                p_peak = p_peak.max(out.primary.abs());
                s_peak = s_peak.max(out.secondary.abs());
            }
        }
        (p_peak, s_peak, g)
    }

    #[test]
    fn drive_amplitude_reaches_resonant_gain() {
        let (p_peak, _, g) = run_open_loop(0.0, 1.0, false);
        let expect =
            g.params().q_drive * g.params().force_scale * 0.4 / g.resonance().angular().powi(2);
        assert!(
            (p_peak - expect).abs() / expect < 0.05,
            "primary {p_peak} vs {expect}"
        );
    }

    #[test]
    fn secondary_scales_with_rate() {
        let (_, s100, _) = run_open_loop(100.0, 1.0, false);
        let (_, s300, _) = run_open_loop(300.0, 1.0, false);
        // Quadrature is a constant background; the rate part should triple.
        // Use the difference against zero rate to isolate it.
        let (_, s0, _) = run_open_loop(0.0, 1.0, false);
        assert!(s100 > s0, "no rate response");
        let d100 = (s100 * s100 - s0 * s0).max(0.0).sqrt();
        let d300 = (s300 * s300 - s0 * s0).max(0.0).sqrt();
        assert!(
            (d300 / d100 - 3.0).abs() < 0.35,
            "rate scaling {d100} vs {d300}"
        );
    }

    #[test]
    fn rate_sign_flips_coriolis_phase() {
        // Run with +rate and −rate; secondary amplitudes match.
        let (_, sp, _) = run_open_loop(200.0, 0.8, false);
        let (_, sn, _) = run_open_loop(-200.0, 0.8, false);
        assert!((sp - sn).abs() / sp < 0.1, "asymmetry {sp} vs {sn}");
    }

    #[test]
    fn temperature_shifts_resonance() {
        let mut g = RingGyro::new(GyroParams::default());
        let f25 = g.resonance().0;
        g.set_temperature(Celsius(125.0));
        let f125 = g.resonance().0;
        let expect = f25 * (1.0 - 30.0e-6 * 100.0);
        assert!((f125 - expect).abs() < 0.01, "f125 {f125} vs {expect}");
        g.set_temperature(Celsius(-40.0));
        assert!(g.resonance().0 > f25, "cold resonance should rise");
    }

    #[test]
    fn open_loop_scale_is_positive_and_sane() {
        let g = RingGyro::new(GyroParams::default());
        let s = g.open_loop_scale();
        // At 300 °/s the secondary stays within ±1 normalized unit.
        assert!(s > 0.0);
        assert!(s * 300.0 < 1.0, "sense overloads at FS: {}", s * 300.0);
    }

    #[test]
    fn noise_creates_secondary_motion() {
        let (_, s_quiet, _) = run_open_loop(0.0, 0.3, false);
        let mut p = GyroParams::default();
        p.noise_density = 0.5; // exaggerated for a fast test
        let mut g = RingGyro::new(p);
        let w = g.resonance().angular();
        let mut s_noisy = 0.0f64;
        let steps = (0.3 / DT) as usize;
        for k in 0..steps {
            let force = 0.4 * (w * k as f64 * DT).cos();
            let out = g.step(force, 0.0, DT);
            if k > steps * 9 / 10 {
                s_noisy = s_noisy.max(out.secondary.abs());
            }
        }
        assert!(
            s_noisy > s_quiet,
            "noise had no effect: {s_noisy} vs {s_quiet}"
        );
    }

    #[test]
    fn reset_stops_motion() {
        let mut g = RingGyro::new(GyroParams::default());
        let w = g.resonance().angular();
        for k in 0..10_000 {
            g.step(0.4 * (w * k as f64 * DT).cos(), 0.0, DT);
        }
        g.reset();
        let out = g.step(0.0, 0.0, DT);
        assert!(out.primary.abs() < 1e-9 && out.secondary.abs() < 1e-6);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut g = RingGyro::new(GyroParams::default());
            g.set_rate(DegPerSec(50.0));
            let mut last = GyroPickoffs::default();
            for k in 0..5000 {
                last = g.step(0.3 * (k as f64 * 0.09).cos(), 0.0, DT);
            }
            last
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn gyro_lanes_match_scalar_bit_for_bit() {
        // Dispersed lanes (different f0/Q/quadrature/rate/temperature per
        // lane) stepped SoA must reproduce the scalar trajectories exactly,
        // noise included.
        for n in [1usize, 3, 8] {
            let mut scalars: Vec<RingGyro> = (0..n)
                .map(|i| {
                    let mut p = GyroParams::default();
                    p.q_drive = 2_000.0 * (1.0 + 0.05 * i as f64);
                    p.f0 = Hertz(p.f0.0 * (1.0 + 0.001 * i as f64));
                    p.quadrature_rate = DegPerSec(80.0 + 3.0 * i as f64);
                    p.seed = 0x5eed_6b70 ^ (i as u64) << 8;
                    let mut g = RingGyro::new(p);
                    g.set_rate(DegPerSec(10.0 * i as f64));
                    g.set_temperature(Celsius(25.0 + 5.0 * i as f64));
                    g
                })
                .collect();
            let mut reference = scalars.clone();
            let mut lanes = GyroLanes::extract(scalars.iter(), DT).expect("uniform phase");
            assert_eq!(lanes.lanes(), n);

            let mut drive = vec![0.0; n];
            let mut rebal = vec![0.0; n];
            let mut primary = vec![0.0; n];
            let mut secondary = vec![0.0; n];
            for k in 0..4000u64 {
                for l in 0..n {
                    drive[l] = 0.4 * (0.09 * (k as f64 + l as f64)).cos();
                    rebal[l] = 0.01 * (0.04 * k as f64).sin();
                }
                lanes.step(&drive, &rebal, &mut primary, &mut secondary);
                for (l, g) in reference.iter_mut().enumerate() {
                    let out = g.step(drive[l], rebal[l], DT);
                    assert_eq!(
                        out.primary.to_bits(),
                        primary[l].to_bits(),
                        "primary lane {l} tick {k}"
                    );
                    assert_eq!(
                        out.secondary.to_bits(),
                        secondary[l].to_bits(),
                        "secondary lane {l} tick {k}"
                    );
                }
            }
            // Write-back: the restored gyros must continue exactly like the
            // scalar references.
            lanes.restore(scalars.iter_mut());
            for (a, b) in scalars.iter_mut().zip(reference.iter_mut()) {
                for k in 0..100u64 {
                    let f = 0.3 * (0.07 * k as f64).cos();
                    assert_eq!(a.step(f, 0.0, DT), b.step(f, 0.0, DT));
                }
            }
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = GyroParams::default();
        p.angular_gain = 1.5;
        assert!(p.validate().is_err());
        p = GyroParams::default();
        p.q_drive = 0.5;
        assert!(p.validate().is_err());
        p = GyroParams::default();
        p.noise_density = -1.0;
        assert!(p.validate().is_err());
        assert!(GyroParams::default().validate().is_ok());
    }
}
