//! # ascp-mems — sensor physics models
//!
//! The sensors the ASCP platform conditions (reproduction of *Platform
//! Based Design for Automotive Sensor Conditioning*, DATE 2005). The paper
//! co-simulates the sensor itself with the conditioning electronics ("the
//! sensor itself can be modeled with MATLAB, and thus co-simulated with the
//! conditioning circuitry", §2); this crate is that sensor model library:
//!
//! - [`resonator`] — the damped-harmonic-oscillator integrator (RK4);
//! - [`gyro`] — the case study's vibrating-ring yaw-rate gyro: two coupled
//!   modes, Coriolis transfer, quadrature error, Brownian noise and
//!   temperature drift;
//! - [`generic`] — capacitive/resistive/inductive behavioural sensors for
//!   the "generic platform" demonstrations;
//! - [`frontend`] — the [`frontend::SensorFrontEnd`] trait: the contract a
//!   sensor family implements to be conditioned by the generic platform
//!   channel (excitation needs, conditioning recipe, plausibility bands,
//!   wire-fault hooks, checkpointing);
//! - [`pressure`] — automotive MAP/IAT ratiometric-divider front-ends;
//! - [`accel`] — a capacitive accelerometer reusing the resonator kernel.
//!
//! # Example
//!
//! ```
//! use ascp_mems::gyro::{GyroParams, RingGyro};
//! use ascp_sim::units::DegPerSec;
//!
//! let mut gyro = RingGyro::new(GyroParams::default());
//! gyro.set_rate(DegPerSec(100.0));
//! let dt = 1.0 / 1.0e6;
//! let out = gyro.step(0.4, 0.0, dt); // drive force, rebalance force
//! assert!(out.primary.abs() < 1.0);
//! ```

pub mod accel;
pub mod frontend;
pub mod generic;
pub mod gyro;
pub mod pressure;
pub mod resonator;
