//! Second-order resonator integrated with RK4.
//!
//! Both vibration modes of the ring gyro are damped harmonic oscillators;
//! this module provides the shared integrator. The solver is classic
//! fixed-step RK4, which at ≥16 samples per period keeps amplitude error
//! far below the Brownian noise floor.

/// State of a 1-DOF resonator: displacement and velocity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModeState {
    /// Displacement (normalized units).
    pub x: f64,
    /// Velocity (normalized units / s).
    pub v: f64,
}

/// Damped harmonic oscillator `ẍ + (ω/Q) ẋ + ω² x = f(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resonator {
    omega: f64,
    q: f64,
    state: ModeState,
}

impl Resonator {
    /// Creates a resonator with natural frequency `f0` (Hz) and quality
    /// factor `q`, at rest.
    ///
    /// # Panics
    ///
    /// Panics if `f0` or `q` is not positive.
    #[must_use]
    pub fn new(f0: f64, q: f64) -> Self {
        assert!(f0 > 0.0, "resonance frequency must be positive, got {f0}");
        assert!(q > 0.0, "quality factor must be positive, got {q}");
        Self {
            omega: 2.0 * std::f64::consts::PI * f0,
            q,
            state: ModeState::default(),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> ModeState {
        self.state
    }

    /// Natural frequency in Hz.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.omega / (2.0 * std::f64::consts::PI)
    }

    /// Quality factor.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Retunes the resonator (temperature drift) without touching state.
    ///
    /// # Panics
    ///
    /// Panics if `f0` or `q` is not positive.
    pub fn retune(&mut self, f0: f64, q: f64) {
        assert!(f0 > 0.0 && q > 0.0, "retune needs positive f0 and q");
        self.omega = 2.0 * std::f64::consts::PI * f0;
        self.q = q;
    }

    /// Resets to rest.
    pub fn reset(&mut self) {
        self.state = ModeState::default();
    }

    /// Advances by `dt` seconds under constant external acceleration
    /// `force` (per unit mass) using RK4.
    pub fn step(&mut self, force: f64, dt: f64) {
        let f = |s: ModeState| -> (f64, f64) {
            (
                s.v,
                force - (self.omega / self.q) * s.v - self.omega * self.omega * s.x,
            )
        };
        let s0 = self.state;
        let (k1x, k1v) = f(s0);
        let s1 = ModeState {
            x: s0.x + 0.5 * dt * k1x,
            v: s0.v + 0.5 * dt * k1v,
        };
        let (k2x, k2v) = f(s1);
        let s2 = ModeState {
            x: s0.x + 0.5 * dt * k2x,
            v: s0.v + 0.5 * dt * k2v,
        };
        let (k3x, k3v) = f(s2);
        let s3 = ModeState {
            x: s0.x + dt * k3x,
            v: s0.v + dt * k3v,
        };
        let (k4x, k4v) = f(s3);
        self.state.x = s0.x + dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
        self.state.v = s0.v + dt / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
    }

    /// Steady-state displacement amplitude under a resonant sinusoidal
    /// force of amplitude `f_amp` (per unit mass): `Q·f/ω²`.
    #[must_use]
    pub fn resonant_gain(&self, f_amp: f64) -> f64 {
        self.q * f_amp / (self.omega * self.omega)
    }

    /// Envelope time constant `2Q/ω` (amplitude settles with this τ).
    #[must_use]
    pub fn envelope_tau(&self) -> f64 {
        2.0 * self.q / self.omega
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: f64 = 15_000.0;
    const DT: f64 = 1.0 / 1.0e6;

    #[test]
    fn free_decay_matches_q() {
        let q = 100.0;
        let mut r = Resonator::new(F0, q);
        // Kick it and let it ring down for n periods.
        r.state = ModeState { x: 1.0, v: 0.0 };
        let periods = 50.0;
        let steps = (periods / F0 / DT) as usize;
        let mut peak = 0.0f64;
        for k in 0..steps {
            r.step(0.0, DT);
            if k > steps - (1.0 / F0 / DT) as usize {
                peak = peak.max(r.state().x.abs());
            }
        }
        // Amplitude after n periods: exp(-π n / Q).
        let expect = (-std::f64::consts::PI * periods / q).exp();
        assert!(
            (peak - expect).abs() / expect < 0.05,
            "peak {peak} vs {expect}"
        );
    }

    #[test]
    fn resonant_drive_reaches_predicted_amplitude() {
        let q = 50.0;
        let mut r = Resonator::new(F0, q);
        let f_amp = 1.0e6;
        let w = 2.0 * std::f64::consts::PI * F0;
        // Run for ~8 envelope time constants.
        let steps = (8.0 * r.envelope_tau() / DT) as usize;
        let mut peak = 0.0f64;
        for k in 0..steps {
            let force = f_amp * (w * k as f64 * DT).cos();
            r.step(force, DT);
            if k > steps - (1.0 / F0 / DT) as usize {
                peak = peak.max(r.state().x.abs());
            }
        }
        let expect = r.resonant_gain(f_amp);
        assert!(
            (peak - expect).abs() / expect < 0.03,
            "amplitude {peak} vs {expect}"
        );
    }

    #[test]
    fn off_resonance_drive_is_attenuated() {
        let q = 500.0;
        let mut r = Resonator::new(F0, q);
        let f_amp = 1.0e6;
        // Drive 5 % off resonance: response should be far below Q·gain.
        let w = 2.0 * std::f64::consts::PI * F0 * 1.05;
        let steps = (8.0 * r.envelope_tau() / DT) as usize;
        let mut peak = 0.0f64;
        for k in 0..steps {
            let force = f_amp * (w * k as f64 * DT).cos();
            r.step(force, DT);
            if k > steps * 3 / 4 {
                peak = peak.max(r.state().x.abs());
            }
        }
        assert!(
            peak < 0.05 * r.resonant_gain(f_amp),
            "off-resonance response too large: {peak}"
        );
    }

    #[test]
    fn energy_conserved_without_damping_proxy() {
        // Very high Q: total energy decays by < 0.2 % over 10 periods.
        let mut r = Resonator::new(F0, 1.0e6);
        r.state = ModeState { x: 1.0, v: 0.0 };
        let w2 = (2.0 * std::f64::consts::PI * F0).powi(2);
        let e0 = w2 * 1.0;
        let steps = (10.0 / F0 / DT) as usize;
        for _ in 0..steps {
            r.step(0.0, DT);
        }
        let s = r.state();
        let e1 = w2 * s.x * s.x + s.v * s.v;
        assert!((e1 - e0).abs() / e0 < 2e-3, "energy drifted: {e0} -> {e1}");
    }

    #[test]
    fn retune_changes_frequency() {
        let mut r = Resonator::new(F0, 100.0);
        r.retune(F0 * 1.01, 120.0);
        assert!((r.frequency() - F0 * 1.01).abs() < 1e-9);
        assert_eq!(r.q(), 120.0);
    }

    #[test]
    fn reset_returns_to_rest() {
        let mut r = Resonator::new(F0, 10.0);
        r.step(1.0e3, DT);
        r.reset();
        assert_eq!(r.state(), ModeState::default());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_frequency() {
        let _ = Resonator::new(0.0, 10.0);
    }

    #[test]
    fn envelope_tau_formula() {
        let r = Resonator::new(F0, 5000.0);
        let expect = 2.0 * 5000.0 / (2.0 * std::f64::consts::PI * F0);
        assert!((r.envelope_tau() - expect).abs() < 1e-12);
    }
}
