//! Second-order resonator advanced by an exact zero-order-hold propagator.
//!
//! Both vibration modes of the ring gyro are damped harmonic oscillators.
//! Because the mode ODE is *linear* and the electrode forces are held
//! constant over a solver step (DAC hold), the step has a closed-form
//! solution: `s(t+dt) = s_eq + exp(A·dt)·(s(t) − s_eq)` with
//! `s_eq = [f/ω², 0]`. [`Resonator::step`] applies the precomputed
//! `exp(A·dt)` — four multiply-adds per step, exact to machine precision
//! for piecewise-constant forcing at *any* step size (the classic RK4
//! integrator is kept as [`Resonator::step_rk4`] for cross-checks). The
//! 2×2 matrix is cached per `dt` and invalidated by [`Resonator::retune`].

use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// State of a 1-DOF resonator: displacement and velocity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModeState {
    /// Displacement (normalized units).
    pub x: f64,
    /// Velocity (normalized units / s).
    pub v: f64,
}

/// Cached exact one-step propagator for a fixed `(ω, Q, dt)`.
///
/// For `ẍ + (ω/Q)ẋ + ω²x = f` with constant `f`, the state relaxes toward
/// the equilibrium `[f/ω², 0]` through `Φ = exp(A·dt)`; the entries of `Φ`
/// are closed-form in the damped frequency `ω_d = ω√(1 − ζ²)` (trig for
/// the underdamped branch, hyperbolic for the overdamped one, polynomial
/// at critical damping).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Propagator {
    /// The step size this propagator was built for.
    dt: f64,
    p00: f64,
    p01: f64,
    p10: f64,
    p11: f64,
    /// `1/ω²` (equilibrium displacement per unit force).
    inv_w2: f64,
}

impl Propagator {
    fn compute(omega: f64, q: f64, dt: f64) -> Self {
        let zeta = 1.0 / (2.0 * q);
        let alpha = zeta * omega;
        let e = (-alpha * dt).exp();
        let disc = 1.0 - zeta * zeta;
        // `c ≈ cos(ω_d dt)`, `s ≈ sin(ω_d dt)/ω_d` in all three damping
        // regimes (sinh/cosh when overdamped, the ω_d → 0 limit at
        // critical damping).
        let (c, s) = if disc > 1.0e-12 {
            let wd = omega * disc.sqrt();
            ((wd * dt).cos(), (wd * dt).sin() / wd)
        } else if disc < -1.0e-12 {
            let wd = omega * (-disc).sqrt();
            ((wd * dt).cosh(), (wd * dt).sinh() / wd)
        } else {
            (1.0, dt)
        };
        Self {
            dt,
            p00: e * (c + alpha * s),
            p01: e * s,
            p10: -e * omega * omega * s,
            p11: e * (c - alpha * s),
            inv_w2: 1.0 / (omega * omega),
        }
    }
}

/// Damped harmonic oscillator `ẍ + (ω/Q) ẋ + ω² x = f(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resonator {
    omega: f64,
    q: f64,
    state: ModeState,
    /// Cached per-`dt` propagator; `None` after construction or retune.
    prop: Option<Propagator>,
}

impl Resonator {
    /// Creates a resonator with natural frequency `f0` (Hz) and quality
    /// factor `q`, at rest.
    ///
    /// # Panics
    ///
    /// Panics if `f0` or `q` is not positive.
    #[must_use]
    pub fn new(f0: f64, q: f64) -> Self {
        assert!(f0 > 0.0, "resonance frequency must be positive, got {f0}");
        assert!(q > 0.0, "quality factor must be positive, got {q}");
        Self {
            omega: 2.0 * std::f64::consts::PI * f0,
            q,
            state: ModeState::default(),
            prop: None,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> ModeState {
        self.state
    }

    /// Natural frequency in Hz.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.omega / (2.0 * std::f64::consts::PI)
    }

    /// Quality factor.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Retunes the resonator (temperature drift) without touching state.
    ///
    /// Invalidates the cached propagator: the next [`Resonator::step`]
    /// rebuilds `exp(A·dt)` from the new `(ω, Q)`.
    ///
    /// # Panics
    ///
    /// Panics if `f0` or `q` is not positive.
    pub fn retune(&mut self, f0: f64, q: f64) {
        assert!(f0 > 0.0 && q > 0.0, "retune needs positive f0 and q");
        self.omega = 2.0 * std::f64::consts::PI * f0;
        self.q = q;
        self.prop = None;
    }

    /// Resets to rest.
    pub fn reset(&mut self) {
        self.state = ModeState::default();
    }

    /// Advances by `dt` seconds under constant external acceleration
    /// `force` (per unit mass) using the exact ZOH propagator.
    ///
    /// The first call (and the first call after [`Resonator::retune`] or a
    /// `dt` change) pays one `exp`/`sin`/`cos` to build the propagator;
    /// every following call at the same `dt` is four multiply-adds.
    #[inline]
    pub fn step(&mut self, force: f64, dt: f64) {
        let p = match self.prop {
            Some(p) if p.dt == dt => p,
            _ => {
                let p = Propagator::compute(self.omega, self.q, dt);
                self.prop = Some(p);
                p
            }
        };
        let xeq = force * p.inv_w2;
        let dx = self.state.x - xeq;
        let v = self.state.v;
        self.state.x = xeq + p.p00 * dx + p.p01 * v;
        self.state.v = p.p10 * dx + p.p11 * v;
    }

    /// Advances by `dt` seconds with classic fixed-step RK4 (the original
    /// solver, kept as the independent cross-check for the exact
    /// propagator and for profiling comparisons).
    pub fn step_rk4(&mut self, force: f64, dt: f64) {
        let f = |s: ModeState| -> (f64, f64) {
            (
                s.v,
                force - (self.omega / self.q) * s.v - self.omega * self.omega * s.x,
            )
        };
        let s0 = self.state;
        let (k1x, k1v) = f(s0);
        let s1 = ModeState {
            x: s0.x + 0.5 * dt * k1x,
            v: s0.v + 0.5 * dt * k1v,
        };
        let (k2x, k2v) = f(s1);
        let s2 = ModeState {
            x: s0.x + 0.5 * dt * k2x,
            v: s0.v + 0.5 * dt * k2v,
        };
        let (k3x, k3v) = f(s2);
        let s3 = ModeState {
            x: s0.x + dt * k3x,
            v: s0.v + dt * k3v,
        };
        let (k4x, k4v) = f(s3);
        self.state.x = s0.x + dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
        self.state.v = s0.v + dt / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
    }

    /// Steady-state displacement amplitude under a resonant sinusoidal
    /// force of amplitude `f_amp` (per unit mass): `Q·f/ω²`.
    #[must_use]
    pub fn resonant_gain(&self, f_amp: f64) -> f64 {
        self.q * f_amp / (self.omega * self.omega)
    }

    /// Envelope time constant `2Q/ω` (amplitude settles with this τ).
    #[must_use]
    pub fn envelope_tau(&self) -> f64 {
        2.0 * self.q / self.omega
    }

    /// Serializes tuning and motion state. The cached `exp(A·dt)`
    /// propagator is *not* saved — it is a pure function of `(ω, Q, dt)`
    /// and is rebuilt on the first step after restore.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.omega);
        w.put_f64(self.q);
        w.put_f64(self.state.x);
        w.put_f64(self.state.v);
    }

    /// Restores state saved by [`Resonator::save_state`] and invalidates
    /// the cached propagator.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the saved tuning is not
    /// physical (non-positive or non-finite ω or Q); propagates other
    /// [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let omega = r.take_f64()?;
        let q = r.take_f64()?;
        if !(omega > 0.0 && omega.is_finite() && q > 0.0 && q.is_finite()) {
            return Err(SnapshotError::Corrupt {
                context: format!("resonator tuning omega={omega} q={q} not physical"),
            });
        }
        self.omega = omega;
        self.q = q;
        self.state.x = r.take_f64()?;
        self.state.v = r.take_f64()?;
        self.prop = None;
        Ok(())
    }
}

/// Lane-parallel ZOH propagator: N resonators stepping in lockstep over
/// structure-of-arrays state.
///
/// The hot-loop layout the fleet driver uses: contiguous `[x0..xN]` and
/// `[v0..vN]` arrays with per-lane cached `exp(A·dt)` coefficients, so the
/// four multiply-adds of [`Resonator::step`] auto-vectorize across lanes.
/// Each lane's arithmetic is the *same expression* as the scalar step —
/// Rust performs no FP reassociation or contraction, so per-lane results
/// are bit-identical to stepping each resonator scalar.
#[derive(Debug, Clone)]
pub struct ResonatorLanes {
    x: Vec<f64>,
    v: Vec<f64>,
    p00: Vec<f64>,
    p01: Vec<f64>,
    p10: Vec<f64>,
    p11: Vec<f64>,
    inv_w2: Vec<f64>,
}

impl ResonatorLanes {
    /// Captures N resonators for lockstep stepping at step size `dt`,
    /// computing each lane's propagator with the same closed form the
    /// scalar path caches.
    pub fn extract<'a>(res: impl Iterator<Item = &'a Resonator>, dt: f64) -> Self {
        let mut lanes = Self {
            x: Vec::new(),
            v: Vec::new(),
            p00: Vec::new(),
            p01: Vec::new(),
            p10: Vec::new(),
            p11: Vec::new(),
            inv_w2: Vec::new(),
        };
        for r in res {
            let p = match r.prop {
                Some(p) if p.dt == dt => p,
                _ => Propagator::compute(r.omega, r.q, dt),
            };
            lanes.x.push(r.state.x);
            lanes.v.push(r.state.v);
            lanes.p00.push(p.p00);
            lanes.p01.push(p.p01);
            lanes.p10.push(p.p10);
            lanes.p11.push(p.p11);
            lanes.inv_w2.push(p.inv_w2);
        }
        lanes
    }

    /// Writes the lane motion state back. The scalar propagator cache is
    /// invalidated; the next scalar step rebuilds the identical matrix.
    pub fn restore<'a>(&self, res: impl Iterator<Item = &'a mut Resonator>) {
        for (l, r) in res.enumerate() {
            r.state.x = self.x[l];
            r.state.v = self.v[l];
            r.prop = None;
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.x.len()
    }

    /// Per-lane displacements.
    #[must_use]
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Per-lane velocities.
    #[must_use]
    pub fn v(&self) -> &[f64] {
        &self.v
    }

    /// Advances every lane one step under its `force[l]` — the SoA twin of
    /// [`Resonator::step`].
    #[inline]
    pub fn step(&mut self, force: &[f64]) {
        let n = self.x.len();
        assert_eq!(force.len(), n, "lane count mismatch");
        for (l, &f) in force.iter().enumerate().take(n) {
            let xeq = f * self.inv_w2[l];
            let dx = self.x[l] - xeq;
            let v = self.v[l];
            self.x[l] = xeq + self.p00[l] * dx + self.p01[l] * v;
            self.v[l] = self.p10[l] * dx + self.p11[l] * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: f64 = 15_000.0;
    const DT: f64 = 1.0 / 1.0e6;

    #[test]
    fn free_decay_matches_q() {
        let q = 100.0;
        let mut r = Resonator::new(F0, q);
        // Kick it and let it ring down for n periods.
        r.state = ModeState { x: 1.0, v: 0.0 };
        let periods = 50.0;
        let steps = (periods / F0 / DT) as usize;
        let mut peak = 0.0f64;
        for k in 0..steps {
            r.step(0.0, DT);
            if k > steps - (1.0 / F0 / DT) as usize {
                peak = peak.max(r.state().x.abs());
            }
        }
        // Amplitude after n periods: exp(-π n / Q).
        let expect = (-std::f64::consts::PI * periods / q).exp();
        assert!(
            (peak - expect).abs() / expect < 0.05,
            "peak {peak} vs {expect}"
        );
    }

    #[test]
    fn resonant_drive_reaches_predicted_amplitude() {
        let q = 50.0;
        let mut r = Resonator::new(F0, q);
        let f_amp = 1.0e6;
        let w = 2.0 * std::f64::consts::PI * F0;
        // Run for ~8 envelope time constants.
        let steps = (8.0 * r.envelope_tau() / DT) as usize;
        let mut peak = 0.0f64;
        for k in 0..steps {
            let force = f_amp * (w * k as f64 * DT).cos();
            r.step(force, DT);
            if k > steps - (1.0 / F0 / DT) as usize {
                peak = peak.max(r.state().x.abs());
            }
        }
        let expect = r.resonant_gain(f_amp);
        assert!(
            (peak - expect).abs() / expect < 0.03,
            "amplitude {peak} vs {expect}"
        );
    }

    #[test]
    fn off_resonance_drive_is_attenuated() {
        let q = 500.0;
        let mut r = Resonator::new(F0, q);
        let f_amp = 1.0e6;
        // Drive 5 % off resonance: response should be far below Q·gain.
        let w = 2.0 * std::f64::consts::PI * F0 * 1.05;
        let steps = (8.0 * r.envelope_tau() / DT) as usize;
        let mut peak = 0.0f64;
        for k in 0..steps {
            let force = f_amp * (w * k as f64 * DT).cos();
            r.step(force, DT);
            if k > steps * 3 / 4 {
                peak = peak.max(r.state().x.abs());
            }
        }
        assert!(
            peak < 0.05 * r.resonant_gain(f_amp),
            "off-resonance response too large: {peak}"
        );
    }

    #[test]
    fn energy_conserved_without_damping_proxy() {
        // Very high Q: total energy decays by < 0.2 % over 10 periods.
        let mut r = Resonator::new(F0, 1.0e6);
        r.state = ModeState { x: 1.0, v: 0.0 };
        let w2 = (2.0 * std::f64::consts::PI * F0).powi(2);
        let e0 = w2 * 1.0;
        let steps = (10.0 / F0 / DT) as usize;
        for _ in 0..steps {
            r.step(0.0, DT);
        }
        let s = r.state();
        let e1 = w2 * s.x * s.x + s.v * s.v;
        assert!((e1 - e0).abs() / e0 < 2e-3, "energy drifted: {e0} -> {e1}");
    }

    #[test]
    fn retune_changes_frequency() {
        let mut r = Resonator::new(F0, 100.0);
        r.retune(F0 * 1.01, 120.0);
        assert!((r.frequency() - F0 * 1.01).abs() < 1e-9);
        assert_eq!(r.q(), 120.0);
    }

    #[test]
    fn reset_returns_to_rest() {
        let mut r = Resonator::new(F0, 10.0);
        r.step(1.0e3, DT);
        r.reset();
        assert_eq!(r.state(), ModeState::default());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_frequency() {
        let _ = Resonator::new(0.0, 10.0);
    }

    #[test]
    fn envelope_tau_formula() {
        let r = Resonator::new(F0, 5000.0);
        let expect = 2.0 * 5000.0 / (2.0 * std::f64::consts::PI * F0);
        assert!((r.envelope_tau() - expect).abs() < 1e-12);
    }

    // ----- exact-propagator validation ---------------------------------

    /// Analytic free decay from `x(0)=x0, v(0)=0` (underdamped).
    fn analytic_free_decay(omega: f64, q: f64, x0: f64, t: f64) -> f64 {
        let zeta = 1.0 / (2.0 * q);
        let alpha = zeta * omega;
        let wd = omega * (1.0 - zeta * zeta).sqrt();
        x0 * (-alpha * t).exp() * ((wd * t).cos() + alpha / wd * (wd * t).sin())
    }

    /// Analytic step response toward `x_ss = f/ω²` from rest.
    fn analytic_step_response(omega: f64, q: f64, f: f64, t: f64) -> f64 {
        let x_ss = f / (omega * omega);
        x_ss - analytic_free_decay(omega, q, x_ss, t)
    }

    #[test]
    fn propagator_free_decay_is_exact_at_large_dt() {
        // One solver step per *carrier period* — 16× coarser than the RK4
        // configuration ever ran — still matches the analytic envelope to
        // ~1e-12 because exp(A·dt) is exact for free decay.
        let q = 150.0;
        let mut r = Resonator::new(F0, q);
        r.state = ModeState { x: 1.0, v: 0.0 };
        let dt = 1.0 / F0 / 4.0; // quarter period
        let steps = 2000;
        for _ in 0..steps {
            r.step(0.0, dt);
        }
        let t = steps as f64 * dt;
        let omega = 2.0 * std::f64::consts::PI * F0;
        let expect = analytic_free_decay(omega, q, 1.0, t);
        assert!(
            (r.state().x - expect).abs() < 1e-9,
            "x {} vs analytic {expect}",
            r.state().x
        );
    }

    #[test]
    fn propagator_step_response_is_exact() {
        let q = 30.0;
        let f = 5.0e5;
        let mut r = Resonator::new(F0, q);
        let dt = 2.0e-6;
        let steps = 5000;
        for _ in 0..steps {
            r.step(f, dt);
        }
        let omega = 2.0 * std::f64::consts::PI * F0;
        let expect = analytic_step_response(omega, q, f, steps as f64 * dt);
        let scale = f / (omega * omega);
        assert!(
            (r.state().x - expect).abs() / scale < 1e-9,
            "x {} vs analytic {expect}",
            r.state().x
        );
    }

    #[test]
    fn propagator_beats_rk4_against_analytic_decay() {
        // At the platform's own step size the exact propagator must be at
        // least as close to the analytic solution as RK4 (it is exact; RK4
        // carries an O(dt⁵) per-step truncation error).
        let q = 80.0;
        let omega = 2.0 * std::f64::consts::PI * F0;
        let dt = 4.0e-6; // the 250 kHz DSP tick
        let steps = 10_000;
        let mut zoh = Resonator::new(F0, q);
        let mut rk4 = Resonator::new(F0, q);
        zoh.state = ModeState { x: 1.0, v: 0.0 };
        rk4.state = ModeState { x: 1.0, v: 0.0 };
        for _ in 0..steps {
            zoh.step(0.0, dt);
            rk4.step_rk4(0.0, dt);
        }
        let expect = analytic_free_decay(omega, q, 1.0, steps as f64 * dt);
        let err_zoh = (zoh.state().x - expect).abs();
        let err_rk4 = (rk4.state().x - expect).abs();
        assert!(
            err_zoh <= err_rk4 + 1e-15,
            "ZOH err {err_zoh} worse than RK4 err {err_rk4}"
        );
        assert!(err_zoh < 1e-9, "ZOH not exact: {err_zoh}");
    }

    #[test]
    fn propagator_matches_rk4_at_small_dt() {
        // Convergence cross-check: at a tiny step the two integrators are
        // interchangeable on a driven trajectory.
        let dt = 1.0e-7;
        let mut zoh = Resonator::new(F0, 60.0);
        let mut rk4 = Resonator::new(F0, 60.0);
        let w = 2.0 * std::f64::consts::PI * F0;
        for k in 0..20_000 {
            let force = 1.0e6 * (w * k as f64 * dt).cos();
            zoh.step(force, dt);
            rk4.step_rk4(force, dt);
        }
        let dx = (zoh.state().x - rk4.state().x).abs();
        // Scale by the steady-state resonant amplitude, not the (possibly
        // zero-crossing) instantaneous displacement.
        let scale = zoh.resonant_gain(1.0e6);
        assert!(dx / scale < 1e-6, "ZOH/RK4 diverged: {dx} (scale {scale})");
    }

    #[test]
    fn retune_invalidates_cached_propagator() {
        // Regression: a stale exp(A·dt) after retune would keep integrating
        // the old resonance. Stepping a retuned resonator must match a
        // fresh resonator built at the new tuning.
        let mut r = Resonator::new(F0, 100.0);
        r.step(1.0e5, DT); // builds and caches the propagator
        r.retune(F0 * 1.05, 140.0);
        let mut fresh = Resonator::new(F0 * 1.05, 140.0);
        fresh.state = r.state();
        for _ in 0..1000 {
            r.step(2.0e5, DT);
            fresh.step(2.0e5, DT);
        }
        assert_eq!(r.state(), fresh.state(), "stale propagator after retune");
    }

    #[test]
    fn dt_change_rebuilds_propagator() {
        // Alternating step sizes must agree with a single-dt reference at
        // the points where their time grids coincide.
        let mut r = Resonator::new(F0, 50.0);
        let mut reference = Resonator::new(F0, 50.0);
        r.state = ModeState { x: 0.5, v: 0.0 };
        reference.state = ModeState { x: 0.5, v: 0.0 };
        for _ in 0..100 {
            r.step(0.0, DT);
            r.step(0.0, 2.0 * DT);
            reference.step(0.0, DT);
            reference.step(0.0, DT);
            reference.step(0.0, DT);
        }
        assert!(
            (r.state().x - reference.state().x).abs() < 1e-12,
            "mixed-dt stepping diverged: {} vs {}",
            r.state().x,
            reference.state().x
        );
    }

    #[test]
    fn lanes_match_scalar_bit_for_bit() {
        // SoA lockstep stepping must produce the exact bits of stepping each
        // resonator alone — the fleet path's correctness contract.
        for n in [1usize, 2, 5, 8, 16] {
            let mut scalars: Vec<Resonator> = (0..n)
                .map(|i| {
                    let mut r =
                        Resonator::new(F0 * (1.0 + 0.003 * i as f64), 50.0 + 7.0 * i as f64);
                    r.state = ModeState {
                        x: 1.0e-7 * i as f64,
                        v: -2.0e-4 * i as f64,
                    };
                    r
                })
                .collect();
            let mut lanes = ResonatorLanes::extract(scalars.iter(), DT);
            let mut force = vec![0.0; n];
            let w = 2.0 * std::f64::consts::PI * F0;
            for k in 0..5000u64 {
                for (l, f) in force.iter_mut().enumerate() {
                    *f = 1.0e5 * (w * k as f64 * DT).cos() * (1.0 + 0.1 * l as f64);
                }
                lanes.step(&force);
                for (l, r) in scalars.iter_mut().enumerate() {
                    r.step(force[l], DT);
                }
                for (l, r) in scalars.iter().enumerate() {
                    assert_eq!(r.state().x.to_bits(), lanes.x()[l].to_bits(), "x lane {l}");
                    assert_eq!(r.state().v.to_bits(), lanes.v()[l].to_bits(), "v lane {l}");
                }
            }
            // Restore round-trips and the scalar continues identically.
            let mut restored = scalars.clone();
            lanes.restore(restored.iter_mut());
            for (a, b) in scalars.iter_mut().zip(restored.iter_mut()) {
                a.step(3.3e4, DT);
                b.step(3.3e4, DT);
                assert_eq!(a.state(), b.state());
            }
        }
    }

    #[test]
    fn propagator_handles_overdamped_and_critical_q() {
        // The hyperbolic branch: an overdamped mode must relax toward the
        // step target without oscillating or blowing up.
        for q in [0.1, 0.3, 0.5] {
            let mut r = Resonator::new(F0, q);
            let f = 1.0e6;
            let omega = 2.0 * std::f64::consts::PI * F0;
            let x_ss = f / (omega * omega);
            for _ in 0..200_000 {
                r.step(f, DT);
            }
            assert!(
                (r.state().x - x_ss).abs() / x_ss < 1e-6,
                "Q={q}: settled at {} vs {x_ss}",
                r.state().x
            );
        }
    }
}
