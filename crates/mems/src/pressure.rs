//! Automotive pressure/temperature front-ends (MAP / IAT style).
//!
//! Two ratiometric-divider front-ends in the mould of production engine
//! management firmware (tfi-computer's `sensors.h`, the dbus-adc tank/temp
//! channels):
//!
//! - [`MapSensorFrontEnd`] — a conditioned manifold-absolute-pressure
//!   transmitter: linear ratiometric output spanning 30–90 % of the supply
//!   rail over the pressure range, [`Conditioning::Linear`] inversion, and
//!   the full dbus-adc not-connected / short / reverse-polarity bands
//!   (the valid span deliberately clears the protection-diode band).
//! - [`IatThermistorFrontEnd`] — a raw NTC thermistor in a pull-up
//!   divider: exponential beta-model resistance, inverted by a
//!   [`Conditioning::Table`] of breakpoints generated from the same model
//!   (so the table's piecewise-linear residual is a *real* conditioning
//!   error, visible in the datasheet linearity column). Its valid span
//!   crosses the diode band, so — as on real NTC channels — the
//!   reverse-polarity check is disabled.
//!
//! Both implement [`SensorFrontEnd`], so the generic channel conditions
//! them with the same PGA/ADC/decimator portfolio as every other sensor.

use crate::frontend::{Conditioning, Excitation, PlausibilityBands, SensorFrontEnd};
use ascp_sim::noise::WhiteNoise;
use ascp_sim::snapshot::{fnv1a64, SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, Volts};

/// Conditioned MAP transmitter: ratio `0.3 + 0.6·(p − min)/(max − min)`
/// of the excitation rail, plus span tempco and white output noise.
#[derive(Debug, Clone)]
pub struct MapSensorFrontEnd {
    min_kpa: f64,
    max_kpa: f64,
    rail_v: f64,
    pressure_kpa: f64,
    temperature: Celsius,
    /// Span drift per kelvin (ratio of span).
    span_tempco: f64,
    noise: WhiteNoise,
    seed: u64,
}

/// Bottom of the MAP transmitter's output span as a rail ratio.
const MAP_RATIO_LO: f64 = 0.3;
/// Output span as a rail ratio.
const MAP_RATIO_SPAN: f64 = 0.6;

impl MapSensorFrontEnd {
    /// Creates a transmitter spanning `min_kpa..max_kpa` on a `rail_v`
    /// supply (typ. `20.0..300.0` kPa on 5 V).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or the rail is not positive.
    #[must_use]
    pub fn new(min_kpa: f64, max_kpa: f64, rail_v: f64, seed: u64) -> Self {
        assert!(max_kpa > min_kpa, "empty pressure range");
        assert!(rail_v > 0.0, "rail must be positive");
        Self {
            min_kpa,
            max_kpa,
            rail_v,
            pressure_kpa: min_kpa,
            temperature: Celsius(25.0),
            span_tempco: 8.0e-5,
            noise: WhiteNoise::new(150.0e-6, seed),
            seed,
        }
    }

    /// The 20–300 kPa / 5 V automotive manifold sensor.
    #[must_use]
    pub fn automotive(seed: u64) -> Self {
        Self::new(20.0, 300.0, 5.0, seed)
    }
}

impl SensorFrontEnd for MapSensorFrontEnd {
    fn kind(&self) -> &'static str {
        "map-pressure"
    }

    fn unit(&self) -> &'static str {
        "kPa"
    }

    fn range(&self) -> (f64, f64) {
        (self.min_kpa, self.max_kpa)
    }

    fn excitation(&self) -> Excitation {
        Excitation::Dc { volts: self.rail_v }
    }

    fn conditioning(&self) -> Conditioning {
        let scale = (self.max_kpa - self.min_kpa) / MAP_RATIO_SPAN;
        Conditioning::Linear {
            scale,
            offset: self.min_kpa - MAP_RATIO_LO * scale,
        }
    }

    fn plausibility(&self) -> PlausibilityBands {
        PlausibilityBands::ratiometric_default()
    }

    fn set_stimulus(&mut self, value: f64) {
        self.pressure_kpa = value.clamp(self.min_kpa, self.max_kpa);
    }

    fn stimulus(&self) -> f64 {
        self.pressure_kpa
    }

    fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    fn sense(&mut self, excitation: Volts, _dt: f64) -> Volts {
        let span_drift = 1.0 + self.span_tempco * (self.temperature.0 - 25.0);
        let u = (self.pressure_kpa - self.min_kpa) / (self.max_kpa - self.min_kpa);
        let ratio = MAP_RATIO_LO + MAP_RATIO_SPAN * u * span_drift;
        // The transmitter is ratiometric: its output scales with the
        // actual (possibly drooped) excitation, not the nominal rail.
        Volts(excitation.0 * ratio + self.noise.sample())
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.pressure_kpa);
        w.put_f64(self.temperature.0);
        self.noise.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.pressure_kpa = r.take_f64()?;
        self.temperature = Celsius(r.take_f64()?);
        self.noise.load_state(r)
    }

    fn config_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u8_slice(b"map-pressure/v1");
        w.put_f64(self.min_kpa);
        w.put_f64(self.max_kpa);
        w.put_f64(self.rail_v);
        w.put_f64(self.span_tempco);
        w.put_u64(self.seed);
        fnv1a64(w.bytes())
    }
}

/// Raw NTC intake-air-temperature thermistor in a pull-up divider:
/// `ratio = R_ntc / (R_ntc + R_pullup)` with the beta resistance model
/// `R(T) = R25 · exp(B · (1/T − 1/T25))`.
#[derive(Debug, Clone)]
pub struct IatThermistorFrontEnd {
    r25_ohm: f64,
    beta_k: f64,
    pullup_ohm: f64,
    rail_v: f64,
    min_c: f64,
    max_c: f64,
    measured: Celsius,
    noise: WhiteNoise,
    seed: u64,
}

impl IatThermistorFrontEnd {
    /// Creates a thermistor channel (`r25_ohm` at 25 °C, beta `beta_k`,
    /// divider pull-up `pullup_ohm` to the `rail_v` rail) reporting over
    /// `min_c..max_c`.
    ///
    /// # Panics
    ///
    /// Panics if any electrical parameter is not positive or the
    /// temperature range is empty.
    #[must_use]
    pub fn new(
        r25_ohm: f64,
        beta_k: f64,
        pullup_ohm: f64,
        rail_v: f64,
        min_c: f64,
        max_c: f64,
        seed: u64,
    ) -> Self {
        assert!(
            r25_ohm > 0.0 && beta_k > 0.0 && pullup_ohm > 0.0 && rail_v > 0.0,
            "electrical parameters must be positive"
        );
        assert!(max_c > min_c, "empty temperature range");
        Self {
            r25_ohm,
            beta_k,
            pullup_ohm,
            rail_v,
            min_c,
            max_c,
            measured: Celsius(25.0),
            noise: WhiteNoise::new(120.0e-6, seed),
            seed,
        }
    }

    /// The common 10 kΩ / B=3380 automotive IAT element with a 10 kΩ
    /// pull-up on 5 V, reporting −30…120 °C.
    #[must_use]
    pub fn automotive(seed: u64) -> Self {
        Self::new(10_000.0, 3380.0, 10_000.0, 5.0, -30.0, 120.0, seed)
    }

    /// Beta-model resistance at `t`.
    #[must_use]
    pub fn resistance(&self, t: Celsius) -> f64 {
        let tk = t.0 + 273.15;
        self.r25_ohm * (self.beta_k * (1.0 / tk - 1.0 / 298.15)).exp()
    }

    fn divider_ratio(&self, t: Celsius) -> f64 {
        let r = self.resistance(t);
        r / (r + self.pullup_ohm)
    }
}

impl SensorFrontEnd for IatThermistorFrontEnd {
    fn kind(&self) -> &'static str {
        "iat-thermistor"
    }

    fn unit(&self) -> &'static str {
        "degC"
    }

    fn range(&self) -> (f64, f64) {
        (self.min_c, self.max_c)
    }

    fn excitation(&self) -> Excitation {
        Excitation::Dc { volts: self.rail_v }
    }

    fn conditioning(&self) -> Conditioning {
        // Breakpoints every 10 K from the same beta model, hot end first
        // so the table is sorted by ratio ascending. The piecewise-linear
        // inversion error between breakpoints is the channel's real
        // conditioning residual.
        let mut points = Vec::new();
        let mut t = self.max_c;
        while t >= self.min_c - 1.0e-9 {
            points.push((self.divider_ratio(Celsius(t)), t));
            t -= 10.0;
        }
        Conditioning::Table { points }
    }

    fn plausibility(&self) -> PlausibilityBands {
        // The NTC's valid span crosses the protection-diode band (a warm
        // intake reads ~0.2 of the rail), so reverse polarity is
        // electrically indistinguishable and the check is disabled.
        PlausibilityBands::Ratiometric {
            short_below: 0.04,
            reverse: None,
            open_above: 0.96,
        }
    }

    fn set_stimulus(&mut self, value: f64) {
        self.measured = Celsius(value.clamp(self.min_c, self.max_c));
    }

    fn stimulus(&self) -> f64 {
        self.measured.0
    }

    fn set_temperature(&mut self, t: Celsius) {
        // The thermistor *is* the thermometer: ambient equals stimulus.
        self.set_stimulus(t.0);
    }

    fn sense(&mut self, excitation: Volts, _dt: f64) -> Volts {
        let ratio = self.divider_ratio(self.measured);
        Volts(excitation.0 * ratio + self.noise.sample())
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.measured.0);
        self.noise.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.measured = Celsius(r.take_f64()?);
        self.noise.load_state(r)
    }

    fn config_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u8_slice(b"iat-thermistor/v1");
        w.put_f64(self.r25_ohm);
        w.put_f64(self.beta_k);
        w.put_f64(self.pullup_ohm);
        w.put_f64(self.rail_v);
        w.put_f64(self.min_c);
        w.put_f64(self.max_c);
        w.put_u64(self.seed);
        fnv1a64(w.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_transfer_is_linear_and_inverts() {
        let mut fe = MapSensorFrontEnd::automotive(1);
        let cond = fe.conditioning();
        for p in [20.0, 100.0, 200.0, 300.0] {
            fe.set_stimulus(p);
            let v: f64 = (0..400).map(|_| fe.sense(Volts(5.0), 1e-5).0).sum::<f64>() / 400.0;
            let eu = cond.apply(v / 5.0);
            assert!((eu - p).abs() < 1.0, "MAP inversion off at {p} kPa: {eu}");
        }
    }

    #[test]
    fn map_valid_span_clears_diode_band() {
        // Bottom of span must sit above the reverse band top (0.25), top
        // below the open threshold (0.96) — measured on the instance so
        // the assertion tracks the deployed transfer, not the constants.
        let mut fe = MapSensorFrontEnd::automotive(1);
        fe.set_stimulus(20.0);
        let lo = (0..400).map(|_| fe.sense(Volts(5.0), 1e-5).0).sum::<f64>() / 400.0 / 5.0;
        fe.set_stimulus(300.0);
        let hi = (0..400).map(|_| fe.sense(Volts(5.0), 1e-5).0).sum::<f64>() / 400.0 / 5.0;
        assert!(lo > 0.25, "span bottom {lo} inside the diode band");
        assert!(hi < 0.96, "span top {hi} above the open threshold");
    }

    #[test]
    fn iat_table_inverts_beta_model() {
        let mut fe = IatThermistorFrontEnd::automotive(2);
        let cond = fe.conditioning();
        for t in [-30.0, -10.0, 25.0, 60.0, 120.0] {
            fe.set_stimulus(t);
            let v: f64 = (0..400).map(|_| fe.sense(Volts(5.0), 1e-5).0).sum::<f64>() / 400.0;
            let eu = cond.apply(v / 5.0);
            assert!((eu - t).abs() < 1.5, "IAT inversion off at {t} C: {eu}");
        }
    }

    #[test]
    fn iat_ratio_stays_inside_wire_bands() {
        let fe = IatThermistorFrontEnd::automotive(2);
        let lo = fe.divider_ratio(Celsius(120.0));
        let hi = fe.divider_ratio(Celsius(-30.0));
        assert!(lo > 0.04, "hot end would read as a short: {lo}");
        assert!(hi < 0.96, "cold end would read as open: {hi}");
    }

    #[test]
    fn digests_track_configuration() {
        let a = MapSensorFrontEnd::automotive(1);
        let b = MapSensorFrontEnd::automotive(1);
        let c = MapSensorFrontEnd::new(20.0, 400.0, 5.0, 1);
        assert_eq!(a.config_digest(), b.config_digest());
        assert_ne!(a.config_digest(), c.config_digest());
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let mut fe = IatThermistorFrontEnd::automotive(7);
        fe.set_stimulus(80.0);
        for _ in 0..13 {
            let _ = fe.sense(Volts(5.0), 1e-5);
        }
        let mut w = StateWriter::new();
        fe.save_state(&mut w);
        let mut twin = IatThermistorFrontEnd::automotive(7);
        let bytes = w.bytes().to_vec();
        let mut r = StateReader::new(&bytes);
        twin.load_state(&mut r).unwrap();
        for _ in 0..50 {
            assert_eq!(fe.sense(Volts(5.0), 1e-5).0, twin.sense(Volts(5.0), 1e-5).0);
        }
    }
}
