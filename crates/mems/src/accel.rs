//! Capacitive MEMS accelerometer front-end on the resonator kernel.
//!
//! The proof mass is the same damped-harmonic-oscillator kernel
//! ([`crate::resonator::Resonator`], exact ZOH propagator) that powers the
//! gyro's drive and sense modes — the paper's IP-reuse claim applied to the
//! sensor model itself. Acceleration deflects the mass; a differential
//! capacitive half-bridge converts deflection to a carrier-amplitude
//! modulation, which the generic channel demodulates coherently with the
//! gyro chain's NCO + demodulator IPs.
//!
//! The bridge carries a deliberate *pilot imbalance*
//! ([`SensorFrontEnd::carrier_pilot`]): at rest the demodulated in-phase
//! output is a small positive constant rather than zero, so the channel
//! supervisor can distinguish a live harness (pilot present), a dead one
//! (carrier gone: short), an open one (node at the pull-up rail) and a
//! reversed connector (pilot sign flipped) — the dbus-adc status taxonomy
//! carried over to an AC-excited sensor.

use crate::frontend::{Conditioning, Excitation, PlausibilityBands, SensorFrontEnd};
use crate::resonator::Resonator;
use ascp_sim::noise::WhiteNoise;
use ascp_sim::snapshot::{fnv1a64, SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, Volts};

/// Standard gravity, m/s² per g.
const G0: f64 = 9.806_65;
/// Full-scale deflection as a fraction of the capacitive gap.
const FS_GAP_FRACTION: f64 = 0.3;
/// Pilot imbalance as a ratio of the carrier amplitude. Must exceed the
/// full-scale deflection ratio ([`FS_GAP_FRACTION`]) so the demodulated
/// ratio stays positive over the whole measurement range — a negative
/// ratio is reserved for the reverse-polarity plausibility check.
const PILOT_RATIO: f64 = 0.4;

/// Open-loop capacitive accelerometer: proof-mass resonator, differential
/// half-bridge pickoff, carrier excitation.
#[derive(Debug, Clone)]
pub struct CapacitiveAccelFrontEnd {
    full_scale_g: f64,
    f0_hz: f64,
    q: f64,
    carrier_hz: f64,
    amplitude_v: f64,
    /// Capacitive gap in metres, sized so full scale deflects
    /// [`FS_GAP_FRACTION`] of it.
    gap_m: f64,
    accel_g: f64,
    temperature: Celsius,
    /// Zero-g offset drift, g per kelvin.
    offset_tempco_g: f64,
    proof_mass: Resonator,
    /// Brownian force noise, m/s² per sample.
    noise: WhiteNoise,
    seed: u64,
}

impl CapacitiveAccelFrontEnd {
    /// Creates an accelerometer with range ±`full_scale_g`, proof-mass
    /// resonance `f0_hz` and quality factor `q` (gas-damped, typ. < 1).
    ///
    /// # Panics
    ///
    /// Panics if `full_scale_g`, `f0_hz` or `q` is not positive.
    #[must_use]
    pub fn new(full_scale_g: f64, f0_hz: f64, q: f64, seed: u64) -> Self {
        assert!(full_scale_g > 0.0, "full scale must be positive");
        let omega = 2.0 * std::f64::consts::PI * f0_hz;
        let x_fs = full_scale_g * G0 / (omega * omega);
        Self {
            full_scale_g,
            f0_hz,
            q,
            carrier_hz: 10_000.0,
            amplitude_v: 2.5,
            gap_m: x_fs / FS_GAP_FRACTION,
            accel_g: 0.0,
            temperature: Celsius(25.0),
            offset_tempco_g: 2.0e-3,
            proof_mass: Resonator::new(f0_hz, q),
            // ~200 µg/√Hz Brownian floor folded to a 100 kHz sample rate.
            noise: WhiteNoise::new(200.0e-6 * G0 * (50_000.0f64).sqrt(), seed),
            seed,
        }
    }

    /// The ±50 g / 5.5 kHz airbag-class crash sensor.
    #[must_use]
    pub fn crash_50g(seed: u64) -> Self {
        Self::new(50.0, 5_500.0, 0.7, seed)
    }

    /// Deflection-to-ratio sensitivity per g (fraction of gap).
    fn ratio_per_g(&self) -> f64 {
        FS_GAP_FRACTION / self.full_scale_g
    }
}

impl SensorFrontEnd for CapacitiveAccelFrontEnd {
    fn kind(&self) -> &'static str {
        "capacitive-accel"
    }

    fn unit(&self) -> &'static str {
        "g"
    }

    fn range(&self) -> (f64, f64) {
        (-self.full_scale_g, self.full_scale_g)
    }

    fn excitation(&self) -> Excitation {
        Excitation::Carrier {
            freq_hz: self.carrier_hz,
            amplitude_v: self.amplitude_v,
        }
    }

    fn conditioning(&self) -> Conditioning {
        // The demodulated ratio is pilot + ratio_per_g · a.
        let scale = 1.0 / self.ratio_per_g();
        Conditioning::Linear {
            scale,
            offset: -PILOT_RATIO * scale,
        }
    }

    fn plausibility(&self) -> PlausibilityBands {
        PlausibilityBands::Carrier {
            open_above: 0.5,
            ac_floor: 0.01,
            reverse_below: -0.02,
        }
    }

    fn set_stimulus(&mut self, value: f64) {
        self.accel_g = value.clamp(-self.full_scale_g, self.full_scale_g);
    }

    fn stimulus(&self) -> f64 {
        self.accel_g
    }

    fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    fn carrier_pilot(&self) -> f64 {
        PILOT_RATIO
    }

    fn sense(&mut self, excitation: Volts, dt: f64) -> Volts {
        let offset_g = self.offset_tempco_g * (self.temperature.0 - 25.0);
        let force = (self.accel_g + offset_g) * G0 + self.noise.sample();
        self.proof_mass.step(force, dt);
        let ratio = PILOT_RATIO + self.proof_mass.state().x / self.gap_m;
        Volts(excitation.0 * ratio)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.accel_g);
        w.put_f64(self.temperature.0);
        self.proof_mass.save_state(w);
        self.noise.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.accel_g = r.take_f64()?;
        self.temperature = Celsius(r.take_f64()?);
        self.proof_mass.load_state(r)?;
        self.noise.load_state(r)
    }

    fn config_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u8_slice(b"capacitive-accel/v1");
        w.put_f64(self.full_scale_g);
        w.put_f64(self.f0_hz);
        w.put_f64(self.q);
        w.put_f64(self.carrier_hz);
        w.put_f64(self.amplitude_v);
        w.put_f64(self.offset_tempco_g);
        w.put_u64(self.seed);
        fnv1a64(w.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mean demodulation-free pickoff ratio over `n` carrier-peak samples.
    fn settled_ratio(fe: &mut CapacitiveAccelFrontEnd, n: usize) -> f64 {
        let dt = 1.0e-5;
        // Settle the proof mass (several time constants at Q=0.7/5.5 kHz).
        for _ in 0..2000 {
            let _ = fe.sense(Volts(1.0), dt);
        }
        (0..n).map(|_| fe.sense(Volts(1.0), dt).0).sum::<f64>() / n as f64
    }

    #[test]
    fn deflection_tracks_acceleration() {
        let mut fe = CapacitiveAccelFrontEnd::crash_50g(5);
        fe.set_stimulus(0.0);
        let r0 = settled_ratio(&mut fe, 2000);
        fe.set_stimulus(25.0);
        let r25 = settled_ratio(&mut fe, 2000);
        let per_g = (r25 - r0) / 25.0;
        let expect = fe.ratio_per_g();
        assert!(
            (per_g - expect).abs() < 0.1 * expect,
            "sensitivity off: {per_g} vs {expect}"
        );
    }

    #[test]
    fn pilot_keeps_rest_output_positive() {
        let mut fe = CapacitiveAccelFrontEnd::crash_50g(5);
        fe.set_stimulus(0.0);
        let r = settled_ratio(&mut fe, 2000);
        assert!((r - PILOT_RATIO).abs() < 0.01, "rest ratio {r}");
    }

    #[test]
    fn conditioning_recovers_g() {
        let mut fe = CapacitiveAccelFrontEnd::crash_50g(5);
        let cond = fe.conditioning();
        fe.set_stimulus(-20.0);
        let r = settled_ratio(&mut fe, 4000);
        let eu = cond.apply(r);
        assert!((eu - (-20.0)).abs() < 1.0, "recovered {eu} g");
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let mut fe = CapacitiveAccelFrontEnd::crash_50g(9);
        fe.set_stimulus(10.0);
        for _ in 0..500 {
            let _ = fe.sense(Volts(1.0), 1.0e-5);
        }
        let mut w = StateWriter::new();
        fe.save_state(&mut w);
        let mut twin = CapacitiveAccelFrontEnd::crash_50g(9);
        let bytes = w.bytes().to_vec();
        let mut r = StateReader::new(&bytes);
        twin.load_state(&mut r).unwrap();
        for _ in 0..100 {
            assert_eq!(
                fe.sense(Volts(1.0), 1.0e-5).0,
                twin.sense(Volts(1.0), 1.0e-5).0
            );
        }
    }
}
