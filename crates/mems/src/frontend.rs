//! The generic sensor front-end contract — *one platform, many sensors*.
//!
//! The paper's central claim is that a single conditioning platform (AFE +
//! DSP + monitor CPU drawn from an IP portfolio) can be retargeted across
//! "capacitive, resistive, inductive, etc." automotive sensors (§1, §3).
//! [`SensorFrontEnd`] is that claim as a trait: a front-end declares its
//! *drive/sense dynamics* ([`SensorFrontEnd::sense`]), its *excitation
//! needs* ([`Excitation`]), its *conditioning recipe* ([`Conditioning`]),
//! its *plausibility bands* ([`PlausibilityBands`]) and its *wire-fault
//! electrical signatures* ([`SensorFrontEnd::wire_fault_node`]), and the
//! platform channel in `ascp_core::frontend` composes the rest — PGA, SAR
//! ADC, decimation or synchronous demodulation, compensation, supervisor
//! checks and checkpointing — from the shared portfolio.
//!
//! Every front-end also carries the platform's two persistence
//! obligations: bit-exact [`SensorFrontEnd::save_state`] /
//! [`SensorFrontEnd::load_state`] snapshots of its dynamic state, and a
//! [`SensorFrontEnd::config_digest`] over its construction parameters so a
//! checkpoint can refuse to restore into a differently-built channel.
//!
//! # Implementing a minimal custom front-end
//!
//! A DC strain-gauge bridge in ~40 lines — linear conditioning, default
//! single-ended plausibility bands, no internal dynamics:
//!
//! ```
//! use ascp_mems::frontend::{Conditioning, Excitation, PlausibilityBands, SensorFrontEnd};
//! use ascp_sim::snapshot::{fnv1a64, SnapshotError, StateReader, StateWriter};
//! use ascp_sim::units::{Celsius, Volts};
//!
//! struct StrainGauge {
//!     microstrain: f64,
//! }
//!
//! impl SensorFrontEnd for StrainGauge {
//!     fn kind(&self) -> &'static str {
//!         "strain-gauge"
//!     }
//!     fn unit(&self) -> &'static str {
//!         "ue"
//!     }
//!     fn range(&self) -> (f64, f64) {
//!         (0.0, 1000.0)
//!     }
//!     fn excitation(&self) -> Excitation {
//!         Excitation::Dc { volts: 5.0 }
//!     }
//!     fn conditioning(&self) -> Conditioning {
//!         // ratio = 5e-4 per 1000 ue -> eu = ratio / 5e-7.
//!         Conditioning::Linear {
//!             scale: 2.0e6,
//!             offset: -1.0e6 * 0.3,
//!         }
//!     }
//!     fn plausibility(&self) -> PlausibilityBands {
//!         PlausibilityBands::ratiometric_default()
//!     }
//!     fn set_stimulus(&mut self, value: f64) {
//!         self.microstrain = value.clamp(0.0, 1000.0);
//!     }
//!     fn stimulus(&self) -> f64 {
//!         self.microstrain
//!     }
//!     fn set_temperature(&mut self, _t: Celsius) {}
//!     fn sense(&mut self, excitation: Volts, _dt: f64) -> Volts {
//!         Volts(excitation.0 * (0.15 + 5.0e-7 * self.microstrain))
//!     }
//!     fn save_state(&self, w: &mut StateWriter) {
//!         w.put_f64(self.microstrain);
//!     }
//!     fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
//!         self.microstrain = r.take_f64()?;
//!         Ok(())
//!     }
//!     fn config_digest(&self) -> u64 {
//!         fnv1a64(b"strain-gauge/v1")
//!     }
//! }
//!
//! let mut fe = StrainGauge { microstrain: 0.0 };
//! fe.set_stimulus(500.0);
//! let v = fe.sense(Volts(5.0), 1.0e-5);
//! assert!(v.0 > 0.75);
//! ```

use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, Volts};

/// The excitation a front-end needs from the platform's reference IP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Excitation {
    /// DC excitation (ratiometric dividers, bridges): the channel routes
    /// a buffered reference rail to the sensor.
    Dc {
        /// Nominal rail voltage.
        volts: f64,
    },
    /// AC carrier excitation (inductive/capacitive half-bridges): the
    /// channel drives the sensor from the NCO and demodulates coherently.
    Carrier {
        /// Carrier frequency in Hz.
        freq_hz: f64,
        /// Carrier amplitude in volts.
        amplitude_v: f64,
    },
}

impl Excitation {
    /// The rail/amplitude the node ratios are normalized against.
    #[must_use]
    pub fn rail(&self) -> f64 {
        match *self {
            Self::Dc { volts } => volts,
            Self::Carrier { amplitude_v, .. } => amplitude_v,
        }
    }
}

/// How a normalized node ratio becomes engineering units.
///
/// The two recipes mirror production automotive firmware (tfi-computer's
/// `sensors.h`): `Linear` for conditioned transmitters (MAP), `Table` for
/// raw nonlinear elements (NTC thermistors) where a breakpoint table
/// inverts the transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum Conditioning {
    /// `eu = scale * ratio + offset`.
    Linear {
        /// Engineering units per unit ratio.
        scale: f64,
        /// Engineering-unit offset.
        offset: f64,
    },
    /// Piecewise-linear breakpoint table of `(ratio, eu)` pairs, sorted by
    /// ratio ascending; evaluation clamps at the table ends.
    Table {
        /// Breakpoints as `(ratio, engineering units)`.
        points: Vec<(f64, f64)>,
    },
}

impl Conditioning {
    /// Applies the recipe to a normalized node ratio.
    ///
    /// # Panics
    ///
    /// Panics if a `Table` recipe has fewer than two breakpoints.
    #[must_use]
    pub fn apply(&self, ratio: f64) -> f64 {
        match self {
            Self::Linear { scale, offset } => scale * ratio + offset,
            Self::Table { points } => {
                assert!(points.len() >= 2, "conditioning table needs >= 2 points");
                let first = points[0];
                let last = points[points.len() - 1];
                if ratio <= first.0 {
                    return first.1;
                }
                if ratio >= last.0 {
                    return last.1;
                }
                for w in points.windows(2) {
                    let (x0, y0) = w[0];
                    let (x1, y1) = w[1];
                    if ratio <= x1 {
                        let u = (ratio - x0) / (x1 - x0);
                        return y0 + u * (y1 - y0);
                    }
                }
                last.1
            }
        }
    }

    /// Folds the recipe's parameters into a config digest.
    pub fn digest_into(&self, w: &mut StateWriter) {
        match self {
            Self::Linear { scale, offset } => {
                w.put_u8(0);
                w.put_f64(*scale);
                w.put_f64(*offset);
            }
            Self::Table { points } => {
                w.put_u8(1);
                w.put_u32(points.len() as u32);
                for &(x, y) in points {
                    w.put_f64(x);
                    w.put_f64(y);
                }
            }
        }
    }
}

/// A wire fault injected at the sensor harness.
///
/// These are the dbus-adc status taxonomy: the three harness failures a
/// production conditioning channel must distinguish from a valid reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Signal wire open: the monitor pull-up drags the node to the rail.
    NotConnected,
    /// Signal wire shorted to ground.
    ShortToGround,
    /// Connector mated reverse: the protection diode pins the node (DC) or
    /// inverts the secondary (carrier).
    ReversePolarity,
}

impl WireFault {
    /// Stable label for telemetry and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::NotConnected => "wire_not_connected",
            Self::ShortToGround => "wire_short_to_ground",
            Self::ReversePolarity => "wire_reverse_polarity",
        }
    }
}

/// The channel supervisor's verdict on the sensor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// Node inside the valid band.
    Ok,
    /// Node at the pull-up rail: harness open.
    NotConnected,
    /// Node at ground with no signal: harness shorted.
    ShortToGround,
    /// Node in the protection-diode band / pilot inverted.
    ReversePolarity,
}

impl WireStatus {
    /// Stable label for supervisor transitions and coverage rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Ok => "normal",
            Self::NotConnected => "not_connected",
            Self::ShortToGround => "short_to_ground",
            Self::ReversePolarity => "reverse_polarity",
        }
    }
}

/// What the channel's monitor path observed over one supervision window,
/// all normalized by the excitation rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeObservation {
    /// Mean node voltage / rail.
    pub dc_ratio: f64,
    /// RMS of the node AC component / rail (carrier presence).
    pub ac_ratio: f64,
    /// Demodulated in-phase pilot / rail (carrier front-ends only; equals
    /// `dc_ratio` on DC paths).
    pub pilot_ratio: f64,
}

/// Where on the node the supervisor draws the not-connected / short /
/// reverse-polarity verdicts (dbus-adc style voltage-band classification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlausibilityBands {
    /// Single-ended ratiometric node with a pull-up to the rail: classify
    /// on the DC ratio alone.
    Ratiometric {
        /// `dc_ratio <= short_below` reads as a ground short.
        short_below: f64,
        /// `lo <= dc_ratio <= hi` reads as reverse polarity (the
        /// protection-diode band). `None` disables the check for sensors
        /// whose valid span crosses the band (e.g. NTC thermistors).
        reverse: Option<(f64, f64)>,
        /// `dc_ratio >= open_above` reads as not connected.
        open_above: f64,
    },
    /// Carrier-excited half-bridge: an open harness parks the node at the
    /// pull-up rail (DC), a short kills the carrier, a reversed connector
    /// flips the demodulated pilot sign.
    Carrier {
        /// `dc_ratio >= open_above` reads as not connected.
        open_above: f64,
        /// `ac_ratio < ac_floor` (with the node off the rail) reads as a
        /// ground short. Negative disables the check (null-capable
        /// sensors such as LVDTs lose their carrier at mid-stroke).
        ac_floor: f64,
        /// `pilot_ratio <= reverse_below` reads as reverse polarity.
        /// Below any reachable pilot (e.g. `-2.0`) disables the check.
        reverse_below: f64,
    },
}

impl PlausibilityBands {
    /// The dbus-adc single-ended defaults: short below 4 % of the rail,
    /// reverse polarity in the 15–25 % protection-diode band, open above
    /// 96 %.
    #[must_use]
    pub fn ratiometric_default() -> Self {
        Self::Ratiometric {
            short_below: 0.04,
            reverse: Some((0.15, 0.25)),
            open_above: 0.96,
        }
    }

    /// Classifies one supervision window's observation.
    #[must_use]
    pub fn classify(&self, obs: &NodeObservation) -> WireStatus {
        match *self {
            Self::Ratiometric {
                short_below,
                reverse,
                open_above,
            } => {
                if obs.dc_ratio >= open_above {
                    WireStatus::NotConnected
                } else if obs.dc_ratio <= short_below {
                    WireStatus::ShortToGround
                } else if let Some((lo, hi)) = reverse {
                    if obs.dc_ratio >= lo && obs.dc_ratio <= hi {
                        WireStatus::ReversePolarity
                    } else {
                        WireStatus::Ok
                    }
                } else {
                    WireStatus::Ok
                }
            }
            Self::Carrier {
                open_above,
                ac_floor,
                reverse_below,
            } => {
                if obs.dc_ratio >= open_above {
                    WireStatus::NotConnected
                } else if obs.ac_ratio < ac_floor {
                    WireStatus::ShortToGround
                } else if obs.pilot_ratio <= reverse_below {
                    WireStatus::ReversePolarity
                } else {
                    WireStatus::Ok
                }
            }
        }
    }

    /// Folds the band edges into a config digest.
    pub fn digest_into(&self, w: &mut StateWriter) {
        match *self {
            Self::Ratiometric {
                short_below,
                reverse,
                open_above,
            } => {
                w.put_u8(0);
                w.put_f64(short_below);
                w.put_opt_f64(reverse.map(|r| r.0));
                w.put_opt_f64(reverse.map(|r| r.1));
                w.put_f64(open_above);
            }
            Self::Carrier {
                open_above,
                ac_floor,
                reverse_below,
            } => {
                w.put_u8(1);
                w.put_f64(open_above);
                w.put_f64(ac_floor);
                w.put_f64(reverse_below);
            }
        }
    }
}

/// A sensor front-end the generic platform channel can condition.
///
/// Object-safe: channels hold `Box<dyn SensorFrontEnd>`. Implementations
/// must keep [`SensorFrontEnd::sense`] deterministic for a given seed and
/// call sequence — the campaign engine's bit-identical-at-any-thread-count
/// guarantee rests on it.
pub trait SensorFrontEnd {
    /// Human-readable sensor family (datasheet rows, telemetry).
    fn kind(&self) -> &'static str;

    /// Engineering unit of the conditioned output (`"kPa"`, `"degC"`,
    /// `"g"`, `"mm"`, ...).
    fn unit(&self) -> &'static str;

    /// Full-scale stimulus range `(min, max)` in engineering units.
    fn range(&self) -> (f64, f64);

    /// The excitation this front-end needs.
    fn excitation(&self) -> Excitation;

    /// The recipe converting a normalized node ratio to engineering units.
    fn conditioning(&self) -> Conditioning;

    /// Where the supervisor draws the wire-fault verdicts.
    fn plausibility(&self) -> PlausibilityBands;

    /// Sets the physical stimulus in engineering units.
    fn set_stimulus(&mut self, value: f64);

    /// Current stimulus in engineering units.
    fn stimulus(&self) -> f64;

    /// Ambient temperature at the transducer.
    fn set_temperature(&mut self, t: Celsius);

    /// Produces one node-voltage sample for the instantaneous excitation.
    /// `dt` is the sample period; front-ends with internal dynamics (proof
    /// masses) advance their state by it.
    fn sense(&mut self, excitation: Volts, dt: f64) -> Volts;

    /// Pilot imbalance of a carrier front-end as a ratio of the carrier
    /// amplitude: a deliberate bridge offset that keeps the demodulated
    /// in-phase output nonzero at rest, so the supervisor can tell a live
    /// harness from a dead one and a reversed connector from either.
    /// Zero (the default) for DC paths and pilot-free bridges.
    fn carrier_pilot(&self) -> f64 {
        0.0
    }

    /// Electrical signature of a wire fault at the sensor node — the fault
    /// hook. `healthy` is what the node would read without the fault,
    /// `rail` the monitor pull-up rail. The default implements the
    /// dbus-adc signatures; front-ends with different harness topologies
    /// (true differential, grounded shields) can override.
    fn wire_fault_node(&self, fault: WireFault, healthy: Volts, rail: Volts) -> Volts {
        match fault {
            WireFault::NotConnected => rail,
            WireFault::ShortToGround => Volts(0.0),
            WireFault::ReversePolarity => match self.excitation() {
                // Protection diode pins the node near 20 % of the rail
                // with a small leak-through of the true signal.
                Excitation::Dc { .. } => Volts(0.2 * rail.0 + 0.02 * healthy.0),
                // A reversed secondary inverts the carrier.
                Excitation::Carrier { .. } => Volts(-healthy.0),
            },
        }
    }

    /// Serializes the front-end's dynamic state (stimulus, internal
    /// dynamics, noise generators) bit-exactly.
    fn save_state(&self, w: &mut StateWriter);

    /// Restores state saved by [`SensorFrontEnd::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError>;

    /// Digest over the construction parameters (not the dynamic state):
    /// two front-ends with equal digests must accept each other's
    /// snapshots. Fold [`Conditioning::digest_into`] /
    /// [`PlausibilityBands::digest_into`] plus every constructor argument
    /// through [`ascp_sim::snapshot::fnv1a64`].
    fn config_digest(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_conditioning_applies() {
        let c = Conditioning::Linear {
            scale: 350.0,
            offset: -15.0,
        };
        assert!((c.apply(0.1) - 20.0).abs() < 1e-12);
        assert!((c.apply(0.9) - 300.0).abs() < 1e-12);
    }

    #[test]
    fn table_conditioning_interpolates_and_clamps() {
        let c = Conditioning::Table {
            points: vec![(0.1, 120.0), (0.5, 25.0), (0.9, -30.0)],
        };
        assert_eq!(c.apply(0.0), 120.0, "clamps low");
        assert_eq!(c.apply(1.0), -30.0, "clamps high");
        assert!((c.apply(0.3) - 72.5).abs() < 1e-12, "midpoint interpolates");
        assert!((c.apply(0.7) - (-2.5)).abs() < 1e-12);
    }

    #[test]
    fn ratiometric_bands_classify() {
        let b = PlausibilityBands::ratiometric_default();
        let obs = |dc: f64| NodeObservation {
            dc_ratio: dc,
            ac_ratio: 0.0,
            pilot_ratio: dc,
        };
        assert_eq!(b.classify(&obs(0.5)), WireStatus::Ok);
        assert_eq!(b.classify(&obs(0.99)), WireStatus::NotConnected);
        assert_eq!(b.classify(&obs(0.01)), WireStatus::ShortToGround);
        assert_eq!(b.classify(&obs(0.20)), WireStatus::ReversePolarity);
    }

    #[test]
    fn ratiometric_reverse_band_optional() {
        let b = PlausibilityBands::Ratiometric {
            short_below: 0.04,
            reverse: None,
            open_above: 0.96,
        };
        let obs = NodeObservation {
            dc_ratio: 0.20,
            ac_ratio: 0.0,
            pilot_ratio: 0.20,
        };
        assert_eq!(b.classify(&obs), WireStatus::Ok);
    }

    #[test]
    fn carrier_bands_classify() {
        let b = PlausibilityBands::Carrier {
            open_above: 0.8,
            ac_floor: 0.01,
            reverse_below: -0.02,
        };
        let ok = NodeObservation {
            dc_ratio: 0.0,
            ac_ratio: 0.06,
            pilot_ratio: 0.08,
        };
        assert_eq!(b.classify(&ok), WireStatus::Ok);
        let open = NodeObservation {
            dc_ratio: 0.97,
            ac_ratio: 0.0,
            pilot_ratio: 0.0,
        };
        assert_eq!(b.classify(&open), WireStatus::NotConnected);
        let short = NodeObservation {
            dc_ratio: 0.0,
            ac_ratio: 0.001,
            pilot_ratio: 0.0,
        };
        assert_eq!(b.classify(&short), WireStatus::ShortToGround);
        let rev = NodeObservation {
            dc_ratio: 0.0,
            ac_ratio: 0.06,
            pilot_ratio: -0.08,
        };
        assert_eq!(b.classify(&rev), WireStatus::ReversePolarity);
    }

    #[test]
    fn wire_labels_are_stable() {
        assert_eq!(WireFault::NotConnected.label(), "wire_not_connected");
        assert_eq!(WireFault::ShortToGround.label(), "wire_short_to_ground");
        assert_eq!(WireFault::ReversePolarity.label(), "wire_reverse_polarity");
        assert_eq!(WireStatus::Ok.label(), "normal");
        assert_eq!(WireStatus::NotConnected.label(), "not_connected");
        assert_eq!(WireStatus::ShortToGround.label(), "short_to_ground");
        assert_eq!(WireStatus::ReversePolarity.label(), "reverse_polarity");
    }
}
