//! Integration tests: one per fault class in the catalog, checking that
//! the platform's safety supervisor detects the injected fault and
//! applies the advertised graceful-degradation contract.

use ascp_core::platform::{Platform, PlatformConfig};
use ascp_core::supervisor::SupervisorState;
use ascp_sim::fault::{AdcChannel, FaultKind};

/// Steps until `pred` holds, returning the time it first did.
fn run_until(
    p: &mut Platform,
    timeout_s: f64,
    mut pred: impl FnMut(&Platform) -> bool,
) -> Option<f64> {
    let ticks = (timeout_s * p.config().dsp_rate.0) as u64;
    for _ in 0..ticks {
        p.step();
        if pred(p) {
            return Some(p.time());
        }
    }
    None
}

/// Brings the platform up and waits for the supervisor to declare Normal.
fn bring_up(p: &mut Platform) -> f64 {
    p.wait_for_ready(2.0).expect("platform becomes ready");
    run_until(p, 0.1, |p| {
        p.supervisor().state() == SupervisorState::Normal
    })
    .expect("supervisor reaches Normal")
}

/// Detection latency for a fault injected at `t_inj`: the supervisor must
/// leave Normal within `budget_s`.
fn expect_detection(p: &mut Platform, t_inj: f64, budget_s: f64) -> f64 {
    let t = run_until(p, budget_s + 0.05, |p| {
        p.supervisor().state() != SupervisorState::Normal
    })
    .unwrap_or_else(|| panic!("fault injected at {t_inj:.3}s was never detected"));
    let latency = t - t_inj;
    assert!(
        latency <= budget_s,
        "detection latency {latency:.3}s exceeds budget {budget_s}s"
    );
    latency
}

#[test]
fn mems_drive_loss_is_detected_via_envelope() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_permanent(FaultKind::MemsDriveLoss, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    assert!(t0 < 0.6, "bring-up after injection point");
    run_until(&mut p, 0.65 - t0, |_| false); // advance past injection
    expect_detection(&mut p, 0.6, 0.8);
    assert!(
        p.supervisor()
            .failing_checks()
            .any(|ch| ch == "agc_envelope"),
        "drive loss should surface as an envelope fault"
    );
}

#[test]
fn sensor_disconnect_is_detected_and_rate_goes_stale() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_permanent(FaultKind::SensorDisconnect, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    assert!(t0 < 0.6);
    let (_, stale) = p.supervised_rate_dps();
    assert!(!stale, "healthy output must not be stale");
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.15);
    let (held, stale) = p.supervised_rate_dps();
    assert!(stale, "degraded output must be flagged stale");
    assert!(held.abs() < 20.0, "held estimate {held} from a 0 °/s run");
}

#[test]
fn adc_stuck_code_is_detected() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_permanent(
            FaultKind::AdcStuckCode {
                channel: AdcChannel::Primary,
                code: 0,
            },
            0.6,
        )
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.15);
}

#[test]
fn adc_stuck_msb_is_detected_as_dc_shift() {
    let msb = PlatformConfig::default().adc.bits - 1;
    let c = PlatformConfig::builder()
        .quiet()
        .fault_permanent(
            FaultKind::AdcStuckBit {
                channel: AdcChannel::Secondary,
                bit: msb,
                value: false,
            },
            0.6,
        )
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.15);
    assert!(
        p.supervisor().failing_checks().any(|ch| ch == "adc_dc"),
        "stuck MSB should surface as a DC-shift fault"
    );
}

#[test]
fn adc_overload_is_detected_via_clip_rate() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_permanent(
            FaultKind::AdcOverload {
                channel: AdcChannel::Primary,
                gain: 4.0,
            },
            0.6,
        )
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.1);
    assert!(
        p.supervisor().failing_checks().any(|ch| ch == "adc_clip"),
        "overload should surface as a clip-rate fault"
    );
}

#[test]
fn reference_droop_is_detected() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_permanent(FaultKind::ReferenceDroop { frac: 0.4 }, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.3);
}

#[test]
fn pll_unlock_is_detected_and_recovers_through_the_fsm() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_one_shot(FaultKind::PllUnlock, 0.6, 0.05)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    assert!(t0 < 0.6);
    run_until(&mut p, 0.62 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.1);
    // Re-acquisition is dynamical: the envelope dies while the NCO is
    // stranded on its rail, the dead-input leak sweeps it back, and the
    // AGC re-pumps — slow enough that the FSM escalates to SafeState and
    // recovers through a bounded safe retry. The full walk is
    // Degraded -> SafeState -> Recovery -> (clip overshoot) -> Normal.
    let mut saw_recovery = false;
    let mut saw_safe = false;
    let back = run_until(&mut p, 4.5, |p| {
        match p.supervisor().state() {
            SupervisorState::Recovery => saw_recovery = true,
            SupervisorState::SafeState => saw_safe = true,
            _ => {}
        }
        p.supervisor().state() == SupervisorState::Normal
    });
    assert!(back.is_some(), "PLL never recovered to Normal");
    assert!(
        saw_recovery,
        "recovery must pass through the Recovery state"
    );
    assert!(saw_safe, "a rail-kicked PLL should exercise the safe retry");
}

#[test]
fn spi_bit_errors_degrade_but_never_escalate() {
    let c = PlatformConfig::builder()
        .quiet()
        .spi_probe_period(1)
        .fault_permanent(FaultKind::SpiBitErrors { rate: 0.9 }, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.1);
    assert_eq!(p.supervisor().state(), SupervisorState::Degraded);
    // Link noise alone must never reach SafeState.
    if let Some(t) = run_until(&mut p, 0.5, |p| {
        p.supervisor().state() == SupervisorState::SafeState
    }) {
        panic!("comm fault escalated to SafeState at {t:.3}s");
    }
}

#[test]
fn uart_bit_errors_are_detected_from_line_parity() {
    let c = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .fault_permanent(FaultKind::UartBitErrors { rate: 0.5 }, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.3);
    assert!(p.cpu_mut().uart_line_errors() > 0);
}

#[test]
fn jtag_corruption_is_detected_by_idcode_probe() {
    let c = PlatformConfig::builder()
        .quiet()
        .jtag_probe_period(5)
        .fault_permanent(FaultKind::JtagCorruption { rate: 0.1 }, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 0.65 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.2);
    assert!(p.jtag_probe_errors() > 0);
}

#[test]
fn cpu_hang_exhausts_watchdog_retries_into_safe_state() {
    let c = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .fault_permanent(FaultKind::CpuHang, 0.6)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    // Arm the watchdog via its registers: 20 000 machine cycles ≈ 12 ms.
    {
        use ascp_mcu8051::periph::Bus16Device;
        let bus = p.bus_mut();
        bus.watchdog.write16(1, 20_000);
        bus.watchdog.write16(0, 1);
    }
    let t0 = bring_up(&mut p);
    assert!(t0 < 0.6);
    run_until(&mut p, 0.62 - t0, |_| false);
    expect_detection(&mut p, 0.6, 0.2);
    // The hang persists: the bounded retry budget must latch SafeState.
    let latched = run_until(&mut p, 0.6, |p| {
        p.supervisor().state() == SupervisorState::SafeState
    });
    assert!(latched.is_some(), "retry budget never exhausted");
    assert!(p.watchdog_resets() > p.supervisor().config().wd_retry_limit);
    // Safe output: the rate DAC parks at mid-scale.
    p.set_rate(ascp_sim::units::DegPerSec(200.0));
    run_until(&mut p, 0.02, |_| false);
    assert!(
        p.rate_output_dps().abs() < 5.0,
        "SafeState output not parked: {} °/s",
        p.rate_output_dps()
    );
}

#[test]
fn watchdog_reset_counts_exactly_once_per_trip() {
    let c = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .fault_one_shot(FaultKind::CpuHang, 0.6, 0.02)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    {
        use ascp_mcu8051::periph::Bus16Device;
        let bus = p.bus_mut();
        bus.watchdog.write16(1, 20_000);
        bus.watchdog.write16(0, 1);
    }
    let t0 = bring_up(&mut p);
    assert!(t0 < 0.6);
    run_until(&mut p, 0.75 - t0, |_| false);
    let resets = p.watchdog_resets();
    assert!(resets >= 1, "hang never tripped the watchdog");
    // Exactly one platform reset (and one telemetry count) per expiry.
    assert_eq!(
        u64::from(resets),
        u64::from(p.bus_mut().watchdog.expirations()),
        "platform resets must match watchdog expirations 1:1"
    );
    let snap = p.telemetry_snapshot();
    let counted = snap
        .counters
        .iter()
        .find(|(k, _)| *k == "cpu.watchdog_resets")
        .map(|(_, v)| *v);
    assert_eq!(counted, Some(u64::from(resets)));
}

#[test]
fn watchdog_auto_reset_can_be_disabled_via_ctrl_bit1() {
    let c = PlatformConfig::builder()
        .quiet()
        .cpu_enabled(true)
        .fault_permanent(FaultKind::CpuHang, 0.2)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    {
        use ascp_mcu8051::periph::Bus16Device;
        let bus = p.bus_mut();
        bus.watchdog.write16(1, 20_000);
        bus.watchdog.write16(0, 1 | 2); // enabled, auto-reset suppressed
    }
    run_until(&mut p, 0.4, |_| false);
    assert!(
        p.bus_mut().watchdog.expirations() >= 1,
        "watchdog never expired"
    );
    assert_eq!(
        p.watchdog_resets(),
        0,
        "CTRL bit1 must suppress the CPU reset"
    );
}

#[test]
fn closed_loop_sense_fault_falls_back_to_open_loop() {
    use ascp_core::chain::SenseMode;
    let c = PlatformConfig::builder()
        .quiet()
        .loop_mode(SenseMode::ClosedLoop)
        .fault_permanent(
            FaultKind::AdcStuckCode {
                channel: AdcChannel::Secondary,
                code: 100,
            },
            0.8,
        )
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    assert!(t0 < 0.8, "closed-loop bring-up too slow");
    assert_eq!(p.chain().mode(), SenseMode::ClosedLoop);
    run_until(&mut p, 0.85 - t0, |_| false);
    let detected = run_until(&mut p, 0.5, |p| {
        p.supervisor().state() != SupervisorState::Normal
    });
    assert!(detected.is_some(), "stuck secondary converter undetected");
    run_until(&mut p, 0.05, |_| false);
    assert!(p.supervisor().wants_open_loop());
    assert_eq!(
        p.chain().mode(),
        SenseMode::OpenLoop,
        "platform must fall back to open-loop sensing"
    );
}

#[test]
fn intermittent_fault_emits_paired_events() {
    let c = PlatformConfig::builder()
        .quiet()
        .fault_intermittent(FaultKind::PllUnlock, 0.6, 1.2, 0.15, 0.02, 99)
        .build()
        .expect("valid");
    let mut p = Platform::new(c);
    let t0 = bring_up(&mut p);
    run_until(&mut p, 1.3 - t0, |_| false);
    let snap = p.telemetry_snapshot();
    let injected = snap
        .events
        .iter()
        .filter(|e| e.kind() == "FaultInjected")
        .count();
    let cleared = snap
        .events
        .iter()
        .filter(|e| e.kind() == "FaultCleared")
        .count();
    assert!(injected >= 2, "expected several bursts, saw {injected}");
    assert!(
        (injected as i64 - cleared as i64).abs() <= 1,
        "unbalanced inject/clear events: {injected} vs {cleared}"
    );
}

#[test]
fn fault_free_run_stays_normal_with_zero_overhead_path() {
    let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
    let t0 = bring_up(&mut p);
    if let Some(t) = run_until(&mut p, 1.0, |p| {
        p.supervisor().state() != SupervisorState::Normal
    }) {
        panic!("healthy platform left Normal at {t:.3}s (false positive)");
    }
    assert_eq!(p.supervisor().faults_detected(), 0);
    let _ = t0;
}
