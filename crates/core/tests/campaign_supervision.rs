//! Supervision-layer contract: worker faults (panics, stalls) injected by
//! the deterministic chaos mode must never abort a campaign, must leave
//! healthy scenarios byte-identical to an undisturbed run, and must be
//! thread-count invariant — the same promises `campaign_determinism`
//! makes for healthy campaigns, extended to unhealthy ones.

use ascp_core::campaign::{
    CampaignOptions, CampaignOptionsBuilder, CampaignRunner, ChaosInjection, ChaosPlan,
    ScenarioError, ScenarioSpec, ScenarioStatus, Step,
};

/// Runner with `threads` workers and otherwise default options.
fn runner(threads: usize) -> CampaignRunner {
    configured(CampaignOptions::builder().threads(threads))
}

/// Runner from a fully-specified options builder.
fn configured(options: CampaignOptionsBuilder) -> CampaignRunner {
    CampaignRunner::with_options(options.build().expect("valid options"))
}

use ascp_core::platform::PlatformConfig;

/// A small healthy campaign: eight cheap rate-measurement scenarios.
fn scenario_list() -> Vec<ScenarioSpec> {
    (0..8)
        .map(|i| {
            let config = PlatformConfig::builder().quiet().build().expect("valid");
            ScenarioSpec::new(format!("s{i}"), config)
                .with_duration(0.01)
                .with_step(Step::SetRate {
                    dps: f64::from(i) * 10.0,
                })
                .with_step(Step::MeasureMeanRate {
                    label: "rate".into(),
                    window_s: 0.005,
                })
        })
        .collect()
}

/// Finds a chaos seed whose injection pattern over `n` scenarios contains
/// at least one panic and at least one stall (search is deterministic, so
/// the tests stay reproducible).
fn chaos_seed_with_both(n: usize) -> u64 {
    (0..4096u64)
        .find(|&seed| {
            let plan = ChaosPlan::new(seed);
            let decisions: Vec<ChaosInjection> = (0..n).map(|i| plan.decide(i, 0)).collect();
            decisions.contains(&ChaosInjection::Panic)
                && decisions.contains(&ChaosInjection::Stall)
                && decisions.contains(&ChaosInjection::None)
        })
        .expect("some seed in 0..4096 mixes panic, stall, and healthy")
}

/// With retries disabled, injected faults quarantine their scenarios —
/// and the poisoning pattern, the healthy rows, and the whole CSV are
/// identical at 1, 2, and 4 threads.
#[test]
fn chaos_without_retries_poisons_deterministically_at_any_thread_count() {
    let seed = chaos_seed_with_both(8);
    // Tiny stall cap: with no watchdog the stalled worker self-reports
    // `TimedOut` after the cap, keeping the test fast.
    let chaos = ChaosPlan::new(seed).with_stall_cap_s(0.05);
    let run = |threads: usize| {
        configured(
            CampaignOptions::builder()
                .threads(threads)
                .retries(0)
                .chaos(chaos.clone()),
        )
        .run(scenario_list())
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert_eq!(one.outcomes, two.outcomes);
    assert_eq!(one.outcomes, four.outcomes);
    assert_eq!(one.to_csv(), four.to_csv());

    // The poisoning pattern matches the plan exactly, and healthy rows
    // match an undisturbed run byte-for-byte.
    let clean = runner(2).run(scenario_list());
    for (i, o) in one.outcomes.iter().enumerate() {
        match chaos.decide(i, 0) {
            ChaosInjection::None => {
                assert_eq!(o.status, ScenarioStatus::Done, "scenario {i}");
                assert_eq!(o, &clean.outcomes[i], "healthy scenario {i} perturbed");
            }
            ChaosInjection::Panic => {
                assert_eq!(o.status, ScenarioStatus::Poisoned, "scenario {i}");
                assert!(
                    matches!(o.attempt_errors[..], [ScenarioError::Panicked { .. }]),
                    "scenario {i}: {:?}",
                    o.attempt_errors
                );
                assert!(o.metrics.is_empty(), "poisoned scenario {i} has metrics");
            }
            ChaosInjection::Stall => {
                assert_eq!(o.status, ScenarioStatus::Poisoned, "scenario {i}");
                assert!(
                    matches!(o.attempt_errors[..], [ScenarioError::TimedOut { .. }]),
                    "scenario {i}: {:?}",
                    o.attempt_errors
                );
            }
        }
    }
    assert!(one.poisoned() > 0);
    assert_eq!(one.poisoned(), one.failed_scenarios().len());
}

/// With the default retry budget, every chaos-injected scenario recovers
/// on its clean retry and the *entire* CSV is byte-identical to an
/// undisturbed run — the seed is re-derived, not advanced.
#[test]
fn chaos_with_retries_is_byte_identical_to_undisturbed() {
    let seed = chaos_seed_with_both(8);
    let clean = runner(2).run(scenario_list());
    for threads in [1, 2, 4] {
        let chaotic = configured(
            CampaignOptions::builder()
                .threads(threads)
                .retries(1)
                .backoff_ms(1)
                .chaos(ChaosPlan::new(seed).with_stall_cap_s(0.05)),
        )
        .run(scenario_list());
        assert_eq!(chaotic.poisoned(), 0, "retry must recover every scenario");
        assert!(chaotic.retries_total() > 0, "chaos must have injected");
        assert_eq!(
            clean.to_csv(),
            chaotic.to_csv(),
            "chaos + retry must be invisible in the CSV at {threads} threads"
        );
        for (c, o) in clean.outcomes.iter().zip(&chaotic.outcomes) {
            assert_eq!(c.seed, o.seed, "retry must not advance the seed");
            assert_eq!(c.metrics, o.metrics);
        }
    }
}

/// The watchdog cancels a stalled scenario at the configured deadline and
/// records that configured limit (not measured wall time) in the error.
#[test]
fn watchdog_cancels_overrunning_scenarios_at_the_configured_deadline() {
    // Find a seed that stalls scenario 0 and leaves scenario 1 healthy,
    // so the assertion targets are fixed.
    let seed = (0..4096u64)
        .find(|&s| {
            let plan = ChaosPlan::new(s);
            plan.decide(0, 0) == ChaosInjection::Stall && plan.decide(1, 0) == ChaosInjection::None
        })
        .expect("some seed stalls scenario 0 only");
    let report = configured(
        CampaignOptions::builder()
            .threads(2)
            .retries(0)
            .deadline_s(0.05)
            // Cap far above the deadline: only the watchdog can end the
            // stall.
            .chaos(ChaosPlan::new(seed).with_stall_cap_s(10.0)),
    )
    .run(scenario_list().into_iter().take(2).collect());
    let stalled = &report.outcomes[0];
    assert_eq!(stalled.status, ScenarioStatus::Poisoned);
    assert_eq!(
        stalled.attempt_errors,
        vec![ScenarioError::TimedOut { deadline_s: 0.05 }],
        "the recorded deadline must be the configured one"
    );
    assert!(report.timeouts_total() >= 1);
    // The sibling scenario drained normally.
    assert_eq!(report.outcomes[1].status, ScenarioStatus::Done);
}

/// Supervision events flow through telemetry: the Prometheus exposition
/// carries the retry/timeout/panic counters with the `ascp_` prefix.
#[test]
fn supervision_counters_reach_prometheus_and_json() {
    let seed = chaos_seed_with_both(8);
    let report = configured(
        CampaignOptions::builder()
            .threads(2)
            .retries(1)
            .backoff_ms(1)
            .chaos(ChaosPlan::new(seed).with_stall_cap_s(0.05)),
    )
    .run(scenario_list());
    let snap = report.to_telemetry();
    assert_eq!(
        snap.counter("campaign.retries_total"),
        report.retries_total()
    );
    let prom = snap.to_prometheus();
    for needle in [
        "ascp_campaign_retries_total",
        "ascp_campaign_timeouts_total",
        "ascp_campaign_panics_total",
        "ascp_campaign_poisoned_scenarios",
    ] {
        assert!(prom.contains(needle), "{needle} missing from:\n{prom}");
    }
    assert!(snap.to_json().contains("campaign.retries_total"));
}

/// A healthy campaign under full supervision (watchdog armed, retry
/// budget, chaos off) is byte-identical to a bare run: supervision is
/// pure observation until something fails.
#[test]
fn supervision_is_invisible_on_a_healthy_campaign() {
    let bare = runner(2).run(scenario_list());
    let supervised = configured(
        CampaignOptions::builder()
            .threads(2)
            .deadline_s(60.0)
            .retries(2),
    )
    .run(scenario_list());
    assert_eq!(bare.outcomes, supervised.outcomes);
    assert_eq!(bare.to_csv(), supervised.to_csv());
    assert_eq!(supervised.retries_total(), 0);
    assert_eq!(supervised.timeouts_total(), 0);
}
