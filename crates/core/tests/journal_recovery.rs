//! Journal recovery edge cases: a campaign journal torn by a crash (or
//! corrupted, or written by a different campaign) must either resume to a
//! byte-identical merged report or fail with a typed error — never
//! silently produce a different campaign.

use ascp_core::campaign::{
    CampaignOptions, CampaignOptionsBuilder, CampaignRunner, ScenarioSpec, Step,
};

/// Runner with `threads` workers and otherwise default options.
fn runner(threads: usize) -> CampaignRunner {
    configured(CampaignOptions::builder().threads(threads))
}

/// Runner from a fully-specified options builder.
fn configured(options: CampaignOptionsBuilder) -> CampaignRunner {
    CampaignRunner::with_options(options.build().expect("valid options"))
}

use ascp_core::journal::{self, JournalError, JournalWriter, HEADER_LEN};
use ascp_core::platform::PlatformConfig;
use std::path::PathBuf;

/// A small deterministic campaign (six cheap scenarios).
fn scenario_list() -> Vec<ScenarioSpec> {
    (0..6)
        .map(|i| {
            let config = PlatformConfig::builder().quiet().build().expect("valid");
            ScenarioSpec::new(format!("s{i}"), config)
                .with_duration(0.01)
                .with_step(Step::SetRate {
                    dps: f64::from(i) * 15.0 - 30.0,
                })
                .with_step(Step::MeasureMeanRate {
                    label: "rate".into(),
                    window_s: 0.005,
                })
        })
        .collect()
}

/// A scratch path under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ascp_journal_recovery");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// The per-record frame boundaries of a journal body, so tests can cut
/// *inside* a record deliberately.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut bounds = vec![HEADER_LEN];
    let mut at = HEADER_LEN;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let end = at + 4 + len + 8;
        if end > bytes.len() {
            break;
        }
        at = end;
        bounds.push(at);
    }
    bounds
}

/// A journal truncated mid-record (any cut point at or past the header)
/// resumes to a merged report byte-identical to the uninterrupted run —
/// at 1, 2, and 4 worker threads.
#[test]
fn truncated_mid_record_journal_resumes_byte_identically() {
    let path = scratch("truncated.journal");
    let baseline = runner(2)
        .run_with_journal(scenario_list(), &path)
        .expect("journaled run");
    let full = std::fs::read(&path).expect("journal bytes");
    let bounds = record_boundaries(&full);
    assert!(bounds.len() > 2, "campaign wrote multiple records");

    // Cut points: exactly at the header (empty journal), one byte into a
    // record's length prefix, mid-payload, and one byte short of a
    // complete record.
    let mid_payload = bounds[1] + (bounds[2] - bounds[1]) / 2;
    let cuts = [
        bounds[0],
        bounds[0] + 1,
        mid_payload,
        bounds[2] - 1,
        bounds[2],
    ];
    for cut in cuts {
        for threads in [1, 2, 4] {
            std::fs::write(&path, &full[..cut]).expect("write truncated journal");
            let resumed = runner(threads)
                .resume(scenario_list(), &path)
                .expect("resume survives a torn tail");
            assert_eq!(
                baseline.to_csv(),
                resumed.to_csv(),
                "cut at byte {cut}, {threads} threads"
            );
            assert_eq!(baseline.outcomes, resumed.outcomes, "cut at byte {cut}");
            // Only complete records load; the torn tail re-runs.
            assert!(resumed.resumed < bounds.len(), "cut at byte {cut}");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// A journal written by a *different* campaign is rejected with the typed
/// digest mismatch, not silently merged.
#[test]
fn config_digest_mismatch_is_a_typed_error() {
    let path = scratch("mismatch.journal");
    runner(2)
        .run_with_journal(scenario_list(), &path)
        .expect("journaled run");

    // Same shape, different scenario name -> different campaign digest.
    let mut other = scenario_list();
    other[0].name = "renamed".into();
    let err = CampaignRunner::new()
        .resume(other, &path)
        .expect_err("digest mismatch must refuse to merge");
    assert!(
        matches!(err, JournalError::CampaignMismatch { expected, found } if expected != found),
        "{err:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// A non-journal file is rejected as `BadMagic`.
#[test]
fn non_journal_file_is_rejected() {
    let path = scratch("not_a_journal.bin");
    std::fs::write(&path, b"definitely not a journal header....").expect("write");
    let err = CampaignRunner::new()
        .resume(scenario_list(), &path)
        .expect_err("garbage must not parse");
    assert!(matches!(err, JournalError::BadMagic), "{err:?}");
    std::fs::remove_file(&path).ok();
}

/// Duplicate records for the same scenario index resolve last-wins, and
/// `append_to` first truncates a torn tail so the duplicate lands on a
/// clean boundary.
#[test]
fn duplicate_scenario_records_resolve_last_wins() {
    let path = scratch("duplicates.journal");
    let report = runner(1)
        .run_with_journal(scenario_list(), &path)
        .expect("journaled run");
    let digest = journal::campaign_digest(&scenario_list());

    // Tear the tail, then append a doctored duplicate of scenario 0.
    let full = std::fs::read(&path).expect("journal bytes");
    std::fs::write(&path, &full[..full.len() - 3]).expect("tear tail");
    let mut doctored = report.outcomes[0].clone();
    doctored.metrics.push(("doctored".into(), 42.0));
    let writer = JournalWriter::append_to(&path, digest).expect("append to torn journal");
    writer.append(&doctored).expect("append duplicate");

    let recorded = journal::read(&path, digest).expect("read back");
    // One entry per index (deduped), and index 0 carries the *last* write.
    let mut indices: Vec<usize> = recorded.iter().map(|o| o.index).collect();
    indices.sort_unstable();
    indices.dedup();
    assert_eq!(indices.len(), recorded.len(), "duplicates must be deduped");
    let zero = recorded
        .iter()
        .find(|o| o.index == 0)
        .expect("scenario 0 recorded");
    assert_eq!(zero.metric("doctored"), Some(42.0), "last write must win");
    std::fs::remove_file(&path).ok();
}

/// The crash-recovery contract end to end (in-process stand-in for the
/// `SIGKILL` test in `scripts/check.sh`): a journal holding an arbitrary
/// subset of completed scenarios resumes to a merged report
/// byte-identical to the uninterrupted run, at 1, 2, and 4 threads.
#[test]
fn partial_journal_resumes_to_byte_identical_merged_report() {
    let baseline = runner(2).run(scenario_list());
    let digest = journal::campaign_digest(&scenario_list());

    for (case, subset) in [vec![0usize, 2, 5], vec![3], (0..6).collect::<Vec<_>>()]
        .into_iter()
        .enumerate()
    {
        let path = scratch(&format!("partial_{case}.journal"));
        for threads in [1, 2, 4] {
            // Rebuild the journal each iteration: `resume` itself journals
            // the scenarios it re-runs, so the file grows after each pass.
            let writer = JournalWriter::create(&path, digest).expect("create journal");
            for &i in &subset {
                writer.append(&baseline.outcomes[i]).expect("append");
            }
            drop(writer);
            let resumed = runner(threads)
                .resume(scenario_list(), &path)
                .expect("resume");
            assert_eq!(resumed.resumed, subset.len(), "case {case}");
            assert_eq!(
                baseline.to_csv(),
                resumed.to_csv(),
                "case {case} at {threads} threads"
            );
            assert_eq!(baseline.outcomes, resumed.outcomes, "case {case}");
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Resuming with a journal path that does not exist yet simply starts a
/// fresh journaled run (so one command line works before and after a
/// crash).
#[test]
fn resume_without_a_journal_starts_fresh() {
    let path = scratch("fresh.journal");
    std::fs::remove_file(&path).ok();
    let report = runner(2)
        .resume(scenario_list(), &path)
        .expect("fresh start");
    assert_eq!(report.resumed, 0);
    assert_eq!(report.outcomes.len(), 6);
    assert!(path.exists(), "the fresh run must have journaled");
    // And the journal it wrote immediately resumes to the same report.
    let again = CampaignRunner::new()
        .resume(scenario_list(), &path)
        .expect("resume complete journal");
    assert_eq!(again.resumed, 6);
    assert_eq!(report.to_csv(), again.to_csv());
    std::fs::remove_file(&path).ok();
}
