//! Property-based tests of batched fleet execution: for random
//! Monte-Carlo population sizes, dispersions, and worker-thread counts,
//! the fleet path must emit a campaign CSV byte-identical to scalar
//! execution, and fleet-evolved platform state must round-trip through
//! the scalar checkpoint machinery bit-exactly.
//!
//! Gated behind the `proptest` feature:
//! `cargo test -p ascp-core --features proptest`.

use ascp_core::campaign::{CampaignOptions, CampaignRunner, Dispersion, ScenarioSpec, Step};
use ascp_core::checkpoint;
use ascp_core::platform::{Platform, PlatformConfig, PlatformFleet};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Random dispersion within physically plausible mismatch bounds.
fn dispersion_strategy() -> impl Strategy<Value = Dispersion> {
    (0.0..0.03f64, 0.0..0.08f64, 0.0..15.0f64, 0.0..0.05f64).prop_map(|(omega, q, offset, gain)| {
        Dispersion::none()
            .with_omega_frac(omega)
            .with_q_frac(q)
            .with_offset_dps(offset)
            .with_gain_frac(gain)
    })
}

/// A Monte-Carlo population over the fleet-safe step vocabulary.
fn mc_spec(lanes: usize, dispersion: Dispersion, seed: u64) -> ScenarioSpec {
    let config = PlatformConfig::builder()
        .quiet()
        .seed(seed)
        .build()
        .expect("valid config");
    ScenarioSpec::new("pop", config)
        .with_step(Step::Run { seconds: 0.01 })
        .with_step(Step::SetRate { dps: 45.0 })
        .with_step(Step::MeasureMeanRate {
            label: "mean_dps".into(),
            window_s: 0.004,
        })
        .monte_carlo(lanes, dispersion)
}

fn runner(threads: usize, fleet: bool) -> CampaignRunner {
    CampaignRunner::with_options(
        CampaignOptions::builder()
            .threads(threads)
            .fleet(fleet)
            .build()
            .expect("valid options"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Fleet batching is invisible in every campaign artifact: for any
    /// population size up to the fleet width and any thread count, the
    /// CSV and outcomes match scalar execution byte-for-byte.
    #[test]
    fn fleet_csv_is_byte_identical_to_scalar(
        lanes in 1usize..=16,
        threads_exp in 0u32..3,
        dispersion in dispersion_strategy(),
        seed in any::<u64>(),
    ) {
        let threads = 1usize << threads_exp; // 1, 2, or 4 workers
        let scalar = runner(1, false).run(vec![mc_spec(lanes, dispersion, seed)]);
        let fleet = runner(threads, true).run(vec![mc_spec(lanes, dispersion, seed)]);
        prop_assert_eq!(&scalar.outcomes, &fleet.outcomes);
        prop_assert_eq!(scalar.to_csv(), fleet.to_csv());
    }

    /// Fleet-evolved state is scalar state: after `k` lockstep ticks,
    /// every lane checkpoint-saves to exactly the bytes its scalar twin
    /// produces, and the restored fork stays bit-exact `n` ticks later —
    /// the warm-start/checkpoint machinery never notices a platform
    /// lived in a fleet.
    #[test]
    fn fleet_state_round_trips_through_scalar_checkpoints(
        lanes in 1usize..=8,
        k in 1u64..300,
        n in 1u64..200,
        seed in any::<u64>(),
    ) {
        let configs: Vec<PlatformConfig> = (0..lanes)
            .map(|lane| {
                PlatformConfig::builder()
                    .quiet()
                    .seed(seed.wrapping_add(lane as u64))
                    .build()
                    .expect("valid config")
            })
            .collect();
        let mut fleet = PlatformFleet::new(
            configs.iter().cloned().map(Platform::new).collect(),
        )
        .map_err(|e| TestCaseError::fail(format!("fleet build: {e}")))?;
        fleet.step_block(k);
        let members = fleet.into_platforms();
        for (lane, (p, config)) in members.into_iter().zip(configs).enumerate() {
            let mut scalar = Platform::new(config.clone());
            scalar.step_block(k);
            prop_assert_eq!(
                checkpoint::save(&p),
                checkpoint::save(&scalar),
                "lane {} diverged from its scalar twin after {} ticks",
                lane,
                k
            );
            let mut restored = checkpoint::restore(config, &checkpoint::save(&p))
                .map_err(|e| TestCaseError::fail(format!("restore lane {lane}: {e}")))?;
            let mut original = p;
            original.step_block(n);
            restored.step_block(n);
            prop_assert_eq!(
                checkpoint::save(&original),
                checkpoint::save(&restored),
                "restored lane {} fork diverged after {} more ticks",
                lane,
                n
            );
        }
    }
}
