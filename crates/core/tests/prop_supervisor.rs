//! Property-based tests of the safety supervisor FSM, driven with random
//! monitor-sample sequences. The headline invariant: the FSM never jumps
//! from `SafeState` straight back to `Normal` — every return to service
//! must pass through `Recovery`.
//!
//! Gated behind the `proptest` feature:
//! `cargo test -p ascp-core --features proptest`.

use ascp_core::supervisor::{MonitorSample, SafetySupervisor, SupervisorConfig, SupervisorState};
use ascp_sim::telemetry::{Telemetry, TelemetryConfig};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Per-tick stimulus: either a nominal sample or one perturbed along the
/// axis selected by `kind`.
fn stimulus() -> impl Strategy<Value = (bool, u8, f64, u64, f64)> {
    (
        any::<bool>(),
        0u8..11,
        0.0f64..2.0,
        0u64..64,
        -700.0f64..700.0,
    )
}

fn nominal(t: f64) -> MonitorSample {
    MonitorSample {
        t,
        locked: true,
        settled: true,
        envelope: 0.8,
        setpoint: 0.8,
        adc_pri_pp: 1.6,
        adc_pri_mid: 0.0,
        adc_sec_pp: 0.05,
        adc_sec_mid: 0.0,
        rate_dps: 0.0,
        rate_raw: ((t * 1000.0) as i32) & 0xff, // wiggle defeats rate_stuck
        closed_loop: false,
        ..MonitorSample::default()
    }
}

/// Builds the sample for one stimulus tuple.
fn sample_for(t: f64, stim: &(bool, u8, f64, u64, f64)) -> MonitorSample {
    let (healthy, kind, level, count, rate) = *stim;
    let mut s = nominal(t);
    if healthy {
        return s;
    }
    match kind {
        0 => s.locked = false,
        1 => s.envelope = level,
        2 => s.adc_clips_delta = count,
        3 => s.adc_pri_pp = 0.0,
        4 => s.adc_pri_mid = level - 1.0,
        5 => s.rate_dps = rate,
        6 => s.rate_raw = 42, // constant: trips the stuck check over time
        7 => s.watchdog_resets_delta = 1,
        8 => s.spi_errors_delta = count,
        9 => s.uart_errors_delta = count,
        _ => s.jtag_errors_delta = count,
    }
    s
}

/// Drives a fresh supervisor through warm-up plus the random sequence,
/// checking the FSM transition relation at every tick.
fn drive_and_check(stims: &[(bool, u8, f64, u64, f64)]) -> Result<(), TestCaseError> {
    let config = SupervisorConfig {
        // Short debounces so a few hundred random ticks explore the FSM.
        envelope_streak: 2,
        clip_streak: 2,
        rate_streak: 2,
        rate_stuck_ticks: 10,
        adc_stuck_windows: 2,
        adc_dc_streak: 2,
        comm_hold_ticks: 3,
        wd_hold_ticks: 3,
        recovery_hold_ticks: 4,
        degraded_timeout_s: 0.01,
        safe_retry_backoff_s: 0.005,
        safe_retry_limit: 2,
        ..SupervisorConfig::default()
    };
    let mut sup = SafetySupervisor::new(config);
    let mut tel = Telemetry::new(TelemetryConfig::default());
    let mut t = 0.0;
    // Warm-up: healthy samples take the FSM out of Init.
    for _ in 0..8 {
        sup.poll(&nominal(t), &mut tel);
        t += 0.001;
    }
    prop_assert_eq!(sup.state(), SupervisorState::Normal);

    let mut prev = sup.state();
    let mut prev_transitions = sup.transitions();
    let mut prev_faults = sup.faults_detected();
    for stim in stims {
        sup.poll(&sample_for(t, stim), &mut tel);
        t += 0.001;
        let next = sup.state();

        // The headline invariant: SafeState never returns to Normal
        // directly — service resumes only through Recovery.
        if prev == SupervisorState::SafeState {
            prop_assert!(
                matches!(next, SupervisorState::SafeState | SupervisorState::Recovery),
                "illegal SafeState -> {:?}",
                next
            );
        }
        // And dually: Normal is entered only from Init, Recovery, or
        // itself — never straight from Degraded or SafeState.
        if next == SupervisorState::Normal {
            prop_assert!(
                matches!(
                    prev,
                    SupervisorState::Init | SupervisorState::Recovery | SupervisorState::Normal
                ),
                "illegal {:?} -> Normal",
                prev
            );
        }
        // Init is never re-entered (only reset() returns there).
        prop_assert!(next != SupervisorState::Init);
        // Counters are monotonic.
        prop_assert!(sup.transitions() >= prev_transitions);
        prop_assert!(sup.faults_detected() >= prev_faults);
        // A latched supervisor is in SafeState by definition.
        if sup.is_latched() {
            prop_assert_eq!(next, SupervisorState::SafeState);
        }
        prev = next;
        prev_transitions = sup.transitions();
        prev_faults = sup.faults_detected();
    }
    Ok(())
}

proptest! {
    #[test]
    fn safe_state_only_exits_through_recovery(
        stims in proptest::collection::vec(stimulus(), 1..400)
    ) {
        drive_and_check(&stims)?;
    }

    #[test]
    fn fsm_invariants_hold_under_bursty_faults(
        bursts in proptest::collection::vec(
            (any::<bool>(), 0u8..11, 1usize..30), 1..40
        )
    ) {
        // Expand runs of identical stimuli: sustained faults exercise the
        // deeper states (Degraded dwell, SafeState, retry backoff) far
        // more often than i.i.d. samples do.
        let mut stims = Vec::new();
        for (healthy, kind, len) in bursts {
            for _ in 0..len {
                stims.push((healthy, kind, 0.05, 40, 680.0));
            }
        }
        drive_and_check(&stims)?;
    }
}
