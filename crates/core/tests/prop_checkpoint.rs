//! Property-based tests of checkpoint round-trips: for random platform
//! configurations and random split points, `restore(save(p))` must be a
//! perfect fork — stepping the original and the restored platform `n`
//! more ticks yields byte-identical state, whatever `k` ticks of history
//! preceded the save.
//!
//! Gated behind the `proptest` feature:
//! `cargo test -p ascp-core --features proptest`.

use ascp_core::chain::SenseMode;
use ascp_core::checkpoint;
use ascp_core::platform::{Platform, PlatformConfig};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Random simulation-relevant configuration knobs: ADC resolution, loop
/// mode, CPU on/off, supervisor on/off, analog oversampling and the
/// master noise seed.
fn config_strategy() -> impl Strategy<Value = PlatformConfig> {
    (
        10u32..=14,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        1u32..=2,
        any::<u64>(),
    )
        .prop_map(|(bits, closed, cpu, sup, oversample, seed)| {
            PlatformConfig::builder()
                .adc_bits(bits)
                .loop_mode(if closed {
                    SenseMode::ClosedLoop
                } else {
                    SenseMode::OpenLoop
                })
                .cpu_enabled(cpu)
                .supervisor_enabled(sup)
                .analog_oversample(oversample)
                .seed(seed)
                .build()
                .expect("strategy emits valid configs")
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn restore_then_step_is_bit_exact(
        config in config_strategy(),
        k in 0u64..400,
        n in 1u64..400,
    ) {
        let mut original = Platform::new(config.clone());
        original.step_block(k);
        let bytes = checkpoint::save(&original);
        let mut resumed = checkpoint::restore(config, &bytes)
            .map_err(|e| TestCaseError::fail(format!("restore after {k} ticks: {e}")))?;
        prop_assert_eq!(
            checkpoint::save(&original),
            checkpoint::save(&resumed),
            "restore must reproduce the saved state exactly (k={})",
            k
        );
        original.step_block(n);
        resumed.step_block(n);
        prop_assert_eq!(
            checkpoint::save(&original),
            checkpoint::save(&resumed),
            "fork must stay byte-identical after {} more ticks (k={})",
            n,
            k
        );
    }

    #[test]
    fn truncation_never_panics(
        config in config_strategy(),
        k in 0u64..200,
        cut in 0usize..10_000,
    ) {
        let mut p = Platform::new(config.clone());
        p.step_block(k);
        let bytes = checkpoint::save(&p);
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Any truncation must yield a typed error, never a panic or an
        // accidental success (the payload is length-prefixed throughout).
        prop_assert!(checkpoint::restore(config, &bytes[..cut]).is_err());
    }
}
