//! Determinism contract of the campaign engine: the same `Vec<ScenarioSpec>`
//! must produce bit-identical `CampaignReport` metrics no matter how many
//! worker threads shard it. This is what makes `--threads N` safe to use in
//! CI — parallelism may change wall clock, never numbers.
//!
//! A fixed mixed-scenario list runs unconditionally; a randomized
//! property-test variant runs under `--features proptest`.

use ascp_core::campaign::{
    CampaignOptions, CampaignOptionsBuilder, CampaignRunner, ScenarioSpec, Step,
};

/// Runner with `threads` workers and otherwise default options.
fn runner(threads: usize) -> CampaignRunner {
    configured(CampaignOptions::builder().threads(threads))
}

/// Runner from a fully-specified options builder.
fn configured(options: CampaignOptionsBuilder) -> CampaignRunner {
    CampaignRunner::with_options(options.build().expect("valid options"))
}

use ascp_core::platform::PlatformConfig;
use ascp_sim::fault::{AdcChannel, FaultKind};

/// A short but heterogeneous scenario list: distinct configs, explicit and
/// derived seeds, a fault plan, and both metric- and series-producing steps.
fn scenario_list() -> Vec<ScenarioSpec> {
    let quiet = || PlatformConfig::builder().quiet();
    vec![
        ScenarioSpec::new("rate_step", quiet().build().expect("valid"))
            .with_step(Step::Run { seconds: 0.01 })
            .with_step(Step::SetRate { dps: 120.0 })
            .with_step(Step::Run { seconds: 0.01 })
            .with_step(Step::MeasureMeanRate {
                label: "rate".into(),
                window_s: 0.01,
            }),
        ScenarioSpec::new(
            "noisier",
            quiet().noise_density(0.02).build().expect("valid"),
        )
        .with_seed(0xDEAD_BEEF)
        .with_step(Step::Run { seconds: 0.01 })
        .with_step(Step::MeasureMeanRate {
            label: "null".into(),
            window_s: 0.01,
        }),
        ScenarioSpec::new(
            "faulted",
            quiet()
                .fault_one_shot(
                    FaultKind::AdcOverload {
                        channel: AdcChannel::Primary,
                        gain: 4.0,
                    },
                    0.005,
                    0.005,
                )
                .build()
                .expect("valid"),
        )
        .with_duration(0.02)
        .with_step(Step::MeasureMeanRate {
            label: "during".into(),
            window_s: 0.005,
        }),
        ScenarioSpec::new("capture", quiet().build().expect("valid")).with_step(
            Step::CaptureZeroRate {
                label: "zr".into(),
                seconds: 0.01,
                settle_s: 0.005,
            },
        ),
    ]
}

/// Strips the wall clock (the only legitimately nondeterministic field) so
/// reports can be compared whole.
fn fingerprint(runner: &CampaignRunner, specs: Vec<ScenarioSpec>) -> (String, String) {
    let report = runner.run(specs);
    assert_eq!(report.threads, runner.threads());
    (report.to_csv(), report.to_telemetry().to_json())
}

#[test]
fn report_is_bit_identical_at_1_2_and_4_threads() {
    let (csv1, json1) = fingerprint(&runner(1), scenario_list());
    let (csv2, json2) = fingerprint(&runner(2), scenario_list());
    let (csv4, json4) = fingerprint(&runner(4), scenario_list());
    assert_eq!(csv1, csv2, "CSV differs between 1 and 2 threads");
    assert_eq!(csv1, csv4, "CSV differs between 1 and 4 threads");
    assert_eq!(
        json1, json2,
        "telemetry JSON differs between 1 and 2 threads"
    );
    assert_eq!(
        json1, json4,
        "telemetry JSON differs between 1 and 4 threads"
    );
}

#[test]
fn outcomes_are_equal_not_just_rendered_equal() {
    let a = runner(1).run(scenario_list());
    let b = runner(4).run(scenario_list());
    assert_eq!(a.outcomes, b.outcomes);
}

#[test]
fn more_threads_than_scenarios_is_fine() {
    let specs = scenario_list().into_iter().take(2).collect::<Vec<_>>();
    let a = runner(1).run(specs);
    let specs = scenario_list().into_iter().take(2).collect::<Vec<_>>();
    let b = runner(16).run(specs);
    assert_eq!(a.outcomes, b.outcomes);
}

/// Tracing is observability, not simulation state: switching it on (at any
/// thread count) must leave the deterministic artifacts byte-identical.
#[test]
fn tracing_does_not_change_results() {
    let (csv_off, json_off) = fingerprint(&runner(1), scenario_list());
    for threads in [1, 2, 4] {
        let (csv, json) = fingerprint(
            &configured(CampaignOptions::builder().threads(threads).tracing(true)),
            scenario_list(),
        );
        assert_eq!(
            csv_off, csv,
            "CSV differs with tracing on at {threads} threads"
        );
        assert_eq!(
            json_off, json,
            "telemetry JSON differs with tracing on at {threads} threads"
        );
    }
}

/// Structural contract of the campaign trace: one span per scenario, each
/// with at least one `Step` child nested inside it, sim-time monotonic.
#[test]
fn trace_has_nested_step_spans_per_scenario() {
    let specs = scenario_list();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let report = configured(CampaignOptions::builder().threads(2).tracing(true)).run(specs);
    let trace = report.trace.as_ref().expect("tracing was enabled");

    let campaign = trace.span("campaign").expect("campaign root span");
    assert_eq!(campaign.parent, 0, "campaign span is a root");

    for name in &names {
        let label = format!("scenario:{name}");
        let scenario = trace
            .span(&label)
            .unwrap_or_else(|| panic!("missing span {label}"));
        assert!(scenario.sim_end_s >= scenario.sim_start_s, "{label}");
        let steps = trace.children(scenario.id);
        assert!(!steps.is_empty(), "{label} has no Step child spans");
        let mut last_start = f64::NEG_INFINITY;
        for step in steps {
            assert!(
                step.sim_start_s >= scenario.sim_start_s && step.sim_end_s <= scenario.sim_end_s,
                "step {} of {label} escapes its scenario interval",
                step.label
            );
            assert!(
                step.sim_start_s >= last_start,
                "step {} of {label} goes backwards in sim time",
                step.label
            );
            assert!(step.sim_end_s >= step.sim_start_s, "{}", step.label);
            last_start = step.sim_start_s;
        }
    }
}

/// An armed flight recorder must not perturb determinism, and its capture
/// (a deterministic function of sim state) must be thread-count invariant.
#[test]
fn recorder_capture_is_thread_count_invariant() {
    let specs = || {
        let config = PlatformConfig::builder()
            .quiet()
            .fault_one_shot(FaultKind::SensorDisconnect, 0.7, 0.05)
            .recorder(ascp_sim::telemetry::RecorderConfig::fault_triggers(64))
            .build()
            .expect("valid");
        vec![ScenarioSpec::new("rec", config)
            .with_duration(0.8)
            .with_step(Step::WaitReady { timeout_s: 2.0 })
            .with_step(Step::WaitSupervisorNormal { timeout_s: 0.1 })]
    };
    let a = runner(1).run(specs());
    let b = configured(CampaignOptions::builder().threads(4).tracing(true)).run(specs());
    assert_eq!(a.outcomes, b.outcomes);
    let capture = a.outcomes[0].capture.as_ref().expect("trigger fired");
    assert!(!capture.frames.is_empty());
    assert_eq!(a.outcomes[0].metric("recorder_triggered"), Some(1.0));
}

#[cfg(feature = "proptest")]
mod random {
    use super::*;
    use proptest::prelude::*;

    /// Noise-density index, applied rate, seed override (flag + value),
    /// fault flag, and duration floor for one randomized scenario.
    type SpecParams = (u8, f64, (bool, u64), bool, f64);

    fn spec_params() -> impl Strategy<Value = SpecParams> {
        (
            0u8..4,                        // noise-density index
            -300.0f64..300.0,              // applied rate
            (any::<bool>(), any::<u64>()), // seed override flag + value
            any::<bool>(),                 // inject a fault?
            0.005f64..0.02,                // duration floor
        )
    }

    fn build(params: &[SpecParams]) -> Vec<ScenarioSpec> {
        params
            .iter()
            .enumerate()
            .map(|(i, &(nd, rate, (override_seed, seed), fault, dur))| {
                let mut b = PlatformConfig::builder()
                    .quiet()
                    .noise_density([0.002, 0.005, 0.01, 0.02][nd as usize]);
                if fault {
                    b = b.fault_one_shot(FaultKind::PllUnlock, 0.004, 0.004);
                }
                let mut spec = ScenarioSpec::new(format!("s{i}"), b.build().expect("valid"))
                    .with_duration(dur)
                    .with_step(Step::SetRate { dps: rate })
                    .with_step(Step::MeasureMeanRate {
                        label: "rate".into(),
                        window_s: 0.004,
                    });
                if override_seed {
                    spec = spec.with_seed(seed);
                }
                spec
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn any_scenario_list_is_thread_count_invariant(
            params in proptest::collection::vec(spec_params(), 1..6)
        ) {
            let one = runner(1).run(build(&params));
            let two = runner(2).run(build(&params));
            let four = runner(4).run(build(&params));
            prop_assert_eq!(&one.outcomes, &two.outcomes);
            prop_assert_eq!(&one.outcomes, &four.outcomes);
            prop_assert_eq!(one.to_csv(), four.to_csv());
            prop_assert_eq!(
                one.to_telemetry().to_json(),
                four.to_telemetry().to_json()
            );
        }
    }
}
