//! System-level floating-point model (the paper's MATLAB stage).
//!
//! "Our approach is initially based on the realization of a MATLAB model
//! for the system at the highest abstraction level, which is made of a set
//! of functional blocks with no distinction between analog/digital sections
//! and software" (§2). This module is that model: the gyro ODE co-simulated
//! with an idealized float conditioning loop — PLL, AGC, I/Q demodulation —
//! with no quantization, no analog nonidealities and no CPU.
//!
//! Its jobs, as in the paper:
//! 1. design-space exploration (loop gains, filter corners, AGC setpoint);
//! 2. producing the Fig. 5 reference waveforms (`PLL locking (MATLAB)`);
//! 3. serving as the golden reference the fixed-point platform is verified
//!    against (Fig. 1's verification arrows; see [`crate::verify`]).

use ascp_mems::gyro::{GyroParams, RingGyro};
use ascp_sim::trace::{Trace, TraceSet};
use ascp_sim::units::{Celsius, DegPerSec, Hertz};

/// Configuration of the float system model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemModelConfig {
    /// Gyro under conditioning.
    pub gyro: GyroParams,
    /// Solver/sample rate (single-rate in the float model).
    pub sample_rate: Hertz,
    /// PLL proportional gain (Hz per unit phase-detector output).
    pub pll_kp: f64,
    /// PLL integral gain (Hz/s per unit).
    pub pll_ki: f64,
    /// AGC target drive amplitude (normalized displacement units).
    pub agc_setpoint: f64,
    /// AGC proportional gain.
    pub agc_kp: f64,
    /// AGC integral gain (1/s).
    pub agc_ki: f64,
    /// Demodulator lowpass corner (Hz).
    pub demod_corner: Hertz,
    /// Loop-update decimation (control loops run every N samples).
    pub control_div: u32,
    /// Analog (gyro ODE) substeps per DSP sample. RK4 needs ≥60 points per
    /// carrier period for a Q≈5000 resonator; 4× over 250 kHz gives 1 MHz.
    pub oversample: u32,
}

impl Default for SystemModelConfig {
    fn default() -> Self {
        Self {
            gyro: GyroParams::default(),
            sample_rate: Hertz(250_000.0),
            pll_kp: 800.0,
            pll_ki: 60_000.0,
            agc_setpoint: 0.5,
            agc_kp: 0.2,
            agc_ki: 60.0,
            demod_corner: Hertz(400.0),
            // 50 samples at 250 kHz = exactly three 15 kHz carrier periods,
            // so the phase/envelope averages carry no 2ω ripple at nominal.
            control_div: 50,
            oversample: 4,
        }
    }
}

/// One control-rate snapshot of the model's observable signals — the five
/// traces of the paper's Fig. 5 plus the rate outputs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SystemSnapshot {
    /// Time (s).
    pub t: f64,
    /// Amplitude control (AGC drive command) — Fig. 5 trace 1.
    pub amplitude_control: f64,
    /// Phase error (phase-detector average) — Fig. 5 trace 2.
    pub phase_error: f64,
    /// Amplitude error (setpoint − envelope) — Fig. 5 trace 3.
    pub amplitude_error: f64,
    /// VCO control (NCO frequency offset, normalized) — Fig. 5 trace 4.
    pub vco_control: f64,
    /// Demodulated in-phase (rate) channel, °/s after scaling.
    pub rate: f64,
    /// Demodulated quadrature channel, °/s equivalent.
    pub quadrature: f64,
}

/// The floating-point system model.
#[derive(Debug, Clone)]
pub struct SystemModel {
    config: SystemModelConfig,
    gyro: RingGyro,
    // PLL state
    nco_phase: f64,
    nco_freq: f64,
    pll_integrator: f64,
    pd_acc: f64,
    // AGC state
    agc_i_acc: f64,
    agc_q_acc: f64,
    agc_integrator: f64,
    drive_amp: f64,
    // demod state (one-pole lowpass per channel)
    demod_i: f64,
    demod_q: f64,
    // bookkeeping
    tick: u64,
    snapshot: SystemSnapshot,
    /// Rate scaling: demod-I units per °/s (set from the gyro's analytic
    /// open-loop scale at build time — the "dimensioning" step).
    rate_scale: f64,
}

impl SystemModel {
    /// Builds the model at 25 °C, zero rate.
    ///
    /// # Panics
    ///
    /// Panics if the gyro parameters are invalid or rates are non-positive.
    #[must_use]
    pub fn new(config: SystemModelConfig) -> Self {
        assert!(config.sample_rate.0 > 0.0, "sample rate must be positive");
        assert!(config.control_div > 0, "control divider must be non-zero");
        assert!(config.oversample > 0, "oversample must be non-zero");
        let gyro = RingGyro::new(config.gyro);
        let rate_scale = gyro.open_loop_scale();
        let nco_freq = config.gyro.f0.0;
        Self {
            config,
            gyro,
            nco_phase: 0.0,
            nco_freq,
            pll_integrator: 0.0,
            pd_acc: 0.0,
            agc_i_acc: 0.0,
            agc_q_acc: 0.0,
            agc_integrator: 0.0,
            drive_amp: 0.0,
            demod_i: 0.0,
            demod_q: 0.0,
            tick: 0,
            snapshot: SystemSnapshot::default(),
            rate_scale,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SystemModelConfig {
        &self.config
    }

    /// Applied yaw rate.
    pub fn set_rate(&mut self, rate: DegPerSec) {
        self.gyro.set_rate(rate);
    }

    /// Ambient temperature (retunes the gyro).
    pub fn set_temperature(&mut self, t: Celsius) {
        self.gyro.set_temperature(t);
    }

    /// Latest control-rate snapshot.
    #[must_use]
    pub fn snapshot(&self) -> SystemSnapshot {
        self.snapshot
    }

    /// Current NCO frequency (the float "VCO").
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        Hertz(self.nco_freq)
    }

    /// `true` once phase and amplitude errors are simultaneously small.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.snapshot.phase_error.abs() < 0.02 && self.snapshot.amplitude_error.abs() < 0.05
    }

    /// Advances one sample; returns the snapshot when the control loops
    /// updated on this tick (every `control_div` samples).
    pub fn step(&mut self) -> Option<SystemSnapshot> {
        let fs = self.config.sample_rate.0;
        let dt = 1.0 / fs;
        let (s, c) = self.nco_phase.sin_cos();

        // Drive the gyro with the AGC-scaled in-velocity-phase reference,
        // integrating the ODE on a finer grid (drive held, as a DAC would).
        let sub = self.config.oversample;
        let sub_dt = dt / f64::from(sub);
        let mut pick = self.gyro.step(self.drive_amp * c, 0.0, sub_dt);
        for _ in 1..sub {
            pick = self.gyro.step(self.drive_amp * c, 0.0, sub_dt);
        }

        // Phase detector and AGC envelope accumulate at the sample rate.
        self.pd_acc += pick.primary * c;
        self.agc_i_acc += pick.primary * s;
        self.agc_q_acc += pick.primary * c;

        // Demodulate the secondary pickoff (one-pole lowpass). The Coriolis
        // force is in phase with drive *velocity* (cos once the PLL holds
        // displacement on sin), and the slightly detuned sense mode responds
        // nearly in phase with its force, so the rate channel demodulates
        // against cos; the quadrature error (∝ displacement, sin) against sin.
        let alpha = 1.0 - (-2.0 * std::f64::consts::PI * self.config.demod_corner.0 * dt).exp();
        self.demod_i += alpha * (2.0 * pick.secondary * c - self.demod_i);
        self.demod_q += alpha * (2.0 * pick.secondary * s - self.demod_q);

        // NCO advance.
        self.nco_phase += 2.0 * std::f64::consts::PI * self.nco_freq * dt;
        if self.nco_phase > 2.0 * std::f64::consts::PI {
            self.nco_phase -= 2.0 * std::f64::consts::PI;
        }

        self.tick += 1;
        if !self.tick.is_multiple_of(u64::from(self.config.control_div)) {
            return None;
        }

        // --- control-rate updates ---
        let n = f64::from(self.config.control_div);
        let ctrl_dt = n / fs;
        let cfg = &self.config;

        // PLL: normalize the phase detector by the AGC setpoint so loop
        // gain is amplitude-independent once regulated.
        let pd = self.pd_acc / n / cfg.agc_setpoint.max(1e-9);
        self.pd_acc = 0.0;
        self.pll_integrator += cfg.pll_ki * pd * ctrl_dt;
        let max_pull = cfg.gyro.f0.0 * 0.1;
        self.pll_integrator = self.pll_integrator.clamp(-max_pull, max_pull);
        let offset = (cfg.pll_kp * pd + self.pll_integrator).clamp(-max_pull, max_pull);
        self.nco_freq = cfg.gyro.f0.0 + offset;

        // AGC: quadrature envelope.
        let i = self.agc_i_acc / n * 2.0;
        let q = self.agc_q_acc / n * 2.0;
        self.agc_i_acc = 0.0;
        self.agc_q_acc = 0.0;
        let envelope = i.hypot(q);
        let amp_err = cfg.agc_setpoint - envelope;
        self.agc_integrator =
            (self.agc_integrator + cfg.agc_ki * amp_err * ctrl_dt).clamp(0.0, 1.0);
        self.drive_amp = (cfg.agc_kp * amp_err + self.agc_integrator).clamp(0.0, 1.0);

        self.snapshot = SystemSnapshot {
            t: self.tick as f64 / fs,
            amplitude_control: self.drive_amp,
            phase_error: pd,
            amplitude_error: amp_err,
            vco_control: offset / max_pull,
            rate: self.demod_i / self.rate_scale,
            quadrature: self.demod_q / self.rate_scale,
        };
        Some(self.snapshot)
    }

    /// Runs for `seconds`, recording the Fig. 5 trace set (decimated by
    /// `trace_div` control updates per stored point).
    pub fn run_traces(&mut self, seconds: f64, trace_div: u32) -> TraceSet {
        let mut amplitude_control = Trace::with_decimation("amplitude_control", trace_div.max(1));
        let mut phase_error = Trace::with_decimation("phase_error", trace_div.max(1));
        let mut amplitude_error = Trace::with_decimation("amplitude_error", trace_div.max(1));
        let mut vco_control = Trace::with_decimation("vco_control", trace_div.max(1));
        let steps = (seconds * self.config.sample_rate.0) as u64;
        for _ in 0..steps {
            if let Some(snap) = self.step() {
                amplitude_control.push(snap.t, snap.amplitude_control);
                phase_error.push(snap.t, snap.phase_error);
                amplitude_error.push(snap.t, snap.amplitude_error);
                vco_control.push(snap.t, snap.vco_control);
            }
        }
        TraceSet::new(vec![
            amplitude_control,
            phase_error,
            amplitude_error,
            vco_control,
        ])
    }

    /// Time to lock from rest: runs until [`SystemModel::is_locked`] holds
    /// for `hold` consecutive control updates, or `timeout` seconds pass.
    /// Returns `None` on timeout.
    pub fn measure_lock_time(&mut self, timeout: f64, hold: u32) -> Option<f64> {
        let steps = (timeout * self.config.sample_rate.0) as u64;
        let mut consecutive = 0u32;
        for _ in 0..steps {
            if let Some(snap) = self.step() {
                if self.is_locked() {
                    consecutive += 1;
                    if consecutive >= hold {
                        return Some(snap.t);
                    }
                } else {
                    consecutive = 0;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> SystemModelConfig {
        let mut c = SystemModelConfig::default();
        c.gyro.noise_density = 0.0;
        c
    }

    #[test]
    fn model_locks_from_rest() {
        let mut m = SystemModel::new(quiet_config());
        let lock = m.measure_lock_time(1.5, 50);
        assert!(lock.is_some(), "system model failed to lock");
        assert!(
            (m.frequency().0 - 15_000.0).abs() < 20.0,
            "locked at {}",
            m.frequency().0
        );
    }

    #[test]
    fn vco_tracks_detuned_resonance() {
        let mut c = quiet_config();
        c.gyro.tc_f0 = -30.0e-6;
        let mut m = SystemModel::new(c);
        m.set_temperature(Celsius(125.0));
        let expect = 15_000.0 * (1.0 - 30.0e-6 * 100.0);
        m.measure_lock_time(1.5, 50).expect("lock hot");
        assert!(
            (m.frequency().0 - expect).abs() < 20.0,
            "hot lock at {} vs {expect}",
            m.frequency().0
        );
    }

    #[test]
    fn amplitude_regulates_to_setpoint() {
        let mut m = SystemModel::new(quiet_config());
        m.measure_lock_time(1.5, 50).expect("lock");
        assert!(
            m.snapshot().amplitude_error.abs() < 0.05,
            "amplitude error {}",
            m.snapshot().amplitude_error
        );
    }

    #[test]
    fn rate_appears_on_i_channel() {
        let mut m = SystemModel::new(quiet_config());
        m.measure_lock_time(1.5, 50).expect("lock");
        m.set_rate(DegPerSec(100.0));
        for _ in 0..(0.5 * 250_000.0) as u64 {
            m.step();
        }
        let measured = m.snapshot().rate;
        assert!(
            (measured.abs() - 100.0).abs() < 15.0,
            "rate channel read {measured} for 100 °/s input"
        );
    }

    #[test]
    fn rate_sign_is_consistent() {
        let mut m = SystemModel::new(quiet_config());
        m.measure_lock_time(1.5, 50).expect("lock");
        m.set_rate(DegPerSec(100.0));
        for _ in 0..125_000 {
            m.step();
        }
        let plus = m.snapshot().rate;
        m.set_rate(DegPerSec(-100.0));
        for _ in 0..125_000 {
            m.step();
        }
        let minus = m.snapshot().rate;
        assert!(plus * minus < 0.0, "signs: {plus} vs {minus}");
    }

    #[test]
    fn traces_have_matching_lengths() {
        let mut m = SystemModel::new(quiet_config());
        let set = m.run_traces(0.05, 4);
        let mut csv = Vec::new();
        set.write_csv(&mut csv).expect("csv export");
        assert!(set.get("phase_error").is_some());
        assert!(set.get("vco_control").is_some());
    }

    #[test]
    fn snapshot_reports_control_rate() {
        let mut m = SystemModel::new(quiet_config());
        let mut updates = 0;
        for _ in 0..500 {
            if m.step().is_some() {
                updates += 1;
            }
        }
        assert_eq!(updates, 10); // control_div = 50
    }
}
