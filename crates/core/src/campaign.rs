//! Scenario campaigns: declarative platform experiments executed on the
//! parallel [`ascp_sim::campaign`] worker pool.
//!
//! The paper's design flow (§2, Fig. 1) explores one programmable platform
//! across many configurations. This module turns that exploration into
//! data: a [`ScenarioSpec`] names a configuration (built with
//! [`PlatformConfig::builder`]), an optional [`FaultPlan`], a duration, a
//! seed and a list of [`Step`]s (the measurement protocol); a
//! [`CampaignRunner`] shards a `Vec<ScenarioSpec>` across worker threads —
//! one independent [`Platform`] per scenario — and merges the per-scenario
//! metrics into a single [`CampaignReport`] (CSV + telemetry JSON).
//!
//! Determinism contract: every scenario derives its noise seed from its
//! own spec (`seed` override, else the config seed mixed with the
//! scenario's input index), so a campaign's report is **bit-identical for
//! any worker-thread count**. Metrics that were not measured (e.g. no
//! recovery on an undetected fault) are omitted rather than recorded as
//! NaN, keeping the CSV and JSON artifacts byte-stable. Scenarios that
//! share a settle recipe can additionally share the lock transient's cost
//! through the warm-start checkpoint cache
//! (`CampaignOptions::builder().warm_start(true)`) — with reports still
//! byte-identical to cold runs.
//!
//! Runner behaviour is configured through [`CampaignOptions`], a typed
//! options struct with a validating builder
//! ([`CampaignOptions::builder`]). The former `CampaignRunner::with_*`
//! setters were removed after a deprecation cycle; see DESIGN.md §14
//! for the old → new mapping table.
//!
//! # Monte-Carlo axis
//!
//! [`ScenarioSpec::monte_carlo`] expands one spec into `n` *lanes* —
//! scenarios named `{name}/mc{i}` whose seeds derive from the spec's base
//! seed and whose physical parameters (resonator frequency, quality
//! factors, quadrature rate, charge gain) are perturbed per lane by a
//! [`Dispersion`] — the paper's device-mismatch exploration as one line
//! of campaign code. Lanes are ordinary scenarios: they journal, resume,
//! retry, and land in the CSV individually. Consecutive sibling lanes
//! whose steps use only the lockstep-safe vocabulary (`Run`, `SetRate`,
//! `SetTemperature`, `MeasureMeanRate`) additionally execute *batched*
//! on a [`PlatformFleet`] — structure-of-arrays, up to 16 lanes per
//! fleet — with **byte-identical** results to scalar execution (fleet
//! batching is a wall-clock optimisation, never an arithmetic change;
//! disable it with `CampaignOptions::builder().fleet(false)`).
//!
//! # Supervision
//!
//! The runner is fault-tolerant: scenarios execute under a supervision
//! layer whose per-scenario FSM is `Queued → Running → {Done, Retrying(n)
//! → Running, TimedOut → Retrying, Poisoned}`. A panicking scenario is
//! caught ([`ScenarioError::Panicked`]) instead of killing the pool; a
//! scenario overrunning the configured wall-clock deadline
//! (`CampaignOptions::builder().deadline_s(..)`) is cancelled by a
//! watchdog thread
//! ([`ScenarioError::TimedOut`]); failed attempts are retried (default
//! once, `CampaignOptions::builder().retries(..)`) with the derived seed
//! **unchanged**, so a retried success is byte-identical to a first-try
//! run; a scenario that exhausts its retries is quarantined as
//! [`ScenarioStatus::Poisoned`] and ships as a failed CSV row instead of
//! aborting the campaign. [`CampaignRunner::run_with_journal`] records
//! each completed scenario in a crash-tolerant append-only journal
//! ([`crate::journal`]) and [`CampaignRunner::resume`] merges it back
//! byte-identically after a crash; a chaos plan
//! (`CampaignOptions::builder().chaos(..)`) injects deterministic worker
//! panics/stalls to exercise all of the above.
//!
//! # Step vocabulary
//!
//! Steps either evolve platform state or measure it; every measurement
//! lands in the scenario's [`ScenarioOutcome`] and, through
//! [`CampaignReport::to_csv`], in the long-format CSV
//! (`scenario,metric,value,status` rows).
//!
//! | Step | Measures | CSV metric columns |
//! |------|----------|--------------------|
//! | [`Step::ArmWatchdog`] | — (arms the watchdog) | — |
//! | [`Step::WaitReady`] | PLL lock + AGC settling | `locked`, `turn_on_s` |
//! | [`Step::WaitSupervisorNormal`] | supervisor bring-up | `supervisor_normal_s` |
//! | [`Step::Run`] | — (advances time) | — |
//! | [`Step::SetRate`] | — (rate table stimulus) | — |
//! | [`Step::SetTemperature`] | — (chamber setpoint) | — |
//! | [`Step::FreezeAgcDrive`] | — (AGC-off ablation arm) | — |
//! | [`Step::TrimRebalancePhase`] | closed-loop axis trim | `rebalance_phase_rad` |
//! | [`Step::MeasureMeanRate`] | mean rate over a window | `<label>` |
//! | [`Step::MeasureSensitivity`] | two-point sensitivity | `<label>` |
//! | [`Step::MeasureLinearity`] | linear-fit nonlinearity | `<label>` |
//! | [`Step::MeasureStaticTransfer`] | datasheet static transfer | `sensitivity_v_per_dps`, `null_v`, `nonlinearity_pct_fs` |
//! | [`Step::MeasureNoiseDensity`] | Welch-PSD noise density | `noise_density_dps_rthz` |
//! | [`Step::CaptureZeroRate`] | zero-rate series (Allan input) | `<label>_fs_hz` + series `<label>` |
//! | [`Step::FaultResponse`] | detection/recovery protocol | `baseline_dps`, `detected`, `detection_latency_s`, `recovered`, `recovery_time_s`, `residual_rate_dps`, `final_state_code` |
//!
//! # Example
//!
//! ```
//! use ascp_core::campaign::{CampaignOptions, CampaignRunner, ScenarioSpec, Step};
//! use ascp_core::platform::PlatformConfig;
//!
//! let cfg = PlatformConfig::builder().quiet().build().expect("valid");
//! let scenarios: Vec<ScenarioSpec> = [50.0, 150.0]
//!     .iter()
//!     .map(|&dps| {
//!         ScenarioSpec::new(format!("rate_{dps}"), cfg.clone())
//!             .with_step(Step::Run { seconds: 0.02 })
//!             .with_step(Step::SetRate { dps })
//!             .with_step(Step::MeasureMeanRate {
//!                 label: "mean_dps".into(),
//!                 window_s: 0.01,
//!             })
//!     })
//!     .collect();
//! let report = CampaignRunner::with_options(
//!     CampaignOptions::builder().threads(2).build().expect("valid"),
//! )
//! .run(scenarios);
//! assert_eq!(report.outcomes.len(), 2);
//! assert!(report.metric("rate_150", "mean_dps").is_some());
//! ```

use crate::calibrate::trim_rebalance_phase;
use crate::chain::ConditioningChain;
use crate::characterize::{
    measure_noise_density, measure_static_transfer, CharacterizationConfig, RateSensor,
};
use crate::checkpoint;
use crate::journal::{self, JournalError, JournalWriter};
use crate::platform::{ConfigError, Platform, PlatformConfig, PlatformFleet};
use crate::supervisor::SupervisorState;
use ascp_mcu8051::periph::Bus16Device;
use ascp_sim::campaign::{available_parallelism, panic_message, try_parallel_map, MapError};
use ascp_sim::fault::FaultPlan;
use ascp_sim::snapshot::fnv1a64;
use ascp_sim::stats;
use ascp_sim::telemetry::trace::{SpanId, TraceCollector, TraceLog};
use ascp_sim::telemetry::{CaptureBundle, Event, Telemetry, TelemetryConfig, TelemetrySnapshot};
use ascp_sim::units::{Celsius, DegPerSec, Hertz};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// One step of a scenario's measurement protocol.
///
/// Steps run in order against the scenario's private [`Platform`]; each
/// `Measure*` step appends named metrics (and, for captures, sample
/// series) to the scenario's [`ScenarioOutcome`]. The step vocabulary
/// covers the protocols of the repo's bench bins — fault campaign,
/// ablations and stability runs are all scenario lists now.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Arms the watchdog through its register interface (needed before
    /// CPU-hang fault scenarios).
    ArmWatchdog {
        /// Watchdog timeout in machine cycles.
        timeout_cycles: u16,
    },
    /// Runs until PLL lock + AGC settling; records `locked` (0/1) and, on
    /// success, `turn_on_s`. On timeout the remaining steps are skipped.
    WaitReady {
        /// Bring-up deadline, seconds.
        timeout_s: f64,
    },
    /// Runs until the safety supervisor reports `Normal`; records
    /// `supervisor_normal_s`. On timeout the remaining steps are skipped.
    WaitSupervisorNormal {
        /// Deadline, seconds.
        timeout_s: f64,
    },
    /// Advances simulated time.
    Run {
        /// Simulated seconds (rounded to the nearest DSP tick).
        seconds: f64,
    },
    /// Applies a constant rate stimulus (the rate table).
    SetRate {
        /// Rate, °/s.
        dps: f64,
    },
    /// Sets chamber temperature.
    SetTemperature {
        /// Temperature, °C.
        celsius: f64,
    },
    /// Freezes the AGC at the currently settled drive (the "AGC off"
    /// ablation arm), then re-locks for `resettle_s`.
    FreezeAgcDrive {
        /// Re-lock time after the swap, seconds.
        resettle_s: f64,
    },
    /// Runs the closed-loop rebalance phase trim (final-test axis trim).
    TrimRebalancePhase {
        /// Probe rate, °/s.
        probe_rate_dps: f64,
        /// Trim iterations.
        iterations: u32,
    },
    /// Records the mean rate output over a window as metric `label`.
    MeasureMeanRate {
        /// Metric name.
        label: String,
        /// Averaging window, seconds.
        window_s: f64,
    },
    /// Two-point sensitivity at ±`rate_dps`, recorded as metric `label`
    /// (output °/s per applied °/s); leaves the rate at zero.
    MeasureSensitivity {
        /// Metric name.
        label: String,
        /// Probe rate magnitude, °/s.
        rate_dps: f64,
        /// Settling time before sampling each polarity, seconds.
        settle_s: f64,
        /// Samples per polarity.
        samples: usize,
    },
    /// Linear-fit nonlinearity over a rate sweep, recorded as metric
    /// `label` (% of the sweep's full scale).
    MeasureLinearity {
        /// Metric name.
        label: String,
        /// Sweep points, °/s.
        rates: Vec<f64>,
        /// Dwell after each rate change, seconds.
        dwell_s: f64,
        /// Settling time before sampling, seconds.
        settle_s: f64,
        /// Samples per point.
        samples: usize,
    },
    /// Datasheet static transfer: records `sensitivity_v_per_dps`,
    /// `null_v` and `nonlinearity_pct_fs`, and remembers the sensitivity
    /// for a following [`Step::MeasureNoiseDensity`].
    MeasureStaticTransfer {
        /// Rate sweep points, °/s.
        rate_points: Vec<f64>,
        /// Samples per sweep point.
        samples_per_point: usize,
    },
    /// Zero-rate noise density via Welch PSD, recorded as
    /// `noise_density_dps_rthz` (uses the sensitivity from the last
    /// [`Step::MeasureStaticTransfer`], else the nominal 5 mV/°/s).
    MeasureNoiseDensity {
        /// Capture length, samples.
        samples: usize,
    },
    /// Long zero-rate capture converted to °/s, stored as sample series
    /// `label` (the Allan-deviation input).
    CaptureZeroRate {
        /// Series name.
        label: String,
        /// Capture length, seconds.
        seconds: f64,
        /// Settling time before the capture, seconds.
        settle_s: f64,
    },
    /// The fault-campaign protocol: baseline rate, detection latency from
    /// `t_inject_s`, then (optionally) recovery time and residual error
    /// after `t_clear_s`. Records `baseline_dps`, `detected`,
    /// `detection_latency_s`, `recovered`, `recovery_time_s`,
    /// `residual_rate_dps` and `final_state_code` — unmeasured metrics are
    /// omitted, never NaN.
    FaultResponse {
        /// Scheduled fault-injection time (must match the scenario's
        /// [`FaultPlan`]), seconds.
        t_inject_s: f64,
        /// Scheduled fault-clear time, seconds.
        t_clear_s: f64,
        /// Deadline for the supervisor to leave `Normal`, from injection.
        detect_budget_s: f64,
        /// Deadline to return to `Normal` after the fault clears.
        recover_budget_s: f64,
        /// Whether to wait for recovery (the non-smoke campaign).
        measure_recovery: bool,
    },
}

impl Step {
    /// Stable variant label (trace span names, progress lines).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::ArmWatchdog { .. } => "ArmWatchdog",
            Self::WaitReady { .. } => "WaitReady",
            Self::WaitSupervisorNormal { .. } => "WaitSupervisorNormal",
            Self::Run { .. } => "Run",
            Self::SetRate { .. } => "SetRate",
            Self::SetTemperature { .. } => "SetTemperature",
            Self::FreezeAgcDrive { .. } => "FreezeAgcDrive",
            Self::TrimRebalancePhase { .. } => "TrimRebalancePhase",
            Self::MeasureMeanRate { .. } => "MeasureMeanRate",
            Self::MeasureSensitivity { .. } => "MeasureSensitivity",
            Self::MeasureLinearity { .. } => "MeasureLinearity",
            Self::MeasureStaticTransfer { .. } => "MeasureStaticTransfer",
            Self::MeasureNoiseDensity { .. } => "MeasureNoiseDensity",
            Self::CaptureZeroRate { .. } => "CaptureZeroRate",
            Self::FaultResponse { .. } => "FaultResponse",
        }
    }
}

/// Per-lane manufacturing dispersion for a Monte-Carlo campaign axis.
///
/// Each field is the half-width of a uniform spread applied to one
/// process-sensitive platform parameter; a lane's actual draw comes from
/// its position-derived seed (see [`ScenarioSpec::monte_carlo`]), so the
/// dispersed population is deterministic for any worker-thread count.
/// The default is zero spread on every axis (lanes differ only in their
/// noise seeds).
///
/// | Field | Dispersed parameter |
/// |-------|---------------------|
/// | `omega_frac` | resonance `gyro.f0`, ±fraction |
/// | `q_frac` | `gyro.q_drive` and `gyro.q_sense`, ±fraction (independent draws) |
/// | `offset_dps` | quadrature leakage `gyro.quadrature_rate`, ±°/s |
/// | `gain_frac` | `charge_gain`, ±fraction |
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dispersion {
    /// Resonance-frequency spread, ± fraction of nominal `f0`.
    pub omega_frac: f64,
    /// Quality-factor spread, ± fraction of nominal (drive and sense
    /// draw independently).
    pub q_frac: f64,
    /// Quadrature-offset spread, ± °/s added to the nominal leakage.
    pub offset_dps: f64,
    /// Charge-amplifier gain spread, ± fraction of nominal.
    pub gain_frac: f64,
}

impl Dispersion {
    /// No spread on any axis (lanes differ only by noise seed).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the resonance-frequency spread (± fraction).
    #[must_use]
    pub fn with_omega_frac(mut self, frac: f64) -> Self {
        self.omega_frac = frac;
        self
    }

    /// Sets the quality-factor spread (± fraction).
    #[must_use]
    pub fn with_q_frac(mut self, frac: f64) -> Self {
        self.q_frac = frac;
        self
    }

    /// Sets the quadrature-offset spread (± °/s).
    #[must_use]
    pub fn with_offset_dps(mut self, dps: f64) -> Self {
        self.offset_dps = dps;
        self
    }

    /// Sets the charge-gain spread (± fraction).
    #[must_use]
    pub fn with_gain_frac(mut self, frac: f64) -> Self {
        self.gain_frac = frac;
        self
    }
}

/// One scenario: a platform configuration plus the protocol to run on it.
///
/// Build the config with [`PlatformConfig::builder`]; schedule faults
/// either in the config or through [`ScenarioSpec::with_faults`] (the two
/// plans are merged). `duration_s` is a floor on simulated time: after the
/// steps finish, the platform runs on until at least that much simulated
/// time has elapsed.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (CSV rows, metric prefixes).
    pub name: String,
    /// Platform configuration (from the builder).
    pub config: PlatformConfig,
    /// Extra fault plan merged into the config's plan.
    pub faults: FaultPlan,
    /// Minimum simulated duration, seconds.
    pub duration_s: f64,
    /// Noise-seed override; default derives from the config seed and the
    /// scenario's input index (deterministic for any thread count).
    pub seed: Option<u64>,
    /// Measurement protocol, run in order.
    pub steps: Vec<Step>,
    /// Monte-Carlo axis: `Some((lanes, dispersion))` expands this spec
    /// into `lanes` dispersed scenarios before execution (see
    /// [`ScenarioSpec::monte_carlo`]); `None` runs it as-is.
    pub monte_carlo: Option<(usize, Dispersion)>,
}

impl ScenarioSpec {
    /// Creates a scenario with no steps, no extra faults and no duration
    /// floor.
    #[must_use]
    pub fn new(name: impl Into<String>, config: PlatformConfig) -> Self {
        Self {
            name: name.into(),
            config,
            faults: FaultPlan::new(),
            duration_s: 0.0,
            seed: None,
            steps: Vec::new(),
            monte_carlo: None,
        }
    }

    /// Merges `faults` into the scenario's fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        for spec in faults.specs() {
            self.faults.push(*spec);
        }
        self
    }

    /// Sets the minimum simulated duration.
    #[must_use]
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration_s = seconds;
        self
    }

    /// Overrides the derived noise seed.
    ///
    /// # Interaction with [`ScenarioSpec::monte_carlo`]
    ///
    /// On a plain scenario the override is used verbatim. On a
    /// Monte-Carlo spec it replaces the **base** of the per-lane seed
    /// stream, not the lanes' seeds themselves: lane `i` (at expanded
    /// campaign index `e`) runs with `derive_seed(seed, e)`, so sibling
    /// lanes still draw distinct noise and dispersion — an explicit seed
    /// pins the whole dispersed population reproducibly without
    /// collapsing it onto one sample. (A population of identical lanes
    /// would be a pointless Monte-Carlo; if one exact seed per lane is
    /// really wanted, expand manually into plain specs.)
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Adds a Monte-Carlo axis: before execution the spec expands into
    /// `lanes` scenarios named `{name}/mc0 … {name}/mc{lanes-1}`, each
    /// with an independent position-derived noise seed and a
    /// configuration perturbed by `dispersion` (drawn from that same
    /// seed). Lane outcomes are ordinary [`ScenarioOutcome`]s — the CSV
    /// carries one row set per lane, byte-identical whether the lanes ran
    /// batched on a [`PlatformFleet`] or as independent scalar scenarios,
    /// at any worker-thread count.
    ///
    /// `lanes` is clamped to at least 1.
    #[must_use]
    pub fn monte_carlo(mut self, lanes: usize, dispersion: Dispersion) -> Self {
        self.monte_carlo = Some((lanes.max(1), dispersion));
        self
    }

    /// Appends one protocol step.
    #[must_use]
    pub fn with_step(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }

    /// Appends several protocol steps.
    #[must_use]
    pub fn with_steps(mut self, steps: impl IntoIterator<Item = Step>) -> Self {
        self.steps.extend(steps);
        self
    }
}

/// Why one attempt of a scenario failed (the supervision taxonomy).
///
/// Failed attempts are retried with the scenario's seed unchanged (see
/// [`derive_seed`]), so a retry that succeeds is byte-identical to a
/// first-try success; a scenario that exhausts its retries is quarantined
/// as [`ScenarioStatus::Poisoned`] with its attempt errors preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario's worker panicked; the payload is captured as text.
    Panicked {
        /// Panic payload rendered as text.
        message: String,
    },
    /// The scenario overran the campaign's per-scenario wall-clock
    /// deadline and was cancelled by the watchdog (or a chaos stall hit
    /// its cap). Carries the *configured* limit, not the measured wall
    /// time, so reports stay deterministic.
    TimedOut {
        /// The deadline that was enforced, seconds.
        deadline_s: f64,
    },
    /// The worker pool returned no result for this scenario (a worker
    /// died without reporting; should be unreachable).
    Missing,
}

impl ScenarioError {
    /// Stable taxonomy label (CSV, telemetry, trace annotations).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Panicked { .. } => "panicked",
            Self::TimedOut { .. } => "timed_out",
            Self::Missing => "missing",
        }
    }

    /// Numeric code for the `scenario_error` CSV row (1/2/3).
    #[must_use]
    pub fn code(&self) -> f64 {
        match self {
            Self::Panicked { .. } => 1.0,
            Self::TimedOut { .. } => 2.0,
            Self::Missing => 3.0,
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panicked { message } => write!(f, "scenario panicked: {message}"),
            Self::TimedOut { deadline_s } => {
                write!(f, "scenario overran its {deadline_s} s deadline")
            }
            Self::Missing => write!(f, "scenario produced no result"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Terminal supervision state of a scenario.
///
/// The per-scenario FSM is `Queued → Running → {Done, Retrying(n) →
/// Running, TimedOut → Retrying, Poisoned}`; only the two terminal states
/// appear in outcomes — everything in between is visible through
/// [`ScenarioOutcome::attempt_errors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioStatus {
    /// The scenario completed (possibly after retries) and its metrics
    /// are trustworthy.
    #[default]
    Done,
    /// The scenario failed every attempt and was quarantined; it carries
    /// no metrics, only its error history.
    Poisoned,
}

impl ScenarioStatus {
    /// Stable label for the CSV `status` column (`ok` / `poisoned`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Done => "ok",
            Self::Poisoned => "poisoned",
        }
    }
}

/// What the chaos plan injects into one scenario attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosInjection {
    /// No injection: the attempt runs normally.
    None,
    /// The worker panics before building the platform.
    Panic,
    /// The worker stalls (a cancel-polling sleep) until the watchdog
    /// cancels it or the stall cap elapses.
    Stall,
}

/// Deterministic worker-fault injection: the supervision layer's analogue
/// of [`FaultPlan`].
///
/// Each scenario's injection is derived from the chaos seed and the
/// scenario's input index ([`derive_seed`]`(seed, index) % 4`: 0 panic,
/// 1 stall, else none), so a chaos campaign is reproducible at any thread
/// count. Injections apply to the first `persist_attempts` attempts only;
/// the retry that follows runs clean with the scenario seed unchanged, so
/// every healthy metric is byte-identical to an undisturbed run.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed the per-scenario injections derive from.
    pub seed: u64,
    /// Attempts that receive the injection (default 1: attempt 0 only, so
    /// default retries recover every scenario).
    pub persist_attempts: u32,
    /// Upper bound on a stall when no watchdog deadline is set, seconds.
    pub stall_cap_s: f64,
}

impl ChaosPlan {
    /// Plan with the default persistence (attempt 0 only) and a 30 s
    /// stall cap.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            persist_attempts: 1,
            stall_cap_s: 30.0,
        }
    }

    /// Sets how many attempts per scenario receive the injection.
    #[must_use]
    pub fn with_persist_attempts(mut self, attempts: u32) -> Self {
        self.persist_attempts = attempts;
        self
    }

    /// Sets the stall cap (seconds).
    #[must_use]
    pub fn with_stall_cap_s(mut self, seconds: f64) -> Self {
        self.stall_cap_s = seconds;
        self
    }

    /// The injection for one `(scenario index, attempt)` pair.
    #[must_use]
    pub fn decide(&self, index: usize, attempt: u32) -> ChaosInjection {
        if attempt >= self.persist_attempts {
            return ChaosInjection::None;
        }
        match derive_seed(self.seed, index as u64) % 4 {
            0 => ChaosInjection::Panic,
            1 => ChaosInjection::Stall,
            _ => ChaosInjection::None,
        }
    }
}

/// Measured result of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name (copied from the spec).
    pub name: String,
    /// Input index in the campaign's scenario list.
    pub index: usize,
    /// Effective noise seed the platform ran with.
    pub seed: u64,
    /// Named metrics in measurement order.
    pub metrics: Vec<(String, f64)>,
    /// Named sample series (e.g. zero-rate captures).
    pub series: Vec<(String, Vec<f64>)>,
    /// Fault-class labels injected in this scenario, deduplicated in
    /// catalog order (coverage-matrix rows).
    pub fault_classes: Vec<&'static str>,
    /// Supervisor `(from, to)` transitions observed, in order
    /// (coverage-matrix columns). Empty when telemetry is disabled.
    pub transitions: Vec<(&'static str, &'static str)>,
    /// Flight-recorder capture, when the scenario armed a recorder and a
    /// trigger fired. Captures are **not** journaled: a resumed campaign
    /// reloads every other field of a completed scenario, but not this
    /// one (the `recorder_triggered` metric survives, so the CSV and
    /// telemetry artifacts are unaffected).
    pub capture: Option<CaptureBundle>,
    /// Errors of the failed attempts that preceded this outcome, in
    /// attempt order. Empty for a first-try success; for a
    /// [`ScenarioStatus::Poisoned`] scenario it holds every attempt.
    pub attempt_errors: Vec<ScenarioError>,
    /// Terminal supervision status.
    pub status: ScenarioStatus,
}

impl ScenarioOutcome {
    /// Retries performed (attempts beyond the first).
    #[must_use]
    pub fn retries(&self) -> usize {
        match self.status {
            ScenarioStatus::Done => self.attempt_errors.len(),
            ScenarioStatus::Poisoned => self.attempt_errors.len().saturating_sub(1),
        }
    }

    /// `true` when the scenario exhausted its retries.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.status == ScenarioStatus::Poisoned
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a sample series by name.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }
}

/// Merged result of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-scenario outcomes, in input order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Worker threads the campaign ran on (not part of the deterministic
    /// artifacts).
    pub threads: usize,
    /// Wall-clock duration, seconds (not part of the deterministic
    /// artifacts).
    pub wall_s: f64,
    /// Scenarios that restored a cached settle checkpoint instead of
    /// re-running their settle prefix (0 when warm-start is off).
    pub warm_hits: usize,
    /// Scenarios loaded from a journal instead of executed (0 unless the
    /// report came from [`CampaignRunner::resume`]; not part of the
    /// deterministic artifacts).
    pub resumed: usize,
    /// Merged span trace (present when the runner had tracing enabled).
    /// Wall-clock bounds inside are not part of the deterministic
    /// artifacts; the span structure and sim-time bounds are.
    pub trace: Option<TraceLog>,
}

impl CampaignReport {
    /// Looks up one metric of one scenario.
    #[must_use]
    pub fn metric(&self, scenario: &str, metric: &str) -> Option<f64> {
        self.outcomes
            .iter()
            .find(|o| o.name == scenario)
            .and_then(|o| o.metric(metric))
    }

    /// Looks up one sample series of one scenario.
    #[must_use]
    pub fn series(&self, scenario: &str, series: &str) -> Option<&[f64]> {
        self.outcomes
            .iter()
            .find(|o| o.name == scenario)
            .and_then(|o| o.series(series))
    }

    /// Total retry attempts across the campaign (the
    /// `ascp_campaign_retries_total` counter).
    #[must_use]
    pub fn retries_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.retries() as u64).sum()
    }

    /// Total timed-out attempts (the `ascp_campaign_timeouts_total`
    /// counter).
    #[must_use]
    pub fn timeouts_total(&self) -> u64 {
        self.attempt_error_count(|e| matches!(e, ScenarioError::TimedOut { .. }))
    }

    /// Total panicked attempts (the `ascp_campaign_panics_total` counter).
    #[must_use]
    pub fn panics_total(&self) -> u64 {
        self.attempt_error_count(|e| matches!(e, ScenarioError::Panicked { .. }))
    }

    fn attempt_error_count(&self, pred: impl Fn(&ScenarioError) -> bool) -> u64 {
        self.outcomes
            .iter()
            .flat_map(|o| &o.attempt_errors)
            .filter(|e| pred(e))
            .count() as u64
    }

    /// Scenarios quarantined after exhausting their retries.
    #[must_use]
    pub fn poisoned(&self) -> usize {
        self.outcomes.iter().filter(|o| o.failed()).count()
    }

    /// Names of the quarantined scenarios, in input order.
    #[must_use]
    pub fn failed_scenarios(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.failed())
            .map(|o| o.name.as_str())
            .collect()
    }

    /// Long-format CSV (`scenario,metric,value,status`), bit-identical
    /// for any worker-thread count.
    ///
    /// Metric rows of a completed scenario carry status `ok` — including
    /// scenarios that succeeded on a retry, whose rows are byte-identical
    /// to a first-try run. A poisoned scenario has no metric rows; it
    /// contributes `scenario_error` (the last error's
    /// [`ScenarioError::code`]) and `scenario_attempts` rows with status
    /// `poisoned`, so partial results ship instead of aborting the
    /// artifact.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut csv = String::from("scenario,metric,value,status\n");
        for o in &self.outcomes {
            let status = o.status.label();
            for (name, value) in &o.metrics {
                csv.push_str(&format!("{},{name},{value},{status}\n", o.name));
            }
            if o.failed() {
                let code = o.attempt_errors.last().map_or(0.0, ScenarioError::code);
                csv.push_str(&format!("{},scenario_error,{code},{status}\n", o.name));
                csv.push_str(&format!(
                    "{},scenario_attempts,{},{status}\n",
                    o.name,
                    o.attempt_errors.len()
                ));
            }
        }
        csv
    }

    /// Merges every scenario's metrics into one telemetry snapshot
    /// (gauge `"<scenario>.<metric>"`), with the wall clock zeroed so the
    /// JSON export is bit-identical for any worker-thread count.
    #[must_use]
    pub fn to_telemetry(&self) -> TelemetrySnapshot {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.counter_set("campaign.scenarios", self.outcomes.len() as u64);
        tel.counter_set("campaign.retries_total", self.retries_total());
        tel.counter_set("campaign.timeouts_total", self.timeouts_total());
        tel.counter_set("campaign.panics_total", self.panics_total());
        tel.counter_set("campaign.poisoned_scenarios", self.poisoned() as u64);
        for o in &self.outcomes {
            for (name, value) in &o.metrics {
                let key: &'static str = Box::leak(format!("{}.{name}", o.name).into_boxed_str());
                tel.gauge_set(key, *value);
            }
        }
        let mut snap = tel.snapshot(0.0);
        // The collector stamps real wall time; zero it so the JSON export
        // is byte-stable across runs and thread counts.
        snap.wall_time_s = 0.0;
        snap
    }

    /// Builds the fault-class × transition coverage matrix over this
    /// report's outcomes (see [`crate::coverage`]).
    #[must_use]
    pub fn coverage(&self) -> crate::coverage::CoverageMatrix {
        crate::coverage::CoverageMatrix::from_outcomes(&self.outcomes)
    }
}

/// One line of campaign progress, emitted as each scenario finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProgress {
    /// Input index of the finished scenario.
    pub index: usize,
    /// Total scenarios in the campaign.
    pub total: usize,
    /// Scenario name.
    pub name: String,
    /// Wall-clock time this scenario took, milliseconds.
    pub wall_ms: f64,
    /// Warm-start result: `Some(true)` hit, `Some(false)` miss, `None`
    /// when the cache is off.
    pub warm: Option<bool>,
    /// Whether the scenario's flight recorder froze a capture.
    pub triggered: bool,
    /// Scenarios finished so far (completion order, not input order).
    pub completed: usize,
    /// Retry attempts this scenario needed (0 on a first-try success).
    pub retries: usize,
    /// Terminal supervision status.
    pub status: ScenarioStatus,
}

impl std::fmt::Display for ScenarioProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>2}/{}] {:<28} {:>8.1} ms",
            self.completed, self.total, self.name, self.wall_ms
        )?;
        match self.warm {
            Some(true) => write!(f, "  warm=hit ")?,
            Some(false) => write!(f, "  warm=miss")?,
            None => {}
        }
        write!(f, "  trigger={}", if self.triggered { "y" } else { "n" })?;
        if self.retries > 0 {
            write!(f, "  retries={}", self.retries)?;
        }
        if self.status == ScenarioStatus::Poisoned {
            write!(f, "  POISONED")?;
        }
        Ok(())
    }
}

/// Receives per-scenario progress callbacks from a running campaign (e.g.
/// a live metrics endpoint). Callbacks arrive from worker threads in
/// completion order.
pub trait CampaignObserver: Send + Sync {
    /// Called once per scenario, as it finishes.
    fn scenario_finished(&self, progress: &ScenarioProgress);
}

/// Validated execution settings for a [`CampaignRunner`].
///
/// Replaces the runner's historical pile of `with_*` setters with one
/// typed, validated options object: build it with
/// [`CampaignOptions::builder`], hand it to
/// [`CampaignRunner::with_options`]. The old setters went through a
/// deprecation cycle and are gone; see DESIGN.md §14 for the old → new
/// mapping table.
#[derive(Clone)]
pub struct CampaignOptions {
    threads: usize,
    warm_start: bool,
    tracing: bool,
    progress: bool,
    observer: Option<Arc<dyn CampaignObserver>>,
    max_retries: u32,
    backoff_ms: u64,
    deadline_s: Option<f64>,
    chaos: Option<ChaosPlan>,
    fleet: bool,
}

impl std::fmt::Debug for CampaignOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignOptions")
            .field("threads", &self.threads)
            .field("warm_start", &self.warm_start)
            .field("tracing", &self.tracing)
            .field("progress", &self.progress)
            .field("observer", &self.observer.is_some())
            .field("max_retries", &self.max_retries)
            .field("backoff_ms", &self.backoff_ms)
            .field("deadline_s", &self.deadline_s)
            .field("chaos", &self.chaos.is_some())
            .field("fleet", &self.fleet)
            .finish()
    }
}

impl Default for CampaignOptions {
    /// One worker per available hardware thread; warm-start, tracing and
    /// progress off; one retry with 10 ms base backoff; no watchdog, no
    /// chaos; fleet batching on.
    fn default() -> Self {
        Self {
            threads: available_parallelism(),
            warm_start: false,
            tracing: false,
            progress: false,
            observer: None,
            max_retries: 1,
            backoff_ms: 10,
            deadline_s: None,
            chaos: None,
            fleet: true,
        }
    }
}

impl CampaignOptions {
    /// Starts a validating builder from the defaults.
    #[must_use]
    pub fn builder() -> CampaignOptionsBuilder {
        CampaignOptionsBuilder {
            options: Self::default(),
        }
    }

    /// Configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the warm-start cache is enabled.
    #[must_use]
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Whether span tracing is enabled.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Whether per-scenario progress lines are printed.
    #[must_use]
    pub fn progress(&self) -> bool {
        self.progress
    }

    /// Configured retry budget (attempts beyond the first).
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Base backoff between attempts, milliseconds.
    #[must_use]
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms
    }

    /// Configured per-scenario deadline, if the watchdog is armed.
    #[must_use]
    pub fn deadline_s(&self) -> Option<f64> {
        self.deadline_s
    }

    /// The chaos plan, if one is installed.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosPlan> {
        self.chaos.as_ref()
    }

    /// Whether eligible Monte-Carlo lanes run batched on a
    /// [`PlatformFleet`].
    #[must_use]
    pub fn fleet(&self) -> bool {
        self.fleet
    }
}

/// Validating builder for [`CampaignOptions`].
///
/// Every setter stores its raw value; [`CampaignOptionsBuilder::build`]
/// validates the whole set at once and names the offending field — the
/// same [`ConfigError`] contract as [`PlatformConfig::builder`]. Unlike
/// the removed legacy `CampaignRunner::with_*` setters, nothing is
/// silently clamped: `threads(0)` is an error here, not a 1.
#[derive(Clone, Debug)]
pub struct CampaignOptionsBuilder {
    options: CampaignOptions,
}

impl CampaignOptionsBuilder {
    /// Worker-thread count (must be ≥ 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Enables (or disables) the settle-checkpoint warm-start cache.
    #[must_use]
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.options.warm_start = enabled;
        self
    }

    /// Enables (or disables) span tracing (campaign → scenario → step
    /// spans in the report's [`TraceLog`]). Never changes simulation
    /// arithmetic.
    #[must_use]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.options.tracing = enabled;
        self
    }

    /// Enables (or disables) one-line per-scenario progress on stdout.
    #[must_use]
    pub fn progress(mut self, enabled: bool) -> Self {
        self.options.progress = enabled;
        self
    }

    /// Installs a progress observer (e.g. a live metrics endpoint).
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.options.observer = Some(observer);
        self
    }

    /// Retry budget for failed scenarios (attempts beyond the first;
    /// default 1). Retries keep the derived seed unchanged, so a retried
    /// success is byte-identical to a first-try one.
    #[must_use]
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.options.max_retries = max_retries;
        self
    }

    /// Base backoff between attempts, milliseconds (doubles per retry,
    /// capped at 64× base; default 10, must be ≤ 60 000). Wall-clock
    /// only — never part of the deterministic artifacts.
    #[must_use]
    pub fn backoff_ms(mut self, backoff_ms: u64) -> Self {
        self.options.backoff_ms = backoff_ms;
        self
    }

    /// Arms the watchdog with a per-attempt wall-clock deadline in
    /// seconds (must be finite and > 0). Overrunning attempts are
    /// cancelled cooperatively and recorded as
    /// [`ScenarioError::TimedOut`].
    #[must_use]
    pub fn deadline_s(mut self, seconds: f64) -> Self {
        self.options.deadline_s = Some(seconds);
        self
    }

    /// Installs a deterministic chaos plan (seeded worker panics and
    /// stalls); see [`ChaosPlan`].
    #[must_use]
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.options.chaos = Some(plan);
        self
    }

    /// Enables (or disables, e.g. to force the scalar reference path in
    /// an equivalence test) batched [`PlatformFleet`] execution of
    /// eligible Monte-Carlo lanes. Default on; never changes results,
    /// only wall-clock time.
    #[must_use]
    pub fn fleet(mut self, enabled: bool) -> Self {
        self.options.fleet = enabled;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending field: zero threads, a
    /// non-finite or non-positive deadline, a backoff base above 60 s, or
    /// a chaos plan with a negative / non-finite stall cap.
    pub fn build(self) -> Result<CampaignOptions, ConfigError> {
        let o = &self.options;
        if o.threads == 0 {
            return Err(ConfigError::new("threads: must be at least 1"));
        }
        if let Some(d) = o.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(ConfigError::new(format!(
                    "deadline_s: must be finite and > 0 (got {d})"
                )));
            }
        }
        if o.backoff_ms > 60_000 {
            return Err(ConfigError::new(format!(
                "backoff_ms: must be ≤ 60000 (got {})",
                o.backoff_ms
            )));
        }
        if let Some(plan) = &o.chaos {
            if !plan.stall_cap_s.is_finite() || plan.stall_cap_s < 0.0 {
                return Err(ConfigError::new(format!(
                    "chaos.stall_cap_s: must be finite and ≥ 0 (got {})",
                    plan.stall_cap_s
                )));
            }
        }
        Ok(self.options)
    }
}

/// Executes scenario lists on a fixed worker-thread pool.
///
/// Each scenario gets its own independent [`Platform`]; results come back
/// in input order and are numerically identical for any thread count (see
/// the module docs). Configure it with [`CampaignOptions`]:
///
/// ```
/// use ascp_core::campaign::{CampaignOptions, CampaignRunner};
/// let runner = CampaignRunner::with_options(
///     CampaignOptions::builder().threads(2).build().expect("valid"),
/// );
/// assert_eq!(runner.options().threads(), 2);
/// ```
///
/// # Warm-start cache
///
/// With `CampaignOptions::builder().warm_start(true)`, scenarios that
/// share a settle recipe — the same effective configuration (including
/// the effective noise seed) and the same leading run-in steps — share
/// the cost of the lock transient. The first scenario per key runs its
/// settle prefix and takes a [`crate::checkpoint`]; the rest restore
/// that checkpoint and run only their measurement steps. Because the
/// cache key covers the effective seed, a restored platform is **bit-
/// exactly** the platform a cold run would have produced, so warm-start
/// changes wall-clock time and nothing else: reports stay byte-identical
/// to cold runs and across worker-thread counts.
#[derive(Clone, Debug)]
pub struct CampaignRunner {
    options: CampaignOptions,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl CampaignRunner {
    /// Runner with the default options (see [`CampaignOptions::default`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            options: CampaignOptions::default(),
        }
    }

    /// Runner with validated options (the only configuration
    /// path).
    #[must_use]
    pub fn with_options(options: CampaignOptions) -> Self {
        Self { options }
    }

    /// The runner's options.
    #[must_use]
    pub fn options(&self) -> &CampaignOptions {
        &self.options
    }

    /// Configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.options.threads
    }

    /// Configured retry budget.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.options.max_retries
    }

    /// Configured per-scenario deadline, if the watchdog is armed.
    #[must_use]
    pub fn deadline_s(&self) -> Option<f64> {
        self.options.deadline_s
    }

    /// Whether the warm-start cache is enabled.
    #[must_use]
    pub fn warm_start(&self) -> bool {
        self.options.warm_start
    }

    /// Whether span tracing is enabled.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.options.tracing
    }

    /// Runs every scenario (Monte-Carlo specs expanded into their lanes
    /// first) and merges the outcomes.
    ///
    /// Infallible: supervision turns worker failures into per-scenario
    /// outcomes, never a campaign abort. Check
    /// [`CampaignReport::poisoned`] for quarantined scenarios.
    ///
    /// # Panics
    ///
    /// Never in practice — only if the (journal-less) execution core
    /// reports a journal error, which it cannot.
    #[must_use]
    pub fn run(&self, scenarios: Vec<ScenarioSpec>) -> CampaignReport {
        let (scenarios, parents) = expand_monte_carlo(scenarios);
        self.run_campaign(scenarios, &parents, Vec::new(), None)
            .expect("campaign without a journal cannot fail")
    }

    /// Runs the campaign while journaling each completed scenario to
    /// `path` (created fresh), so a crashed or killed campaign can be
    /// [`CampaignRunner::resume`]d. Journal records (and the campaign
    /// digest) are keyed by the **expanded** scenario list: Monte-Carlo
    /// lanes journal individually, so a crash mid-population loses only
    /// unfinished lanes.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the journal file cannot be created or
    /// written.
    pub fn run_with_journal(
        &self,
        scenarios: Vec<ScenarioSpec>,
        path: impl AsRef<Path>,
    ) -> Result<CampaignReport, JournalError> {
        let (scenarios, parents) = expand_monte_carlo(scenarios);
        let digest = journal::campaign_digest(&scenarios);
        let writer = JournalWriter::create(path, digest)?;
        self.run_campaign(scenarios, &parents, Vec::new(), Some(&writer))
    }

    /// Resumes a journaled campaign: scenarios recorded in `path` are
    /// loaded instead of re-executed (a torn final record is discarded;
    /// duplicate records last-wins), the rest run normally, and the
    /// merged report is byte-identical to an uninterrupted
    /// [`CampaignRunner::run_with_journal`] at any thread count. A
    /// missing journal file starts a fresh journaled run.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the journal exists but was written by a
    /// different campaign (config-digest mismatch), is not a journal
    /// file, or cannot be read/appended.
    pub fn resume(
        &self,
        scenarios: Vec<ScenarioSpec>,
        path: impl AsRef<Path>,
    ) -> Result<CampaignReport, JournalError> {
        let path = path.as_ref();
        let (scenarios, parents) = expand_monte_carlo(scenarios);
        let digest = journal::campaign_digest(&scenarios);
        if !path.exists() {
            let writer = JournalWriter::create(path, digest)?;
            return self.run_campaign(scenarios, &parents, Vec::new(), Some(&writer));
        }
        let recorded = journal::read(path, digest)?;
        let total = scenarios.len();
        let preloaded: Vec<ScenarioOutcome> =
            recorded.into_iter().filter(|o| o.index < total).collect();
        let writer = JournalWriter::append_to(path, digest)?;
        self.run_campaign(scenarios, &parents, preloaded, Some(&writer))
    }

    /// Partitions the remaining work into pool units: runs of consecutive
    /// fleet-eligible Monte-Carlo sibling lanes become
    /// [`WorkUnit::Fleet`] groups of at most [`FLEET_GROUP_MAX`] lanes;
    /// everything else runs scalar. Grouping is disabled wholesale when a
    /// runner feature the fleet cannot express is on (warm-start cache,
    /// span tracing, chaos injection) — those campaigns run every lane
    /// scalar, with byte-identical results.
    fn plan_units(
        &self,
        work: Vec<(usize, ScenarioSpec)>,
        parents: &[Option<usize>],
    ) -> Vec<WorkUnit> {
        let fleet_allowed = self.options.fleet
            && !self.options.warm_start
            && !self.options.tracing
            && self.options.chaos.is_none();
        let mut units: Vec<WorkUnit> = Vec::new();
        for (index, spec) in work {
            let parent = parents.get(index).copied().flatten();
            if fleet_allowed && parent.is_some() && fleet_eligible(&spec) {
                if let Some(WorkUnit::Fleet(group)) = units.last_mut() {
                    if parents[group[0].0] == parent && group.len() < FLEET_GROUP_MAX {
                        group.push((index, spec));
                        continue;
                    }
                }
                units.push(WorkUnit::Fleet(vec![(index, spec)]));
            } else {
                units.push(WorkUnit::Single(Box::new((index, spec))));
            }
        }
        // A one-lane fleet is scalar execution plus sync overhead: demote.
        for unit in &mut units {
            if let WorkUnit::Fleet(group) = unit {
                if group.len() == 1 {
                    *unit = WorkUnit::Single(Box::new(group.pop().expect("length checked")));
                }
            }
        }
        units
    }

    /// The execution core: runs every scenario not already `preloaded`
    /// under supervision (panic isolation, watchdog, retry, chaos),
    /// journals completions, and merges everything in input order.
    /// `parents` maps each expanded index to its Monte-Carlo parent
    /// (`None` for plain scenarios) and keys fleet grouping.
    #[allow(clippy::too_many_lines)]
    fn run_campaign(
        &self,
        scenarios: Vec<ScenarioSpec>,
        parents: &[Option<usize>],
        preloaded: Vec<ScenarioOutcome>,
        writer: Option<&JournalWriter>,
    ) -> Result<CampaignReport, JournalError> {
        let start = Instant::now();
        let total = scenarios.len();
        let resumed = preloaded.len();
        let done_indices: HashSet<usize> = preloaded.iter().map(|o| o.index).collect();
        let work: Vec<(usize, ScenarioSpec)> = scenarios
            .into_iter()
            .enumerate()
            .filter(|(index, _)| !done_indices.contains(index))
            .collect();
        let units = self.plan_units(work, parents);
        // Identity of each unit's lanes, kept outside the pool so even a
        // scenario whose slot comes back empty gets a typed placeholder.
        let meta: Vec<Vec<(usize, String, u64)>> = units
            .iter()
            .map(|unit| {
                unit.lanes()
                    .iter()
                    .map(|(index, spec)| {
                        let seed = spec
                            .seed
                            .unwrap_or_else(|| derive_seed(spec.config.seed, *index as u64));
                        (*index, spec.name.clone(), seed)
                    })
                    .collect()
            })
            .collect();
        let cache = self.options.warm_start.then(WarmCache::default);
        let hits = AtomicUsize::new(0);
        let done = AtomicUsize::new(resumed);
        let collector = self.options.tracing.then(TraceCollector::new);
        // The campaign root span lives on track 0; scenario tracks are
        // `index + 1`.
        let mut root = collector.as_ref().map(|c| {
            let mut rec = c.recorder(0);
            let id = rec.begin("campaign", 0.0);
            (rec, id)
        });
        let watchdog = self
            .options
            .deadline_s
            .map(|d| Watchdog::spawn(units.len(), d));
        let journal_failure: Mutex<Option<JournalError>> = Mutex::new(None);

        // Journals one finished outcome and emits its progress line
        // (shared by the scalar and fleet arms below).
        let finish = |out: &ScenarioOutcome, wall_ms: f64, warm: Option<bool>| {
            if let Some(writer) = writer {
                if let Err(e) = writer.append(out) {
                    let mut parked = journal_failure
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    parked.get_or_insert(e);
                }
            }
            let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.options.progress || self.options.observer.is_some() {
                let progress = ScenarioProgress {
                    index: out.index,
                    total,
                    name: out.name.clone(),
                    wall_ms,
                    warm,
                    triggered: out.capture.is_some(),
                    completed,
                    retries: out.retries(),
                    status: out.status,
                };
                if self.options.progress {
                    println!("{progress}");
                }
                if let Some(obs) = self.options.observer.as_deref() {
                    obs.scenario_finished(&progress);
                }
            }
        };

        let slots = try_parallel_map(units, self.options.threads, |slot, unit| {
            let t0 = Instant::now();
            let ctx = AttemptCtx {
                watchdog: watchdog.as_ref(),
                slot,
            };
            match unit {
                WorkUnit::Single(lane) => {
                    let (index, spec) = *lane;
                    let mut errors: Vec<ScenarioError> = Vec::new();
                    let (out, warm_hit) = loop {
                        let attempt = errors.len() as u32;
                        if attempt > 0 {
                            let factor = 1u64 << u64::from((attempt - 1).min(6));
                            std::thread::sleep(Duration::from_millis(
                                self.options.backoff_ms * factor,
                            ));
                        }
                        ctx.arm();
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            run_attempt(
                                index,
                                attempt,
                                &spec,
                                cache.as_ref(),
                                &hits,
                                collector.as_ref(),
                                ctx,
                                self.options.chaos.as_ref(),
                            )
                        }));
                        ctx.disarm();
                        let attempt_result = caught.unwrap_or_else(|payload| {
                            Err(ScenarioError::Panicked {
                                message: panic_message(payload.as_ref()),
                            })
                        });
                        match attempt_result {
                            Ok((mut out, warm_hit)) => {
                                out.attempt_errors.clone_from(&errors);
                                break (out, warm_hit);
                            }
                            Err(err) => {
                                errors.push(err);
                                if errors.len() > self.options.max_retries as usize {
                                    let seed = spec.seed.unwrap_or_else(|| {
                                        derive_seed(spec.config.seed, index as u64)
                                    });
                                    break (
                                        poisoned_outcome(index, &spec.name, seed, errors),
                                        false,
                                    );
                                }
                            }
                        }
                    };
                    finish(
                        &out,
                        t0.elapsed().as_secs_f64() * 1.0e3,
                        cache.as_ref().map(|_| warm_hit),
                    );
                    vec![out]
                }
                WorkUnit::Fleet(lanes) => {
                    let mut errors: Vec<ScenarioError> = Vec::new();
                    let outs = loop {
                        let attempt = errors.len() as u32;
                        if attempt > 0 {
                            let factor = 1u64 << u64::from((attempt - 1).min(6));
                            std::thread::sleep(Duration::from_millis(
                                self.options.backoff_ms * factor,
                            ));
                        }
                        ctx.arm();
                        let caught =
                            catch_unwind(AssertUnwindSafe(|| run_fleet_attempt(&lanes, ctx)));
                        ctx.disarm();
                        let attempt_result = caught.unwrap_or_else(|payload| {
                            Err(ScenarioError::Panicked {
                                message: panic_message(payload.as_ref()),
                            })
                        });
                        match attempt_result {
                            Ok(mut outs) => {
                                for out in &mut outs {
                                    out.attempt_errors.clone_from(&errors);
                                }
                                break outs;
                            }
                            Err(err) => {
                                errors.push(err);
                                if errors.len() > self.options.max_retries as usize {
                                    // The group fails whole: every lane is
                                    // quarantined with the shared history.
                                    break lanes
                                        .iter()
                                        .map(|(index, spec)| {
                                            let seed = spec.seed.unwrap_or_else(|| {
                                                derive_seed(spec.config.seed, *index as u64)
                                            });
                                            poisoned_outcome(
                                                *index,
                                                &spec.name,
                                                seed,
                                                errors.clone(),
                                            )
                                        })
                                        .collect();
                                }
                            }
                        }
                    };
                    // Wall time amortized over the batch: the lanes ran as
                    // one lockstep unit.
                    let lane_ms = t0.elapsed().as_secs_f64() * 1.0e3 / outs.len().max(1) as f64;
                    for out in &outs {
                        finish(out, lane_ms, None);
                    }
                    outs
                }
            }
        });
        drop(watchdog); // stops the scanner thread

        let mut outcomes = preloaded;
        outcomes.reserve(slots.len());
        for (slot, result) in slots.into_iter().enumerate() {
            match result {
                Ok(outs) => outcomes.extend(outs),
                // The supervised closure itself failed — convert the pool
                // error into quarantined placeholders so the report still
                // covers every scenario of the unit.
                Err(e) => {
                    for (index, name, seed) in &meta[slot] {
                        let err = match &e {
                            MapError::Panicked { message } => ScenarioError::Panicked {
                                message: message.clone(),
                            },
                            MapError::Missing => ScenarioError::Missing,
                        };
                        outcomes.push(poisoned_outcome(*index, name, *seed, vec![err]));
                    }
                }
            }
        }
        outcomes.sort_by_key(|o| o.index);

        if let Some(e) = journal_failure
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(e);
        }

        let poisoned = outcomes.iter().filter(|o| o.failed()).count();
        let retries: usize = outcomes.iter().map(ScenarioOutcome::retries).sum();
        let trace = collector.map(|c| {
            if let Some((mut rec, id)) = root.take() {
                rec.annotate(id, "scenarios", total.to_string());
                rec.annotate(id, "resumed", resumed.to_string());
                rec.annotate(id, "retries", retries.to_string());
                rec.annotate(id, "poisoned", poisoned.to_string());
                rec.end(id, 0.0);
                c.merge(rec);
            }
            c.into_log()
        });
        Ok(CampaignReport {
            outcomes,
            threads: self.options.threads,
            wall_s: start.elapsed().as_secs_f64(),
            warm_hits: hits.load(Ordering::Relaxed),
            resumed,
            trace,
        })
    }
}

/// Maximum Monte-Carlo lanes batched onto one [`PlatformFleet`] work
/// unit. Sixteen AVX2 f64 lanes keep the SoA buffers inside L1/L2 while
/// leaving enough units for the worker pool to balance.
const FLEET_GROUP_MAX: usize = 16;

/// One unit of pool work: a scalar scenario, or consecutive Monte-Carlo
/// sibling lanes batched onto one [`PlatformFleet`].
enum WorkUnit {
    Single(Box<(usize, ScenarioSpec)>),
    Fleet(Vec<(usize, ScenarioSpec)>),
}

impl WorkUnit {
    /// The unit's lanes in input order (a single scenario is one lane).
    fn lanes(&self) -> &[(usize, ScenarioSpec)] {
        match self {
            Self::Single(lane) => std::slice::from_ref(lane),
            Self::Fleet(lanes) => lanes,
        }
    }
}

/// Whether a lane spec can run on the batched fleet path: only the
/// lockstep-safe step vocabulary, no monitor CPU, no fault plans, and a
/// configuration that validates. Anything subtler — armed recorders,
/// gated paths, non-uniform lane state — is caught by
/// [`PlatformFleet::new`] at attempt time, which falls back to scalar
/// execution with identical results.
fn fleet_eligible(spec: &ScenarioSpec) -> bool {
    spec.config.validate().is_ok()
        && !spec.config.cpu_enabled
        && spec.config.faults.is_empty()
        && spec.faults.is_empty()
        && spec.steps.iter().all(|s| {
            matches!(
                s,
                Step::Run { .. }
                    | Step::SetRate { .. }
                    | Step::SetTemperature { .. }
                    | Step::MeasureMeanRate { .. }
            )
        })
}

/// Uniform draw in [-1, 1) for one dispersion channel of one lane,
/// derived from the lane seed with the same splitmix mixing as
/// [`derive_seed`] (channel ↦ independent stream).
fn dispersion_draw(lane_seed: u64, channel: u64) -> f64 {
    let bits = derive_seed(lane_seed, channel);
    (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// Applies one lane's dispersion draws to its configuration (see the
/// [`Dispersion`] field table).
fn disperse_config(config: &mut PlatformConfig, d: &Dispersion, lane_seed: u64) {
    let g = &mut config.gyro;
    g.f0 = Hertz(g.f0.0 * (1.0 + d.omega_frac * dispersion_draw(lane_seed, 0)));
    g.q_drive *= 1.0 + d.q_frac * dispersion_draw(lane_seed, 1);
    g.q_sense *= 1.0 + d.q_frac * dispersion_draw(lane_seed, 2);
    g.quadrature_rate =
        DegPerSec(g.quadrature_rate.0 + d.offset_dps * dispersion_draw(lane_seed, 3));
    config.charge_gain *= 1.0 + d.gain_frac * dispersion_draw(lane_seed, 4);
}

/// Expands every Monte-Carlo spec into its dispersed lanes, in input
/// order. Lane `i` of a spec becomes scenario `{name}/mc{i}` with seed
/// `derive_seed(base, expanded_index)` — `base` being the spec's seed
/// override or its config seed — and a configuration perturbed by the
/// spec's [`Dispersion`] drawn from that same lane seed. Returns the
/// expanded list plus, per expanded index, the input index of the
/// Monte-Carlo parent (`None` for plain scenarios): the grouping key for
/// batched fleet execution.
fn expand_monte_carlo(scenarios: Vec<ScenarioSpec>) -> (Vec<ScenarioSpec>, Vec<Option<usize>>) {
    let mut expanded = Vec::with_capacity(scenarios.len());
    let mut parents = Vec::with_capacity(scenarios.len());
    for (parent, spec) in scenarios.into_iter().enumerate() {
        let Some((lanes, dispersion)) = spec.monte_carlo else {
            expanded.push(spec);
            parents.push(None);
            continue;
        };
        let base = spec.seed.unwrap_or(spec.config.seed);
        for lane in 0..lanes {
            let lane_seed = derive_seed(base, expanded.len() as u64);
            let mut s = spec.clone();
            s.monte_carlo = None;
            s.name = format!("{}/mc{lane}", spec.name);
            s.seed = Some(lane_seed);
            disperse_config(&mut s.config, &dispersion, lane_seed);
            expanded.push(s);
            parents.push(Some(parent));
        }
    }
    (expanded, parents)
}

/// Advances a fleet by `seconds` — identical tick rounding to [`run_for`]
/// — in [`RUN_BLOCK_TICKS`] chunks so a pending watchdog cancellation is
/// observed between chunks.
fn fleet_run_for(
    fleet: &mut PlatformFleet,
    dsp_rate: f64,
    seconds: f64,
    ctx: AttemptCtx<'_>,
) -> Result<(), Cancelled> {
    let mut ticks = (seconds * dsp_rate).round() as u64;
    while ticks > 0 {
        ctx.check()?;
        let block = ticks.min(RUN_BLOCK_TICKS);
        fleet.step_block(block);
        ticks -= block;
    }
    Ok(())
}

/// Runs one attempt of a group of Monte-Carlo sibling lanes batched on a
/// [`PlatformFleet`]: the SoA transcription of [`run_attempt`] restricted
/// to the fleet-safe step vocabulary ([`fleet_eligible`]). Outcomes are
/// byte-identical to running each lane through the scalar path — the
/// fleet's determinism contract. If the built platforms turn out
/// fleet-ineligible after all (e.g. an armed recorder), the lanes fall
/// back to scalar execution inside this same attempt, with identical
/// results.
fn run_fleet_attempt(
    lanes: &[(usize, ScenarioSpec)],
    ctx: AttemptCtx<'_>,
) -> Result<Vec<ScenarioOutcome>, ScenarioError> {
    let dummy_hits = AtomicUsize::new(0);
    let mut outs = Vec::with_capacity(lanes.len());
    let mut platforms = Vec::with_capacity(lanes.len());
    for (index, spec) in lanes {
        let mut config = spec.config.clone();
        let seed = spec
            .seed
            .unwrap_or_else(|| derive_seed(config.seed, *index as u64));
        config.seed = seed;
        outs.push(ScenarioOutcome {
            name: spec.name.clone(),
            index: *index,
            seed,
            metrics: Vec::new(),
            series: Vec::new(),
            // Eligibility guarantees empty fault plans, so the scalar
            // path's class scrape is vacuous here.
            fault_classes: Vec::new(),
            transitions: Vec::new(),
            capture: None,
            attempt_errors: Vec::new(),
            status: ScenarioStatus::Done,
        });
        platforms.push(Platform::new(config));
    }
    let mut fleet = match PlatformFleet::new(platforms) {
        Ok(fleet) => fleet,
        // Grouping is an optimistic fast path: anything the fleet's own
        // eligibility check rejects runs scalar in this same slot.
        Err(_ineligible) => {
            return lanes
                .iter()
                .map(|(index, spec)| {
                    run_attempt(*index, 0, spec, None, &dummy_hits, None, ctx, None)
                        .map(|(out, _)| out)
                })
                .collect();
        }
    };
    // Monte-Carlo siblings share their parent's steps, duration, and DSP
    // rate; only seeds and dispersed physical parameters differ.
    let spec0 = &lanes[0].1;
    let dsp_rate = spec0.config.dsp_rate.0;
    let timed_out = |_: Cancelled| ScenarioError::TimedOut {
        deadline_s: ctx.deadline_s().unwrap_or(0.0),
    };
    let mut acc = vec![0.0; lanes.len()];
    for step in &spec0.steps {
        match step {
            Step::Run { seconds } => {
                fleet_run_for(&mut fleet, dsp_rate, *seconds, ctx).map_err(timed_out)?;
            }
            Step::SetRate { dps } => fleet.for_each_platform(|p| p.set_rate(DegPerSec(*dps))),
            Step::SetTemperature { celsius } => {
                fleet.for_each_platform(|p| p.set_temperature(Celsius(*celsius)));
            }
            Step::MeasureMeanRate { label, window_s } => {
                // Mirrors [`mean_rate`] tick-for-tick, accumulating every
                // lane from the same lockstep sweep.
                let ticks = ((window_s * dsp_rate).round() as u64).max(1);
                acc.iter_mut().for_each(|a| *a = 0.0);
                for i in 0..ticks {
                    if i % HEARTBEAT_TICKS == 0 {
                        ctx.check().map_err(timed_out)?;
                    }
                    fleet.step();
                    for (lane, a) in acc.iter_mut().enumerate() {
                        *a += fleet.rate_output_dps(lane);
                    }
                }
                for (lane, out) in outs.iter_mut().enumerate() {
                    out.metrics.push((label.clone(), acc[lane] / ticks as f64));
                }
            }
            other => unreachable!("non-fleet step `{}` grouped onto a fleet", other.label()),
        }
    }
    if fleet.time() < spec0.duration_s {
        let remaining = spec0.duration_s - fleet.time();
        fleet_run_for(&mut fleet, dsp_rate, remaining, ctx).map_err(timed_out)?;
    }
    let mut members = fleet.into_platforms();
    for (out, p) in outs.iter_mut().zip(&mut members) {
        out.transitions.extend(scrape_transitions(p));
        out.capture = p.take_capture();
        if p.recorder().is_some() {
            out.metrics.push((
                "recorder_triggered".into(),
                f64::from(u8::from(out.capture.is_some())),
            ));
        }
    }
    Ok(outs)
}

/// The quarantined outcome of a scenario that failed every attempt.
fn poisoned_outcome(
    index: usize,
    name: &str,
    seed: u64,
    errors: Vec<ScenarioError>,
) -> ScenarioOutcome {
    ScenarioOutcome {
        name: name.to_owned(),
        index,
        seed,
        metrics: Vec::new(),
        series: Vec::new(),
        fault_classes: Vec::new(),
        transitions: Vec::new(),
        capture: None,
        attempt_errors: errors,
        status: ScenarioStatus::Poisoned,
    }
}

/// Ticks per cancellation check inside tick-stepped measurement loops.
const HEARTBEAT_TICKS: u64 = 1024;

/// Ticks per [`Platform::step_block`] chunk inside [`run_for`].
const RUN_BLOCK_TICKS: u64 = 4096;

/// Marker error: the watchdog cancelled this attempt.
struct Cancelled;

/// Per-attempt-slot watchdog state.
struct WatchdogSlot {
    armed: AtomicBool,
    cancelled: AtomicBool,
    armed_at_ms: AtomicU64,
    heartbeat_ms: AtomicU64,
}

/// State shared between workers and the scanner thread.
struct WatchdogShared {
    slots: Vec<WatchdogSlot>,
    epoch: Instant,
    deadline: Duration,
    shutdown: AtomicBool,
}

impl WatchdogShared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Deadline enforcement for scenario attempts: workers arm a slot when an
/// attempt starts and heartbeat from cancellation points; a scanner
/// thread marks slots whose attempt has outlived the deadline, and the
/// worker observes the mark cooperatively (at step boundaries and run
/// chunks) — the pool keeps draining while an overrunner winds down.
struct Watchdog {
    shared: Arc<WatchdogShared>,
    scanner: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn spawn(slots: usize, deadline_s: f64) -> Self {
        let shared = Arc::new(WatchdogShared {
            slots: (0..slots)
                .map(|_| WatchdogSlot {
                    armed: AtomicBool::new(false),
                    cancelled: AtomicBool::new(false),
                    armed_at_ms: AtomicU64::new(0),
                    heartbeat_ms: AtomicU64::new(0),
                })
                .collect(),
            epoch: Instant::now(),
            deadline: Duration::from_secs_f64(deadline_s.max(0.0)),
            shutdown: AtomicBool::new(false),
        });
        let scan = Arc::clone(&shared);
        let scanner = std::thread::spawn(move || {
            let deadline_ms = scan.deadline.as_millis() as u64;
            while !scan.shutdown.load(Ordering::SeqCst) {
                let now = scan.now_ms();
                for slot in &scan.slots {
                    if slot.armed.load(Ordering::SeqCst)
                        && now.saturating_sub(slot.armed_at_ms.load(Ordering::SeqCst)) > deadline_ms
                    {
                        slot.cancelled.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        Self {
            shared,
            scanner: Some(scanner),
        }
    }

    fn deadline_s(&self) -> f64 {
        self.shared.deadline.as_secs_f64()
    }

    fn arm(&self, slot: usize) {
        let s = &self.shared.slots[slot];
        let now = self.shared.now_ms();
        s.cancelled.store(false, Ordering::SeqCst);
        s.armed_at_ms.store(now, Ordering::SeqCst);
        s.heartbeat_ms.store(now, Ordering::SeqCst);
        s.armed.store(true, Ordering::SeqCst);
    }

    fn disarm(&self, slot: usize) {
        self.shared.slots[slot].armed.store(false, Ordering::SeqCst);
    }

    fn heartbeat(&self, slot: usize) {
        self.shared.slots[slot]
            .heartbeat_ms
            .store(self.shared.now_ms(), Ordering::SeqCst);
    }

    fn cancelled(&self, slot: usize) -> bool {
        self.shared.slots[slot].cancelled.load(Ordering::SeqCst)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.scanner.take() {
            let _ = handle.join();
        }
    }
}

/// A worker's handle on the watchdog for one scenario attempt (no-op when
/// the watchdog is unarmed).
#[derive(Clone, Copy)]
struct AttemptCtx<'a> {
    watchdog: Option<&'a Watchdog>,
    slot: usize,
}

impl AttemptCtx<'_> {
    /// A context with no watchdog (warm-prefix execution, tests).
    const NONE: AttemptCtx<'static> = AttemptCtx {
        watchdog: None,
        slot: 0,
    };

    fn arm(&self) {
        if let Some(w) = self.watchdog {
            w.arm(self.slot);
        }
    }

    fn disarm(&self) {
        if let Some(w) = self.watchdog {
            w.disarm(self.slot);
        }
    }

    /// Heartbeats and observes a pending cancellation.
    fn check(&self) -> Result<(), Cancelled> {
        match self.watchdog {
            Some(w) => {
                w.heartbeat(self.slot);
                if w.cancelled(self.slot) {
                    Err(Cancelled)
                } else {
                    Ok(())
                }
            }
            None => Ok(()),
        }
    }

    /// Whether the slot has been cancelled (no heartbeat side effect).
    fn cancelled(&self) -> bool {
        self.watchdog.is_some_and(|w| w.cancelled(self.slot))
    }

    fn deadline_s(&self) -> Option<f64> {
        self.watchdog.map(Watchdog::deadline_s)
    }
}

/// One cached settle: the checkpoint taken after the settle prefix plus
/// the metrics those prefix steps recorded (replayed into every outcome
/// that restores this entry) and whether the prefix aborted (bring-up
/// failure: the remaining steps are skipped, exactly as on a cold run).
struct WarmEntry {
    checkpoint: Vec<u8>,
    metrics: Vec<(String, f64)>,
    /// Supervisor transitions the prefix produced. Checkpoints skip
    /// telemetry, so a restored platform starts with an empty event log;
    /// replaying these keeps warm outcomes byte-identical to cold ones.
    transitions: Vec<(&'static str, &'static str)>,
    aborted: bool,
}

/// Supervisor `(from, to)` transition pairs retained in the event log.
fn scrape_transitions(p: &Platform) -> Vec<(&'static str, &'static str)> {
    p.telemetry()
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::SupervisorTransition { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect()
}

/// Keyed settle-checkpoint store shared by all campaign workers.
///
/// Each key maps to a [`OnceLock`]: the first scenario to claim it runs
/// the settle prefix while any siblings with the same key block, then
/// everyone restores the one checkpoint.
#[derive(Default)]
struct WarmCache {
    entries: Mutex<HashMap<u64, Arc<OnceLock<WarmEntry>>>>,
}

impl WarmCache {
    fn slot(&self, key: u64) -> Arc<OnceLock<WarmEntry>> {
        self.entries
            .lock()
            .expect("warm cache poisoned")
            .entry(key)
            .or_default()
            .clone()
    }
}

/// Number of leading steps that form the scenario's settle prefix:
/// bring-up, environment and calibration, but no measurement and no rate
/// stimulus. [`Step::SetRate`] ends the prefix because the applied rate
/// is what varies across a rate table — settling happens at zero rate so
/// sibling scenarios can share it. `Measure*`, `Capture*` and
/// [`Step::FaultResponse`] end it because their work is the measurement
/// itself.
fn settle_prefix_len(steps: &[Step]) -> usize {
    steps
        .iter()
        .take_while(|s| {
            matches!(
                s,
                Step::ArmWatchdog { .. }
                    | Step::WaitReady { .. }
                    | Step::WaitSupervisorNormal { .. }
                    | Step::Run { .. }
                    | Step::SetTemperature { .. }
                    | Step::FreezeAgcDrive { .. }
                    | Step::TrimRebalancePhase { .. }
            )
        })
        .count()
}

/// Warm-start cache key: the effective configuration digest (which covers
/// the effective seed and the merged fault specs) mixed with a canonical
/// encoding of the settle-prefix steps.
fn warm_key(config: &PlatformConfig, prefix: &[Step]) -> u64 {
    let canon = format!("{:#018x}|{prefix:?}", checkpoint::config_digest(config));
    fnv1a64(canon.as_bytes())
}

/// Runs the settle prefix cold and packages the result for the cache.
///
/// Uncancellable by design ([`AttemptCtx::NONE`]): the produced entry is
/// shared by every sibling scenario with the same key, so it must never
/// be a partial artifact of one worker's deadline.
fn warm_prefix(config: &PlatformConfig, prefix: &[Step]) -> WarmEntry {
    let mut p = Platform::new(config.clone());
    let mut out = ScenarioOutcome {
        name: String::new(),
        index: 0,
        seed: config.seed,
        metrics: Vec::new(),
        series: Vec::new(),
        fault_classes: Vec::new(),
        transitions: Vec::new(),
        capture: None,
        attempt_errors: Vec::new(),
        status: ScenarioStatus::Done,
    };
    let mut scratch = Scratch::default();
    let mut aborted = false;
    for step in prefix {
        match apply_step(&mut p, step, &mut out, &mut scratch, AttemptCtx::NONE) {
            Ok(true) => {}
            // `Err(Cancelled)` is unreachable with a null context; treat
            // it like an abort for totality.
            Ok(false) | Err(Cancelled) => {
                aborted = true;
                break;
            }
        }
    }
    WarmEntry {
        checkpoint: checkpoint::save(&p),
        metrics: out.metrics,
        transitions: scrape_transitions(&p),
        aborted,
    }
}

/// Mixes the config seed with the scenario index (splitmix64 finalizer) so
/// sibling scenarios decorrelate while staying thread-count independent.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-scenario interpreter state carried between steps.
#[derive(Default)]
struct Scratch {
    /// Sensitivity from the last static-transfer measurement (V per °/s).
    sensitivity: Option<f64>,
}

/// Runs one attempt of one scenario.
///
/// `Err` means the attempt was cancelled by the watchdog (a panic
/// propagates to the caller's `catch_unwind` instead); `Ok` carries the
/// outcome plus whether the warm cache hit. Chaos injections fire before
/// the platform is built, so an injected attempt never perturbs
/// simulation state.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    index: usize,
    attempt: u32,
    spec: &ScenarioSpec,
    cache: Option<&WarmCache>,
    hits: &AtomicUsize,
    collector: Option<&TraceCollector>,
    ctx: AttemptCtx<'_>,
    chaos: Option<&ChaosPlan>,
) -> Result<(ScenarioOutcome, bool), ScenarioError> {
    if let Some(plan) = chaos {
        match plan.decide(index, attempt) {
            ChaosInjection::Panic => {
                panic!("chaos: injected worker panic (scenario {index}, attempt {attempt})")
            }
            ChaosInjection::Stall => {
                // A hung worker: sleeps until the watchdog cancels the
                // slot, capped so unsupervised chaos runs still end. The
                // recorded deadline is the configured limit (min of
                // watchdog deadline and cap), never measured time.
                let cap = plan.stall_cap_s.max(0.0);
                let limit = ctx.deadline_s().map_or(cap, |d| d.min(cap));
                let t0 = Instant::now();
                while !ctx.cancelled() && t0.elapsed().as_secs_f64() < cap {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Err(ScenarioError::TimedOut { deadline_s: limit });
            }
            ChaosInjection::None => {}
        }
    }
    let mut config = spec.config.clone();
    for fault in spec.faults.specs() {
        config.faults.push(*fault);
    }
    let seed = spec
        .seed
        .unwrap_or_else(|| derive_seed(config.seed, index as u64));
    config.seed = seed;
    let fault_classes = {
        let mut classes: Vec<&'static str> = Vec::new();
        for fault in config.faults.specs() {
            let label = fault.kind.label();
            if !classes.contains(&label) {
                classes.push(label);
            }
        }
        classes
    };

    let mut out = ScenarioOutcome {
        name: spec.name.clone(),
        index,
        seed,
        metrics: Vec::new(),
        series: Vec::new(),
        fault_classes,
        transitions: Vec::new(),
        capture: None,
        attempt_errors: Vec::new(),
        status: ScenarioStatus::Done,
    };
    let mut trace = collector.map(|c| c.recorder(index as u64 + 1));
    let span = trace.as_mut().map_or(SpanId::NULL, |tr| {
        tr.begin(format!("scenario:{}", out.name), 0.0)
    });
    if attempt > 0 {
        if let Some(tr) = trace.as_mut() {
            tr.annotate(span, "attempt", attempt.to_string());
        }
    }
    if let Err(e) = config.validate() {
        // An invalid spec is a scenario result, not a campaign abort.
        out.metrics.push(("config_valid".into(), 0.0));
        out.series.push((format!("error: {e}"), Vec::new()));
        if let Some(mut tr) = trace.take() {
            tr.annotate(span, "config_valid", "false");
            tr.end(span, 0.0);
            if let Some(c) = collector {
                c.merge(tr);
            }
        }
        return Ok((out, false));
    }

    let prefix = cache.map_or(0, |_| settle_prefix_len(&spec.steps));
    let mut scratch = Scratch::default();
    let mut warm_hit = false;
    // Warm-cache waits (blocking on a sibling's settle prefix) are not
    // this scenario's own work: exclude them from the deadline budget by
    // disarming around the cache access and re-arming after.
    if prefix > 0 {
        ctx.disarm();
    }
    let (mut p, aborted, resume_at) = match cache {
        Some(cache) if prefix > 0 => {
            let slot = cache.slot(warm_key(&config, &spec.steps[..prefix]));
            let mut warmed_here = false;
            let entry = slot.get_or_init(|| {
                warmed_here = true;
                warm_prefix(&config, &spec.steps[..prefix])
            });
            match checkpoint::restore(config.clone(), &entry.checkpoint) {
                Ok(p) => {
                    warm_hit = !warmed_here;
                    if warm_hit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    out.metrics.extend(entry.metrics.iter().cloned());
                    // Checkpoints skip telemetry: replay the prefix's
                    // transitions so warm outcomes match cold ones.
                    out.transitions.extend(entry.transitions.iter().copied());
                    (p, entry.aborted, prefix)
                }
                // A key collision between different configs is caught by
                // the checkpoint's config digest; fall back to a cold run.
                Err(_) => (Platform::new(config), false, 0),
            }
        }
        _ => (Platform::new(config), false, 0),
    };
    if prefix > 0 {
        ctx.arm();
    }
    if let Some(mut tr) = trace.take() {
        tr.annotate(span, "warm", if warm_hit { "hit" } else { "miss" });
        p.attach_trace(tr);
    }
    let mut cancelled = false;
    if !aborted {
        for step in &spec.steps[resume_at..] {
            let t_begin = p.time();
            let step_span = p
                .trace_mut()
                .map_or(SpanId::NULL, |tr| tr.begin(step.label(), t_begin));
            let step_result = apply_step(&mut p, step, &mut out, &mut scratch, ctx);
            let t_end = p.time();
            if let Some(tr) = p.trace_mut() {
                tr.end(step_span, t_end);
            }
            match step_result {
                Ok(true) => {}
                Ok(false) => break,
                Err(Cancelled) => {
                    cancelled = true;
                    break;
                }
            }
        }
    }
    if !cancelled && p.time() < spec.duration_s {
        let remaining = spec.duration_s - p.time();
        cancelled = run_for(&mut p, remaining, ctx).is_err();
    }
    if cancelled {
        // The attempt's trace recorder dies with the platform: only
        // completed attempts contribute spans.
        return Err(ScenarioError::TimedOut {
            deadline_s: ctx.deadline_s().unwrap_or(0.0),
        });
    }
    // Deterministic observability results: transitions, capture, and (when
    // a recorder was armed) whether it fired.
    out.transitions.extend(scrape_transitions(&p));
    out.capture = p.take_capture();
    if p.recorder().is_some() {
        out.metrics.push((
            "recorder_triggered".into(),
            f64::from(u8::from(out.capture.is_some())),
        ));
    }
    if let Some(mut tr) = p.take_trace() {
        tr.end(span, p.time());
        if let Some(c) = collector {
            c.merge(tr);
        }
    }
    Ok((out, warm_hit))
}

/// Advances `p` by `seconds` — identical tick rounding to
/// [`Platform::run`] — in [`RUN_BLOCK_TICKS`] chunks so a pending
/// watchdog cancellation is observed between chunks.
fn run_for(p: &mut Platform, seconds: f64, ctx: AttemptCtx<'_>) -> Result<(), Cancelled> {
    let mut ticks = (seconds * p.config().dsp_rate.0).round() as u64;
    while ticks > 0 {
        ctx.check()?;
        let block = ticks.min(RUN_BLOCK_TICKS);
        p.step_block(block);
        ticks -= block;
    }
    Ok(())
}

/// Steps `p` until `pred` holds or `timeout_s` elapses; returns the
/// simulation time at which the predicate first held. Heartbeats (and
/// observes cancellation) every [`HEARTBEAT_TICKS`] ticks.
fn run_until(
    p: &mut Platform,
    timeout_s: f64,
    ctx: AttemptCtx<'_>,
    mut pred: impl FnMut(&Platform) -> bool,
) -> Result<Option<f64>, Cancelled> {
    let ticks = (timeout_s * p.config().dsp_rate.0).round() as u64;
    for i in 0..ticks {
        if i % HEARTBEAT_TICKS == 0 {
            ctx.check()?;
        }
        p.step();
        if pred(p) {
            return Ok(Some(p.time()));
        }
    }
    Ok(None)
}

/// Mean rate output (°/s) over `window_s`.
fn mean_rate(p: &mut Platform, window_s: f64, ctx: AttemptCtx<'_>) -> Result<f64, Cancelled> {
    let ticks = ((window_s * p.config().dsp_rate.0).round() as u64).max(1);
    let mut acc = 0.0;
    for i in 0..ticks {
        if i % HEARTBEAT_TICKS == 0 {
            ctx.check()?;
        }
        p.step();
        acc += p.rate_output_dps();
    }
    Ok(acc / ticks as f64)
}

/// Runs one step; `Ok(false)` means the remaining steps must be skipped
/// (bring-up failure), `Err(Cancelled)` that the watchdog cancelled the
/// attempt. Long uncancellable measurement primitives observe a pending
/// cancellation at their boundary ([`AttemptCtx::check`]); tick-stepped
/// loops observe it every [`HEARTBEAT_TICKS`] ticks.
#[allow(clippy::too_many_lines)]
fn apply_step(
    p: &mut Platform,
    step: &Step,
    out: &mut ScenarioOutcome,
    scratch: &mut Scratch,
    ctx: AttemptCtx<'_>,
) -> Result<bool, Cancelled> {
    let push = |out: &mut ScenarioOutcome, name: &str, value: f64| {
        out.metrics.push((name.to_owned(), value));
    };
    match step {
        Step::ArmWatchdog { timeout_cycles } => {
            p.bus_mut().watchdog.write16(1, *timeout_cycles);
            p.bus_mut().watchdog.write16(0, 1);
        }
        Step::WaitReady { timeout_s } => {
            ctx.check()?;
            match p.wait_for_ready(*timeout_s) {
                Some(t) => {
                    push(out, "locked", 1.0);
                    push(out, "turn_on_s", t.0);
                }
                None => {
                    push(out, "locked", 0.0);
                    return Ok(false);
                }
            }
        }
        Step::WaitSupervisorNormal { timeout_s } => {
            match run_until(p, *timeout_s, ctx, |p| {
                p.supervisor().state() == SupervisorState::Normal
            })? {
                Some(t) => push(out, "supervisor_normal_s", t),
                None => {
                    push(out, "supervisor_normal_s", -1.0);
                    return Ok(false);
                }
            }
        }
        Step::Run { seconds } => run_for(p, *seconds, ctx)?,
        Step::SetRate { dps } => p.set_rate(DegPerSec(*dps)),
        Step::SetTemperature { celsius } => p.set_temperature(Celsius(*celsius)),
        Step::FreezeAgcDrive { resettle_s } => {
            let settled_drive = p.chain().drive();
            let mut frozen = p.chain().config().clone();
            frozen.agc.max_drive = settled_drive;
            frozen.agc.kp = 0.0;
            frozen.agc.ki = 1.0e6; // integrator pegs at max_drive = fixed drive
            *p.chain_mut() = ConditioningChain::new(frozen);
            run_for(p, *resettle_s, ctx)?;
        }
        Step::TrimRebalancePhase {
            probe_rate_dps,
            iterations,
        } => {
            ctx.check()?;
            let phase = trim_rebalance_phase(p, *probe_rate_dps, *iterations);
            push(out, "rebalance_phase_rad", phase);
        }
        Step::MeasureMeanRate { label, window_s } => {
            let mean = mean_rate(p, *window_s, ctx)?;
            push(out, label, mean);
        }
        Step::MeasureSensitivity {
            label,
            rate_dps,
            settle_s,
            samples,
        } => {
            ctx.check()?;
            p.set_rate(DegPerSec(*rate_dps));
            let plus = stats::mean(&p.sample_rate_output(*settle_s, *samples));
            p.set_rate(DegPerSec(-rate_dps));
            let minus = stats::mean(&p.sample_rate_output(*settle_s, *samples));
            p.set_rate(DegPerSec(0.0));
            push(out, label, (plus - minus) / (2.0 * rate_dps));
        }
        Step::MeasureLinearity {
            label,
            rates,
            dwell_s,
            settle_s,
            samples,
        } => {
            let mut outs = Vec::with_capacity(rates.len());
            for &r in rates {
                p.set_rate(DegPerSec(r));
                run_for(p, *dwell_s, ctx)?;
                outs.push(stats::mean(&p.sample_rate_output(*settle_s, *samples)));
            }
            p.set_rate(DegPerSec(0.0));
            let full_scale = rates.iter().fold(0.0f64, |m, r| m.max(r.abs()));
            let fit = stats::linear_fit(rates, &outs);
            let pct = fit.max_residual / (fit.slope.abs() * full_scale) * 100.0;
            push(out, label, pct);
        }
        Step::MeasureStaticTransfer {
            rate_points,
            samples_per_point,
        } => {
            ctx.check()?;
            let mut cfg = CharacterizationConfig::default();
            cfg.rate_points.clone_from(rate_points);
            cfg.samples_per_point = *samples_per_point;
            let t = measure_static_transfer(p, &cfg, 25.0);
            scratch.sensitivity = Some(t.sensitivity);
            push(out, "sensitivity_v_per_dps", t.sensitivity);
            push(out, "null_v", t.null);
            push(out, "nonlinearity_pct_fs", t.nonlinearity_pct_fs);
        }
        Step::MeasureNoiseDensity { samples } => {
            ctx.check()?;
            let mut cfg = CharacterizationConfig::default();
            cfg.noise_samples = *samples;
            let sensitivity = scratch.sensitivity.unwrap_or(0.005);
            let noise = measure_noise_density(p, &cfg, sensitivity);
            push(out, "noise_density_dps_rthz", noise);
        }
        Step::CaptureZeroRate {
            label,
            seconds,
            settle_s,
        } => {
            ctx.check()?;
            let fs = p.output_sample_rate();
            let n = (seconds * fs).round() as usize;
            let volts = p.sample_output(*settle_s, n);
            // Nominal transfer: 5 mV/°/s around the 2.5 V null.
            let rate: Vec<f64> = volts.iter().map(|v| (v - 2.5) / 0.005).collect();
            push(out, &format!("{label}_fs_hz"), fs);
            out.series.push((label.clone(), rate));
        }
        Step::FaultResponse {
            t_inject_s,
            t_clear_s,
            detect_budget_s,
            recover_budget_s,
            measure_recovery,
        } => {
            let baseline = mean_rate(p, 0.05, ctx)?;
            push(out, "baseline_dps", baseline);
            // Detection: first departure from Normal after injection.
            let detect_window = (t_inject_s - p.time()).max(0.0) + detect_budget_s;
            let detected_at = run_until(p, detect_window, ctx, |p| {
                p.supervisor().state() != SupervisorState::Normal
            })?;
            match detected_at {
                Some(t) => {
                    push(out, "detected", 1.0);
                    push(out, "detection_latency_s", t - t_inject_s);
                }
                None => push(out, "detected", 0.0),
            }
            if detected_at.is_some() && *measure_recovery {
                // Recovery: first return to Normal after the fault clears.
                let remaining = (t_clear_s - p.time()).max(0.0) + recover_budget_s;
                match run_until(p, remaining, ctx, |p| {
                    p.supervisor().state() == SupervisorState::Normal
                })? {
                    Some(t) => {
                        push(out, "recovered", 1.0);
                        push(out, "recovery_time_s", (t - t_clear_s).max(0.0));
                        push(
                            out,
                            "residual_rate_dps",
                            (mean_rate(p, 0.1, ctx)? - baseline).abs(),
                        );
                    }
                    None => push(out, "recovered", 0.0),
                }
            }
            push(out, "final_state_code", p.supervisor().state().code());
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascp_sim::fault::FaultKind;

    fn quick_cfg() -> PlatformConfig {
        PlatformConfig::builder().quiet().build().expect("valid")
    }

    /// Runner with `threads` workers and otherwise default options.
    fn runner(threads: usize) -> CampaignRunner {
        CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(threads)
                .build()
                .expect("valid options"),
        )
    }

    fn quick_scenarios() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new("a", quick_cfg())
                .with_step(Step::Run { seconds: 0.02 })
                .with_step(Step::SetRate { dps: 80.0 })
                .with_step(Step::MeasureMeanRate {
                    label: "mean_dps".into(),
                    window_s: 0.01,
                }),
            ScenarioSpec::new("b", quick_cfg())
                .with_faults({
                    let mut f = FaultPlan::new();
                    f.one_shot(FaultKind::PllUnlock, 0.01, 0.005);
                    f
                })
                .with_duration(0.03)
                .with_step(Step::Run { seconds: 0.01 }),
        ]
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let serial = runner(1).run(quick_scenarios());
        let parallel = runner(4).run(quick_scenarios());
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn duration_floor_extends_the_run() {
        let report = runner(1).run(quick_scenarios());
        // Scenario "b" runs 0.01 s of steps but has a 0.03 s floor; its
        // fault fired inside the floor, so the plan saw activity.
        assert_eq!(report.outcomes[1].name, "b");
    }

    #[test]
    fn seed_derivation_is_per_index_and_overridable() {
        let cfg = quick_cfg();
        let specs = vec![
            ScenarioSpec::new("x", cfg.clone()),
            ScenarioSpec::new("y", cfg.clone()),
            ScenarioSpec::new("z", cfg).with_seed(42),
        ];
        let report = runner(2).run(specs);
        assert_ne!(report.outcomes[0].seed, report.outcomes[1].seed);
        assert_eq!(report.outcomes[2].seed, 42);
    }

    #[test]
    fn invalid_config_becomes_an_outcome_not_a_panic() {
        let mut spec = ScenarioSpec::new("bad", quick_cfg());
        spec.config.analog_oversample = 0;
        let report = runner(1).run(vec![spec]);
        assert_eq!(report.outcomes[0].metric("config_valid"), Some(0.0));
    }

    /// Sixteen scenarios sharing one settle recipe (same config, same
    /// explicit seed, same lock prefix) but measuring different rates.
    fn shared_settle_scenarios() -> Vec<ScenarioSpec> {
        (0..16)
            .map(|i| {
                let dps = f64::from(i) * 20.0 - 150.0;
                ScenarioSpec::new(format!("rate_{i}"), quick_cfg())
                    .with_seed(7)
                    .with_step(Step::Run { seconds: 0.03 })
                    .with_step(Step::SetRate { dps })
                    .with_step(Step::MeasureMeanRate {
                        label: "mean_dps".into(),
                        window_s: 0.005,
                    })
            })
            .collect()
    }

    #[test]
    fn warm_start_is_byte_identical_to_cold() {
        let cold = runner(2).run(shared_settle_scenarios());
        let warm = CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(2)
                .warm_start(true)
                .build()
                .expect("valid options"),
        )
        .run(shared_settle_scenarios());
        assert_eq!(cold.warm_hits, 0);
        assert_eq!(warm.warm_hits, 15, "15 of 16 scenarios must hit the cache");
        assert_eq!(cold.outcomes, warm.outcomes);
        assert_eq!(cold.to_csv(), warm.to_csv());
    }

    #[test]
    fn warm_start_report_is_identical_across_thread_counts() {
        let runs: Vec<_> = [1, 2, 4]
            .iter()
            .map(|&t| {
                CampaignRunner::with_options(
                    CampaignOptions::builder()
                        .threads(t)
                        .warm_start(true)
                        .build()
                        .expect("valid options"),
                )
                .run(shared_settle_scenarios())
            })
            .collect();
        assert_eq!(runs[0].outcomes, runs[1].outcomes);
        assert_eq!(runs[0].outcomes, runs[2].outcomes);
        assert_eq!(runs[0].to_csv(), runs[1].to_csv());
        assert_eq!(runs[0].to_csv(), runs[2].to_csv());
    }

    #[test]
    fn derived_seeds_never_share_the_warm_cache() {
        // Without an explicit seed, every scenario's effective seed (and
        // so its warm key) differs: the cache must not conflate them.
        let specs: Vec<_> = (0..4)
            .map(|i| {
                ScenarioSpec::new(format!("s{i}"), quick_cfg())
                    .with_step(Step::Run { seconds: 0.01 })
                    .with_step(Step::MeasureMeanRate {
                        label: "m".into(),
                        window_s: 0.002,
                    })
            })
            .collect();
        let cold = runner(1).run(specs.clone());
        let warm = CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(1)
                .warm_start(true)
                .build()
                .expect("valid options"),
        )
        .run(specs);
        assert_eq!(warm.warm_hits, 0);
        assert_eq!(cold.outcomes, warm.outcomes);
    }

    #[test]
    fn csv_and_telemetry_carry_the_metrics() {
        let report = runner(1).run(quick_scenarios());
        let csv = report.to_csv();
        assert!(csv.starts_with("scenario,metric,value,status\n"));
        assert!(csv.contains("a,mean_dps,"));
        assert!(csv.lines().skip(1).all(|l| l.ends_with(",ok")));
        let snap = report.to_telemetry();
        assert_eq!(snap.wall_time_s, 0.0);
        assert!(snap.gauge("a.mean_dps").is_some());
        assert_eq!(snap.counter("campaign.retries_total"), 0);
        assert_eq!(snap.counter("campaign.poisoned_scenarios"), 0);
    }

    #[test]
    fn chaos_decisions_are_deterministic_and_expire() {
        let plan = ChaosPlan::new(0xC0FFEE);
        for index in 0..64 {
            assert_eq!(plan.decide(index, 0), plan.decide(index, 0));
            assert_eq!(plan.decide(index, 1), ChaosInjection::None);
        }
        let wider = plan.clone().with_persist_attempts(2);
        for index in 0..64 {
            assert_eq!(wider.decide(index, 1), wider.decide(index, 0));
            assert_eq!(wider.decide(index, 2), ChaosInjection::None);
        }
    }

    #[test]
    fn scenario_error_taxonomy_is_stable() {
        let panicked = ScenarioError::Panicked {
            message: "boom".into(),
        };
        let timed_out = ScenarioError::TimedOut { deadline_s: 1.5 };
        assert_eq!(panicked.label(), "panicked");
        assert_eq!(timed_out.label(), "timed_out");
        assert_eq!(ScenarioError::Missing.label(), "missing");
        assert_eq!(panicked.code(), 1.0);
        assert_eq!(timed_out.code(), 2.0);
        assert_eq!(ScenarioError::Missing.code(), 3.0);
        assert!(panicked.to_string().contains("boom"));
        assert!(timed_out.to_string().contains("1.5"));
    }

    /// A chaos seed whose decision for scenario 0 is `wanted`.
    fn chaos_seed_with(wanted: ChaosInjection) -> u64 {
        (0..1024)
            .find(|&s| ChaosPlan::new(s).decide(0, 0) == wanted)
            .expect("some seed produces the wanted injection")
    }

    #[test]
    fn poisoned_scenarios_ship_as_failed_rows_not_aborts() {
        let seed = chaos_seed_with(ChaosInjection::Panic);
        let report = CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(2)
                .retries(0)
                .chaos(ChaosPlan::new(seed).with_stall_cap_s(0.05))
                .build()
                .expect("valid options"),
        )
        .run(quick_scenarios());
        assert_eq!(report.outcomes.len(), 2, "pool must drain past the panic");
        let poisoned = &report.outcomes[0];
        assert!(poisoned.failed());
        assert!(poisoned.metrics.is_empty());
        assert_eq!(poisoned.attempt_errors.len(), 1);
        assert_eq!(poisoned.attempt_errors[0].label(), "panicked");
        let csv = report.to_csv();
        assert!(csv.contains("a,scenario_error,1,poisoned"));
        assert!(csv.contains("a,scenario_attempts,1,poisoned"));
        assert_eq!(report.poisoned(), report.failed_scenarios().len());
        assert_eq!(report.panics_total(), 1);
        assert_eq!(
            report.to_telemetry().counter("campaign.poisoned_scenarios"),
            report.poisoned() as u64
        );
    }

    #[test]
    fn retry_makes_chaos_byte_identical_to_undisturbed() {
        let seed = chaos_seed_with(ChaosInjection::Panic);
        let clean = runner(2).run(quick_scenarios());
        let chaotic = CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(2)
                .retries(1)
                .backoff_ms(1)
                .chaos(ChaosPlan::new(seed).with_stall_cap_s(0.05))
                .build()
                .expect("valid options"),
        )
        .run(quick_scenarios());
        assert_eq!(chaotic.poisoned(), 0, "one retry must absorb the chaos");
        assert!(chaotic.retries_total() >= 1, "chaos must have fired");
        assert_eq!(clean.to_csv(), chaotic.to_csv());
        for (a, b) in clean.outcomes.iter().zip(&chaotic.outcomes) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.seed, b.seed, "retry must not re-derive the seed");
        }
    }

    #[test]
    fn options_builder_validates_each_field() {
        let err = |b: CampaignOptionsBuilder| b.build().expect_err("invalid").to_string();
        assert!(err(CampaignOptions::builder().threads(0)).contains("threads"));
        assert!(err(CampaignOptions::builder().deadline_s(0.0)).contains("deadline_s"));
        assert!(err(CampaignOptions::builder().deadline_s(f64::NAN)).contains("deadline_s"));
        assert!(err(CampaignOptions::builder().backoff_ms(60_001)).contains("backoff_ms"));
        assert!(
            err(CampaignOptions::builder().chaos(ChaosPlan::new(1).with_stall_cap_s(f64::NAN)))
                .contains("stall_cap_s")
        );
        let o = CampaignOptions::builder()
            .threads(2)
            .retries(3)
            .backoff_ms(20)
            .deadline_s(4.0)
            .fleet(false)
            .build()
            .expect("valid");
        assert_eq!(o.threads(), 2);
        assert_eq!(o.max_retries(), 3);
        assert_eq!(o.backoff_ms(), 20);
        assert_eq!(o.deadline_s(), Some(4.0));
        assert!(!o.fleet());
        assert!(
            CampaignOptions::default().fleet(),
            "fleet batching defaults on"
        );
    }

    /// A five-lane Monte-Carlo spec dispersing every supported parameter,
    /// using only the fleet-safe step vocabulary.
    fn mc_spec() -> ScenarioSpec {
        ScenarioSpec::new("mc", quick_cfg())
            .with_step(Step::Run { seconds: 0.02 })
            .with_step(Step::SetRate { dps: 60.0 })
            .with_step(Step::MeasureMeanRate {
                label: "mean_dps".into(),
                window_s: 0.01,
            })
            .monte_carlo(
                5,
                Dispersion::none()
                    .with_omega_frac(0.02)
                    .with_q_frac(0.05)
                    .with_offset_dps(10.0)
                    .with_gain_frac(0.03),
            )
    }

    #[test]
    fn monte_carlo_expands_into_distinct_dispersed_lanes() {
        let report = runner(1).run(vec![mc_spec()]);
        assert_eq!(report.outcomes.len(), 5);
        for (lane, out) in report.outcomes.iter().enumerate() {
            assert_eq!(out.name, format!("mc/mc{lane}"));
            assert!(!out.failed());
        }
        let seeds: HashSet<u64> = report.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds.len(), 5, "per-lane seeds must be distinct");
        let means: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| o.metric("mean_dps").expect("measured"))
            .collect();
        for pair in means.windows(2) {
            assert_ne!(pair[0], pair[1], "dispersion must perturb the physics");
        }
    }

    #[test]
    fn fleet_execution_is_byte_identical_to_scalar() {
        let scalar = CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(1)
                .fleet(false)
                .build()
                .expect("valid"),
        )
        .run(vec![mc_spec()]);
        for threads in [1, 4] {
            let fleet = runner(threads).run(vec![mc_spec()]);
            assert_eq!(scalar.outcomes, fleet.outcomes);
            assert_eq!(scalar.to_csv(), fleet.to_csv());
        }
    }

    #[test]
    fn spec_seed_override_still_disperses_lanes() {
        // A spec-level seed replaces the *base* of the per-lane stream,
        // not the lanes' seeds: lane `e` still draws
        // `derive_seed(base, e)`, so lanes stay distinct.
        let spec = mc_spec().with_seed(42);
        let a = runner(1).run(vec![spec.clone()]);
        let b = runner(2).run(vec![spec]);
        assert_eq!(a.to_csv(), b.to_csv());
        let seeds: Vec<u64> = a.outcomes.iter().map(|o| o.seed).collect();
        for (lane, &seed) in seeds.iter().enumerate() {
            assert_eq!(seed, derive_seed(42, lane as u64));
        }
        assert_eq!(seeds.iter().collect::<HashSet<_>>().len(), 5);
        let means: Vec<f64> = a
            .outcomes
            .iter()
            .map(|o| o.metric("mean_dps").expect("measured"))
            .collect();
        for pair in means.windows(2) {
            assert_ne!(pair[0], pair[1], "seeded lanes must still disperse");
        }
    }

    #[test]
    fn mixed_campaign_interleaves_scalar_and_fleet_units() {
        // Plain scenario + Monte-Carlo population + faulted scenario:
        // only the population batches; outcomes keep expanded order.
        let mut specs = quick_scenarios();
        specs.insert(1, mc_spec());
        let fleet = runner(2).run(specs.clone());
        let scalar = CampaignRunner::with_options(
            CampaignOptions::builder()
                .threads(2)
                .fleet(false)
                .build()
                .expect("valid"),
        )
        .run(specs);
        assert_eq!(fleet.outcomes.len(), 7);
        assert_eq!(fleet.outcomes[0].name, "a");
        assert_eq!(fleet.outcomes[1].name, "mc/mc0");
        assert_eq!(fleet.outcomes[5].name, "mc/mc4");
        assert_eq!(fleet.outcomes[6].name, "b");
        assert_eq!(fleet.outcomes, scalar.outcomes);
        assert_eq!(fleet.to_csv(), scalar.to_csv());
    }

    #[test]
    fn monte_carlo_campaign_resumes_byte_identically() {
        let path =
            std::env::temp_dir().join(format!("ascp_mc_resume_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = runner(2)
            .resume(vec![mc_spec()], &path)
            .expect("fresh journaled run");
        assert_eq!(first.resumed, 0);
        let second = runner(2).resume(vec![mc_spec()], &path).expect("resume");
        assert_eq!(second.resumed, 5, "every expanded lane must preload");
        assert_eq!(first.to_csv(), second.to_csv());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn planner_batches_eligible_sibling_lanes() {
        let (expanded, parents) = expand_monte_carlo(vec![mc_spec()]);
        let work: Vec<(usize, ScenarioSpec)> = expanded.into_iter().enumerate().collect();
        let units = runner(1).plan_units(work.clone(), &parents);
        assert_eq!(units.len(), 1);
        assert!(matches!(&units[0], WorkUnit::Fleet(lanes) if lanes.len() == 5));
        // The batched lanes must be genuinely fleet-able, not silently
        // falling back to scalar at attempt time.
        let platforms: Vec<Platform> = units[0]
            .lanes()
            .iter()
            .map(|(index, spec)| {
                let mut config = spec.config.clone();
                config.seed = spec
                    .seed
                    .unwrap_or_else(|| derive_seed(config.seed, *index as u64));
                Platform::new(config)
            })
            .collect();
        assert!(
            PlatformFleet::new(platforms).is_ok(),
            "dispersed mc lanes must be fleet-eligible"
        );
        // Warm-start and fleet(false) both force every lane scalar.
        for options in [
            CampaignOptions::builder().warm_start(true),
            CampaignOptions::builder().fleet(false),
        ] {
            let scalar_runner = CampaignRunner::with_options(options.build().expect("valid"));
            let units = scalar_runner.plan_units(work.clone(), &parents);
            assert_eq!(units.len(), 5);
            assert!(units.iter().all(|u| matches!(u, WorkUnit::Single(_))));
        }
    }

    #[test]
    fn planner_splits_populations_at_the_fleet_width() {
        let spec = mc_spec().monte_carlo(20, Dispersion::none());
        let (expanded, parents) = expand_monte_carlo(vec![spec]);
        let work: Vec<(usize, ScenarioSpec)> = expanded.into_iter().enumerate().collect();
        let units = runner(1).plan_units(work, &parents);
        let widths: Vec<usize> = units.iter().map(|u| u.lanes().len()).collect();
        assert_eq!(widths, vec![FLEET_GROUP_MAX, 4]);
    }

    #[test]
    fn dispersion_draws_are_deterministic_and_bounded() {
        for channel in 0..5 {
            let d = dispersion_draw(0xDEAD_BEEF, channel);
            assert_eq!(d, dispersion_draw(0xDEAD_BEEF, channel));
            assert!((-1.0..1.0).contains(&d));
        }
        let distinct: HashSet<u64> = (0..5)
            .map(|c| dispersion_draw(0xDEAD_BEEF, c).to_bits())
            .collect();
        assert_eq!(distinct.len(), 5, "channels must be independent streams");
    }
}
