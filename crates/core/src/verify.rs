//! Cross-level verification (the design flow's downward arrows).
//!
//! In the paper's flow (Fig. 1) every synthesis step is "validated with the
//! previous one through a verification phase": the RTL must behave like the
//! MATLAB model. Here that means running the float [`SystemModel`] and the
//! fixed-point [`Platform`] on the same scenario and checking that the
//! behavioural agreement holds: both lock, both track the same resonance,
//! and the rate outputs agree to within the quantization/noise budget.

use crate::platform::{Platform, PlatformConfig};
use crate::system::{SystemModel, SystemModelConfig};
use ascp_sim::stats;
use ascp_sim::units::DegPerSec;

/// Scenario for a cross-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyScenario {
    /// Lock/settle time allowed (s).
    pub lock_timeout: f64,
    /// Rate steps applied after lock (°/s).
    pub rate_steps: Vec<f64>,
    /// Dwell per step (s).
    pub dwell: f64,
    /// Samples averaged per step.
    pub samples: usize,
}

impl Default for VerifyScenario {
    fn default() -> Self {
        Self {
            lock_timeout: 2.0,
            rate_steps: vec![0.0, 100.0, -100.0, 250.0],
            dwell: 0.3,
            samples: 400,
        }
    }
}

/// Result of a cross-level verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Float model locked.
    pub system_locked: bool,
    /// Platform locked.
    pub platform_locked: bool,
    /// Lock frequency difference (Hz).
    pub frequency_error_hz: f64,
    /// Per-step rate readings: `(applied, system_model, platform)` in °/s.
    pub rate_readings: Vec<(f64, f64, f64)>,
    /// RMS disagreement between the two levels across the steps (°/s).
    pub rms_disagreement: f64,
    /// Worst-case disagreement (°/s).
    pub max_disagreement: f64,
}

impl VerifyReport {
    /// Acceptance criterion: both levels locked, same resonance within
    /// `freq_tol` Hz, outputs within `rate_tol` °/s everywhere.
    #[must_use]
    pub fn passes(&self, freq_tol: f64, rate_tol: f64) -> bool {
        self.system_locked
            && self.platform_locked
            && self.frequency_error_hz.abs() <= freq_tol
            && self.max_disagreement <= rate_tol
    }
}

/// Runs the float model and the platform through the same scenario.
///
/// The platform's rate output sign is calibrated out (as final test trim
/// would); the comparison checks magnitude tracking.
pub fn cross_verify(
    sys_cfg: SystemModelConfig,
    plat_cfg: PlatformConfig,
    scenario: &VerifyScenario,
) -> VerifyReport {
    let mut sys = SystemModel::new(sys_cfg);
    let mut plat = Platform::new(plat_cfg);

    let system_locked = sys.measure_lock_time(scenario.lock_timeout, 50).is_some();
    let platform_locked = plat.wait_for_ready(scenario.lock_timeout).is_some();
    let frequency_error_hz = sys.frequency().0 - plat.chain().frequency();

    let mut rate_readings = Vec::new();
    let mut diffs = Vec::new();
    // Determine each level's output sign with a +100 °/s probe.
    let sys_sign = {
        sys.set_rate(DegPerSec(100.0));
        for _ in 0..(0.3 * sys.config().sample_rate.0) as u64 {
            sys.step();
        }
        sys.snapshot().rate.signum()
    };
    let plat_sign = {
        plat.set_rate(DegPerSec(100.0));
        plat.run(0.3);
        let v = stats::mean(&plat.sample_rate_output(0.0, 100));
        v.signum()
    };

    for &applied in &scenario.rate_steps {
        sys.set_rate(DegPerSec(applied));
        plat.set_rate(DegPerSec(applied));
        for _ in 0..(scenario.dwell * sys.config().sample_rate.0) as u64 {
            sys.step();
        }
        plat.run(scenario.dwell);
        let mut sys_rates = Vec::with_capacity(scenario.samples);
        for _ in 0..scenario.samples {
            if let Some(s) = sys.step() {
                sys_rates.push(s.rate * sys_sign);
            }
        }
        // step() only yields at the control rate; top up if needed.
        while sys_rates.len() < scenario.samples {
            if let Some(s) = sys.step() {
                sys_rates.push(s.rate * sys_sign);
            }
        }
        let sys_rate = stats::mean(&sys_rates);
        let plat_rate = stats::mean(&plat.sample_rate_output(0.0, scenario.samples)) * plat_sign;
        rate_readings.push((applied, sys_rate, plat_rate));
        diffs.push(sys_rate - plat_rate);
    }

    VerifyReport {
        system_locked,
        platform_locked,
        frequency_error_hz,
        rate_readings,
        rms_disagreement: stats::rms(&diffs),
        max_disagreement: stats::peak(&diffs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_agree_on_quiet_gyro() {
        let mut sys_cfg = SystemModelConfig::default();
        sys_cfg.gyro.noise_density = 0.002;
        let plat_cfg = PlatformConfig::builder()
            .quiet()
            .noise_density(0.002)
            .build()
            .expect("valid");
        let scenario = VerifyScenario {
            rate_steps: vec![0.0, 150.0],
            dwell: 0.25,
            samples: 150,
            ..VerifyScenario::default()
        };
        let report = cross_verify(sys_cfg, plat_cfg, &scenario);
        assert!(report.system_locked, "system model did not lock");
        assert!(report.platform_locked, "platform did not lock");
        assert!(
            report.frequency_error_hz.abs() < 10.0,
            "levels locked {} Hz apart",
            report.frequency_error_hz
        );
        assert!(
            report.max_disagreement < 20.0,
            "levels disagree: {:?}",
            report.rate_readings
        );
        assert!(report.passes(10.0, 20.0));
    }

    #[test]
    fn report_fails_on_tight_tolerances() {
        let report = VerifyReport {
            system_locked: true,
            platform_locked: true,
            frequency_error_hz: 5.0,
            rate_readings: vec![],
            rms_disagreement: 2.0,
            max_disagreement: 3.0,
        };
        assert!(report.passes(10.0, 5.0));
        assert!(!report.passes(1.0, 5.0));
        assert!(!report.passes(10.0, 1.0));
    }
}
