//! Digital complexity accounting.
//!
//! The paper reports "the digital part of roughly 200 Kgates complexity ...
//! implemented in a Xilinx X2S600E running a 20 MHz clock frequency"
//! (§4.3). This module estimates gate-equivalents for the digital section
//! from its structural parameters (datapath widths, filter lengths, memory
//! sizes) using standard-cell rules of thumb, and budgets the 20 MHz cycle
//! load — so the complexity claim can be regenerated and re-examined when
//! platform knobs (taps, word lengths) change.

use std::fmt;

/// Gate-equivalents per storage/arithmetic primitive (2-input-NAND units,
/// typical 0.35 µm standard-cell figures).
pub mod cost {
    /// One D flip-flop.
    pub const FLIP_FLOP: f64 = 6.0;
    /// One full adder bit.
    pub const ADDER_BIT: f64 = 7.0;
    /// One array-multiplier cell (per bit×bit).
    pub const MULT_CELL: f64 = 1.1;
    /// One 2:1 mux bit.
    pub const MUX_BIT: f64 = 3.0;
    /// One bit of on-chip RAM (synthesized/compiled, amortized).
    pub const RAM_BIT: f64 = 1.5;
    /// One bit of ROM.
    pub const ROM_BIT: f64 = 0.25;
    /// Random control logic per state bit of an FSM.
    pub const FSM_STATE_BIT: f64 = 40.0;
}

/// One block's gate estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEstimate {
    /// Block name.
    pub name: String,
    /// Gate-equivalents of logic (excl. memory macros).
    pub logic_gates: f64,
    /// Memory bits (RAM + ROM), reported separately as hardware people do.
    pub memory_bits: u64,
}

/// Structural parameters the estimate derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalParams {
    /// DSP sample word length (bits).
    pub sample_bits: u32,
    /// Coefficient word length (bits).
    pub coeff_bits: u32,
    /// Demodulator FIR taps (two channels).
    pub fir_taps: u32,
    /// CORDIC iterations.
    pub cordic_iters: u32,
    /// NCO phase-accumulator width.
    pub nco_bits: u32,
    /// NCO sine-table entries (quarter wave).
    pub nco_table: u32,
    /// Program ROM bytes.
    pub rom_bytes: u32,
    /// Program/data RAM bytes (on-chip).
    pub ram_bytes: u32,
    /// Capture SRAM bits (the 512 Kbit prototype SRAM is off-chip: 0 for
    /// the ASIC estimate).
    pub capture_sram_bits: u64,
}

impl Default for DigitalParams {
    /// The platform as configured in this reproduction: 16-bit samples,
    /// 32-bit coefficients, 2×101-tap demodulator FIR, 20-iteration CORDIC,
    /// 32-bit NCO with a 1 K quarter-wave table, 16 KiB ROM + 1.25 KiB RAM
    /// (the paper's 'ASIC' variant).
    fn default() -> Self {
        Self {
            sample_bits: 16,
            coeff_bits: 32,
            fir_taps: 101,
            cordic_iters: 20,
            nco_bits: 32,
            nco_table: 1024,
            rom_bytes: 16 * 1024,
            ram_bytes: 1280,
            capture_sram_bits: 0,
        }
    }
}

/// Full digital-section estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-block entries.
    pub blocks: Vec<BlockEstimate>,
}

impl GateReport {
    /// Builds the estimate from structural parameters.
    #[must_use]
    pub fn estimate(p: &DigitalParams) -> Self {
        use cost::*;
        let sb = f64::from(p.sample_bits);
        let cb = f64::from(p.coeff_bits);
        // NCO: phase accumulator + quadrant logic; sine table as ROM.
        let mut blocks = vec![BlockEstimate {
            name: "NCO / DDS".into(),
            logic_gates: f64::from(p.nco_bits) * (FLIP_FLOP + ADDER_BIT) + 200.0,
            memory_bits: u64::from(p.nco_table) * 16,
        }];

        // PLL: phase detector multiplier + averaging accumulator + PI.
        blocks.push(BlockEstimate {
            name: "PLL (PD + PI)".into(),
            logic_gates: sb * sb * MULT_CELL          // phase detector
                + 48.0 * (FLIP_FLOP + ADDER_BIT)      // averaging + integrator
                + sb * cb * MULT_CELL, // gain multiplier
            memory_bits: 0,
        });

        // AGC: I/Q accumulate + PI controller (magnitude via shared CORDIC).
        blocks.push(BlockEstimate {
            name: "AGC".into(),
            logic_gates: 2.0 * sb * sb * MULT_CELL + 64.0 * (FLIP_FLOP + ADDER_BIT),
            memory_bits: 0,
        });

        // CORDIC: per iteration two shift-add datapaths + angle accumulator.
        blocks.push(BlockEstimate {
            name: "CORDIC".into(),
            logic_gates: f64::from(p.cordic_iters) * 3.0 * 32.0 * (ADDER_BIT + MUX_BIT)
                + 32.0 * FLIP_FLOP * 3.0,
            memory_bits: u64::from(p.cordic_iters) * 32, // atan table
        });

        // Demodulator: 2 mixers + 2 FIR MAC engines (serial MAC: one
        // multiplier + accumulator per channel, coefficient ROM, sample RAM).
        blocks.push(BlockEstimate {
            name: "Demodulator (2× FIR)".into(),
            logic_gates: 2.0
                * (sb * sb * MULT_CELL            // mixer
                + sb * cb * MULT_CELL                          // MAC multiplier
                + 64.0 * (ADDER_BIT + FLIP_FLOP)), // accumulator
            memory_bits: 2 * u64::from(p.fir_taps) * u64::from(p.coeff_bits)  // coeff ROM
                + 2 * u64::from(p.fir_taps) * u64::from(p.sample_bits), // delay RAM
        });

        // Modulator + rebalance PI pair.
        blocks.push(BlockEstimate {
            name: "Modulator + rebalance PI".into(),
            logic_gates: 2.0 * sb * sb * MULT_CELL + 2.0 * 48.0 * (FLIP_FLOP + ADDER_BIT),
            memory_bits: 0,
        });

        // Compensation: Horner engine (one multiplier, shared) + coeff regs.
        blocks.push(BlockEstimate {
            name: "Temp/offset compensation".into(),
            logic_gates: sb * cb * MULT_CELL + 6.0 * 32.0 * FLIP_FLOP,
            memory_bits: 0,
        });

        // 8051 core (Oregano MC8051 synthesizes to ~12 kgates).
        blocks.push(BlockEstimate {
            name: "8051 CPU core".into(),
            logic_gates: 12_000.0,
            memory_bits: u64::from(p.ram_bytes) * 8,
        });

        // Program ROM.
        blocks.push(BlockEstimate {
            name: "Program ROM".into(),
            logic_gates: 0.0,
            memory_bits: u64::from(p.rom_bytes) * 8,
        });

        // Peripherals: UART, SPI, timers, watchdog, bridge, SRAM ctrl, JTAG.
        blocks.push(BlockEstimate {
            name: "Peripherals (UART/SPI/WDT/bridge/SRAM-ctrl/JTAG)".into(),
            logic_gates: 7.0 * 16.0 * FSM_STATE_BIT + 400.0 * FLIP_FLOP,
            memory_bits: p.capture_sram_bits,
        });

        Self { blocks }
    }

    /// Total logic gate-equivalents.
    #[must_use]
    pub fn logic_gates(&self) -> f64 {
        self.blocks.iter().map(|b| b.logic_gates).sum()
    }

    /// Total memory bits.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        self.blocks.iter().map(|b| b.memory_bits).sum()
    }

    /// Combined figure counting memory at the RAM cost — comparable to the
    /// paper's "roughly 200 Kgates" FPGA utilization figure, which includes
    /// block-RAM-mapped memories.
    #[must_use]
    pub fn total_gate_equivalents(&self) -> f64 {
        self.logic_gates() + self.memory_bits() as f64 * cost::RAM_BIT
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Digital section complexity estimate")?;
        writeln!(
            f,
            "  {:<48} {:>12} {:>12}",
            "block", "logic (GE)", "memory (bit)"
        )?;
        for b in &self.blocks {
            writeln!(
                f,
                "  {:<48} {:>12.0} {:>12}",
                b.name, b.logic_gates, b.memory_bits
            )?;
        }
        writeln!(
            f,
            "  {:<48} {:>12.0} {:>12}",
            "TOTAL",
            self.logic_gates(),
            self.memory_bits()
        )?;
        writeln!(
            f,
            "  gate equivalents incl. memory: {:.0} kGE (paper: ~200 kgates)",
            self.total_gate_equivalents() / 1000.0
        )
    }
}

/// 20 MHz cycle budget of the digital section per DSP sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBudget {
    /// System clock (Hz).
    pub clock_hz: f64,
    /// DSP sample rate (Hz).
    pub dsp_rate: f64,
    /// Serial-MAC FIR taps that must complete per sample (both channels).
    pub fir_taps: u32,
    /// Other per-sample DSP operations (mixers, PI updates, CORDIC).
    pub misc_ops: u32,
}

impl Default for CycleBudget {
    fn default() -> Self {
        Self {
            clock_hz: 20.0e6,
            dsp_rate: 250_000.0,
            fir_taps: 2 * 101,
            misc_ops: 60,
        }
    }
}

impl CycleBudget {
    /// Clock cycles available per DSP sample.
    #[must_use]
    pub fn cycles_per_sample(&self) -> f64 {
        self.clock_hz / self.dsp_rate
    }

    /// Cycles demanded per sample (1 MAC/cycle serial FIR + misc).
    #[must_use]
    pub fn cycles_demanded(&self) -> f64 {
        f64::from(self.fir_taps) + f64::from(self.misc_ops)
    }

    /// Utilization fraction; must be ≤ 1 for the design to close timing at
    /// the architecture level. With 80 cycles/sample available, the 2×101
    /// serial FIR does NOT fit — exactly why the RTL uses polyphase
    /// decimation: only every 25th output is computed, so the average load
    /// is `taps/25 + misc`.
    #[must_use]
    pub fn utilization_polyphase(&self, decimation: u32) -> f64 {
        (f64::from(self.fir_taps) / f64::from(decimation.max(1)) + f64::from(self.misc_ops))
            / self.cycles_per_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_estimate_lands_near_paper_figure() {
        let report = GateReport::estimate(&DigitalParams::default());
        let kge = report.total_gate_equivalents() / 1000.0;
        assert!(
            (120.0..320.0).contains(&kge),
            "estimate {kge} kGE too far from the paper's ~200 kgates"
        );
    }

    #[test]
    fn fir_taps_dominate_incremental_memory() {
        let base = GateReport::estimate(&DigitalParams::default());
        let mut big = DigitalParams::default();
        big.fir_taps = 201;
        let bigger = GateReport::estimate(&big);
        assert!(bigger.memory_bits() > base.memory_bits());
        assert_eq!(bigger.logic_gates(), base.logic_gates());
    }

    #[test]
    fn report_prints_all_blocks() {
        let report = GateReport::estimate(&DigitalParams::default());
        let text = report.to_string();
        assert!(text.contains("8051 CPU core"));
        assert!(text.contains("Demodulator"));
        assert!(text.contains("TOTAL"));
        assert!(text.contains("kGE"));
    }

    #[test]
    fn cycle_budget_shows_polyphase_necessity() {
        let b = CycleBudget::default();
        assert_eq!(b.cycles_per_sample(), 80.0);
        // Naive: 262 cycles demanded into 80 available — over budget.
        assert!(b.cycles_demanded() > b.cycles_per_sample());
        // Polyphase by 25: comfortably under.
        assert!(b.utilization_polyphase(25) < 1.0);
    }
}
