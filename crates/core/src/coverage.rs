//! Campaign coverage accounting: fault class × supervisor transition.
//!
//! A fault campaign is only as good as the state space it exercises. This
//! module folds finished [`ScenarioOutcome`]s
//! into a coverage matrix whose rows are fault classes (the eleven
//! [`FaultKind`] labels plus `"none"` for fault-free
//! scenarios) and whose columns are the canonical supervisor FSM edges
//! ([`FSM_EDGES`]). A cell records which
//! scenarios drove that fault class through that transition; empty cells are
//! untested behaviour, reported explicitly instead of silently.
//!
//! The matrix is derived purely from deterministic outcome fields
//! (`fault_classes`, `transitions`), so it is bit-stable across thread
//! counts and warm starts, and its CSV long form doubles as a coverage
//! baseline: [`CoverageMatrix::regressions`] diffs a current run against a
//! committed baseline so CI can fail when a previously-exercised cell goes
//! dark.

use crate::campaign::ScenarioOutcome;
use crate::supervisor::FSM_EDGES;
use ascp_sim::fault::FaultKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Row label for scenarios that inject no faults at all.
pub const NO_FAULT_CLASS: &str = "none";

/// Fault-class × supervisor-transition coverage matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMatrix {
    /// Row universe: every known fault class, plus observed extras.
    classes: Vec<String>,
    /// Column universe: every canonical FSM edge, plus observed extras.
    transitions: Vec<(String, String)>,
    /// `(class, "from->to")` → scenario names that exercised the cell.
    cells: BTreeMap<(String, String), BTreeSet<String>>,
    /// Scenario count folded in.
    scenarios: usize,
}

fn edge_key(from: &str, to: &str) -> String {
    format!("{from}->{to}")
}

impl CoverageMatrix {
    /// Builds the matrix from finished scenario outcomes.
    ///
    /// Every transition a scenario observed is credited to every fault
    /// class that scenario injected (or to [`NO_FAULT_CLASS`] when it
    /// injected none): the matrix answers "under which fault conditions has
    /// this supervisor edge been seen", not "which fault caused it".
    #[must_use]
    pub fn from_outcomes(outcomes: &[ScenarioOutcome]) -> Self {
        let mut m = Self {
            classes: FaultKind::ALL_LABELS
                .iter()
                .map(|&s| s.to_owned())
                .collect(),
            transitions: FSM_EDGES
                .iter()
                .map(|&(f, t)| (f.to_owned(), t.to_owned()))
                .collect(),
            cells: BTreeMap::new(),
            scenarios: outcomes.len(),
        };
        for out in outcomes {
            let classes: Vec<&str> = if out.fault_classes.is_empty() {
                vec![NO_FAULT_CLASS]
            } else {
                out.fault_classes.clone()
            };
            for class in &classes {
                if !m.classes.iter().any(|c| c == class) {
                    m.classes.push((*class).to_owned());
                }
            }
            for &(from, to) in &out.transitions {
                if !m.transitions.iter().any(|(f, t)| f == from && t == to) {
                    m.transitions.push((from.to_owned(), to.to_owned()));
                }
                for class in &classes {
                    m.cells
                        .entry(((*class).to_owned(), edge_key(from, to)))
                        .or_default()
                        .insert(out.name.clone());
                }
            }
        }
        m
    }

    /// Number of scenarios folded into the matrix.
    #[must_use]
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// Row labels (known fault classes first, then observed extras).
    #[must_use]
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Scenarios credited to a `(class, from, to)` cell, empty when dark.
    #[must_use]
    pub fn cell(&self, class: &str, from: &str, to: &str) -> Vec<&str> {
        self.cells
            .get(&(class.to_owned(), edge_key(from, to)))
            .map(|set| set.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Fault classes exercised by at least one scenario transition.
    #[must_use]
    pub fn exercised_classes(&self) -> Vec<&str> {
        self.classes
            .iter()
            .filter(|class| self.cells.keys().any(|(c, _)| c == *class))
            .map(String::as_str)
            .collect()
    }

    /// `(class, transition)` cells with no covering scenario.
    #[must_use]
    pub fn unexercised(&self) -> Vec<(String, String)> {
        let mut dark = Vec::new();
        for class in &self.classes {
            for (from, to) in &self.transitions {
                let key = (class.clone(), edge_key(from, to));
                if !self.cells.contains_key(&key) {
                    dark.push(key);
                }
            }
        }
        dark
    }

    /// Renders the matrix as a GitHub-flavoured markdown table.
    ///
    /// Cells show the number of covering scenarios; `·` marks dark cells.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# Coverage matrix ({} scenarios, {}/{} fault classes exercised)",
            self.scenarios,
            self.exercised_classes().len(),
            self.classes.len(),
        );
        s.push('\n');
        s.push_str("| fault class |");
        for (from, to) in &self.transitions {
            let _ = write!(s, " {from}→{to} |");
        }
        s.push('\n');
        s.push_str("|---|");
        for _ in &self.transitions {
            s.push_str("---|");
        }
        s.push('\n');
        for class in &self.classes {
            let _ = write!(s, "| `{class}` |");
            for (from, to) in &self.transitions {
                let key = (class.clone(), edge_key(from, to));
                match self.cells.get(&key) {
                    Some(set) => {
                        let _ = write!(s, " {} |", set.len());
                    }
                    None => s.push_str(" · |"),
                }
            }
            s.push('\n');
        }
        let dark = self.unexercised();
        let _ = writeln!(
            s,
            "\n{} of {} cells exercised.",
            self.classes.len() * self.transitions.len() - dark.len(),
            self.classes.len() * self.transitions.len(),
        );
        s
    }

    /// Long-form CSV: one `scenario,fault_class,transition` row per credit.
    ///
    /// Rows are sorted, so the CSV is byte-stable and diffs cleanly; it is
    /// also the baseline format consumed by [`Self::regressions`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut rows = Vec::new();
        for ((class, edge), scenarios) in &self.cells {
            for scenario in scenarios {
                rows.push(format!("{scenario},{class},{edge}"));
            }
        }
        rows.sort();
        let mut s = String::from("scenario,fault_class,transition\n");
        for row in rows {
            s.push_str(&row);
            s.push('\n');
        }
        s
    }

    /// `(fault_class, transition)` pairs covered in `baseline_csv` (a prior
    /// [`Self::to_csv`] dump) but dark in this matrix.
    ///
    /// Scenario names are deliberately ignored: renaming or merging
    /// scenarios is fine as long as the *cell* stays exercised.
    #[must_use]
    pub fn regressions(&self, baseline_csv: &str) -> Vec<(String, String)> {
        let current: BTreeSet<(&str, &str)> = self
            .cells
            .keys()
            .map(|(class, edge)| (class.as_str(), edge.as_str()))
            .collect();
        let mut lost = BTreeSet::new();
        for line in baseline_csv.lines().skip(1) {
            let mut fields = line.splitn(3, ',');
            let (Some(_scenario), Some(class), Some(edge)) =
                (fields.next(), fields.next(), fields.next())
            else {
                continue;
            };
            let (class, edge) = (class.trim(), edge.trim());
            if class.is_empty() || edge.is_empty() {
                continue;
            }
            if !current.contains(&(class, edge)) {
                lost.insert((class.to_owned(), edge.to_owned()));
            }
        }
        lost.into_iter().collect()
    }
}
