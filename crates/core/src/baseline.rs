//! Behavioural models of the commercial comparators.
//!
//! The paper compares its implementation (Table 1) against the Analog
//! Devices ADXRS300 (Table 2) and Murata's Gyrostar ENV-05 family
//! (Table 3). We cannot run the physical parts, so each is modelled from
//! its datasheet parameters: first-order output dynamics at the specified
//! bandwidth, sensitivity/null with temperature drift inside the quoted
//! spread, a cubic nonlinearity sized to the quoted % FS, white rate noise
//! at the quoted density, and exponential power-on settling at the quoted
//! turn-on time. Running these through the *same* characterization harness
//! regenerates Tables 2 and 3 alongside our Table 1.

use crate::characterize::RateSensor;
use ascp_sim::noise::WhiteNoise;
use ascp_sim::units::{Celsius, DegPerSec, Seconds};

/// Datasheet parameters of a behavioural gyro.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSpec {
    /// Device name.
    pub name: String,
    /// Full-scale range (±°/s).
    pub range: f64,
    /// Sensitivity at 25 °C (V per °/s).
    pub sensitivity: f64,
    /// Relative sensitivity drift per °C.
    pub sensitivity_tc: f64,
    /// Null voltage at 25 °C.
    pub null: f64,
    /// Null drift (V/°C).
    pub null_tc: f64,
    /// Nonlinearity at full scale (fraction of FS, signed cubic).
    pub nonlinearity_fs: f64,
    /// Rate noise density (°/s/√Hz).
    pub noise_density: f64,
    /// −3 dB bandwidth (Hz).
    pub bandwidth: f64,
    /// Turn-on time to valid output (s).
    pub turn_on: f64,
    /// Operating temperature range (°C).
    pub temp_range: (f64, f64),
    /// Output sample rate of the virtual bench DAQ (Hz).
    pub sample_rate: f64,
    /// Noise seed.
    pub seed: u64,
}

impl BaselineSpec {
    /// Analog Devices ADXRS300 (paper Table 2): ±300 °/s, 5 mV/°/s,
    /// 0.1 °/s/√Hz, 40 Hz, 35 ms turn-on, −40..+85 °C.
    #[must_use]
    pub fn adxrs300(seed: u64) -> Self {
        Self {
            name: "Analog Devices ADXRS300".to_owned(),
            range: 300.0,
            sensitivity: 0.005,
            // Table 2 quotes 4.6–5.4 mV/°/s over temperature: ±8 % over
            // ±60 °C ≈ 1.3e-3 per °C.
            sensitivity_tc: 1.3e-3,
            null: 2.50,
            // 2.3–2.7 V over temperature: ±0.2 V over ±60 °C.
            null_tc: 3.3e-3,
            nonlinearity_fs: 0.001,
            noise_density: 0.1,
            bandwidth: 40.0,
            turn_on: 0.035,
            temp_range: (-40.0, 85.0),
            sample_rate: 10_000.0,
            seed,
        }
    }

    /// Murata Gyrostar (paper Table 3): 0.67 mV/°/s, wide spread, null
    /// 1.35 V, ±5 % FS nonlinearity, <50 Hz, −5..+75 °C.
    #[must_use]
    pub fn gyrostar(seed: u64) -> Self {
        Self {
            name: "Murata Gyrostar".to_owned(),
            range: 300.0,
            sensitivity: 0.67e-3,
            // 0.54–0.80 mV/°/s: ±19 % over ±40 °C ≈ 4.8e-3 per °C.
            sensitivity_tc: 4.8e-3,
            null: 1.35,
            null_tc: 2.0e-3,
            // Murata quotes ±5 % FS *deviation*; a best-fit line absorbs
            // ~2/3 of a pure cubic, so the cubic coefficient is sized so
            // the measured max residual lands at ≈5 % FS.
            nonlinearity_fs: 0.16,
            // Not specified in the paper's table; piezo-vibratory parts of
            // the era measured a few tenths of °/s/√Hz.
            noise_density: 0.3,
            // "< 50 Hz" spec: place the pole at 45 Hz.
            bandwidth: 45.0,
            turn_on: 0.8,
            temp_range: (-5.0, 75.0),
            sample_rate: 10_000.0,
            seed,
        }
    }
}

/// Behavioural datasheet gyro.
#[derive(Debug, Clone)]
pub struct BaselineGyro {
    spec: BaselineSpec,
    rate: f64,
    temperature: f64,
    /// One-pole output state (rate domain, °/s).
    state: f64,
    noise: WhiteNoise,
    /// Power-on settling progress (0 = cold, 1 = settled).
    warmup: f64,
}

impl BaselineGyro {
    /// Builds the model at 25 °C, cold.
    ///
    /// # Panics
    ///
    /// Panics if the spec has non-positive sensitivity, bandwidth, range or
    /// sample rate.
    #[must_use]
    pub fn new(spec: BaselineSpec) -> Self {
        assert!(spec.sensitivity > 0.0, "sensitivity must be positive");
        assert!(spec.bandwidth > 0.0, "bandwidth must be positive");
        assert!(spec.range > 0.0, "range must be positive");
        assert!(spec.sample_rate > 0.0, "sample rate must be positive");
        let noise_sigma = spec.noise_density * (spec.sample_rate / 2.0).sqrt();
        Self {
            noise: WhiteNoise::new(noise_sigma, spec.seed),
            spec,
            rate: 0.0,
            temperature: 25.0,
            state: 0.0,
            warmup: 0.0,
        }
    }

    /// The spec in use.
    #[must_use]
    pub fn spec(&self) -> &BaselineSpec {
        &self.spec
    }

    fn step_output(&mut self) -> f64 {
        let s = &self.spec;
        let dt = self.temperature - 25.0;
        // Warm-up: output invalid (parked low) until settled.
        if self.warmup < 1.0 {
            self.warmup += 1.0 / (s.turn_on * s.sample_rate);
        }
        let r = self.rate.clamp(-s.range, s.range);
        // Cubic compression worth `nonlinearity_fs` of FS at FS.
        let u = r / s.range;
        let r_nl = r - s.nonlinearity_fs * s.range * u * u * u;
        let alpha = 1.0 - (-2.0 * std::f64::consts::PI * s.bandwidth / s.sample_rate).exp();
        self.state += alpha * (r_nl + self.noise.sample() - self.state);
        let sens = s.sensitivity * (1.0 + s.sensitivity_tc * dt);
        let null = s.null + s.null_tc * dt;
        if self.warmup < 1.0 {
            // Output climbing from 0 V during warm-up.
            return (null + sens * self.state) * self.warmup.clamp(0.0, 1.0).powi(2);
        }
        null + sens * self.state
    }
}

impl RateSensor for BaselineGyro {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn set_rate(&mut self, rate: DegPerSec) {
        self.rate = rate.0;
    }

    fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t.0.clamp(self.spec.temp_range.0, self.spec.temp_range.1);
    }

    fn turn_on(&mut self, timeout: f64) -> Option<Seconds> {
        self.warmup = 0.0;
        self.state = 0.0;
        let steps = (timeout * self.spec.sample_rate) as usize;
        for k in 0..steps {
            self.step_output();
            if self.warmup >= 1.0 {
                return Some(Seconds(k as f64 / self.spec.sample_rate));
            }
        }
        None
    }

    fn sample_output(&mut self, settle: f64, n: usize) -> Vec<f64> {
        for _ in 0..(settle * self.spec.sample_rate) as usize {
            self.step_output();
        }
        (0..n).map(|_| self.step_output()).collect()
    }

    fn output_sample_rate(&self) -> f64 {
        self.spec.sample_rate
    }

    fn sample_output_modulated(
        &mut self,
        freq: f64,
        amp: DegPerSec,
        settle: f64,
        n: usize,
    ) -> Vec<f64> {
        let w = 2.0 * std::f64::consts::PI * freq;
        let fs = self.spec.sample_rate;
        let settle_n = (settle * fs) as usize;
        let mut out = Vec::with_capacity(n);
        for k in 0..settle_n + n {
            self.rate = amp.0 * (w * k as f64 / fs).sin();
            let v = self.step_output();
            if k >= settle_n {
                out.push(v);
            }
        }
        self.rate = 0.0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, measure_static_transfer, CharacterizationConfig};

    #[test]
    fn adxrs300_static_transfer_matches_datasheet() {
        let mut g = BaselineGyro::new(BaselineSpec::adxrs300(1));
        g.turn_on(1.0).expect("turn on");
        let cfg = CharacterizationConfig::fast();
        let t = measure_static_transfer(&mut g, &cfg, 25.0);
        assert!(
            (t.sensitivity * 1e3 - 5.0).abs() < 0.2,
            "sens {}",
            t.sensitivity
        );
        assert!((t.null - 2.5).abs() < 0.02, "null {}", t.null);
    }

    #[test]
    fn adxrs300_turn_on_time() {
        let mut g = BaselineGyro::new(BaselineSpec::adxrs300(1));
        let t = g.turn_on(1.0).expect("turn on").0;
        assert!((t - 0.035).abs() < 0.01, "turn-on {t}");
    }

    #[test]
    fn gyrostar_has_low_sensitivity_and_big_nonlinearity() {
        let mut g = BaselineGyro::new(BaselineSpec::gyrostar(2));
        g.turn_on(2.0).expect("turn on");
        let mut cfg = CharacterizationConfig::fast();
        cfg.samples_per_point = 800;
        // A cubic needs more than 3 symmetric points to show up as a
        // residual against the best-fit line.
        cfg.rate_points = vec![-300.0, -150.0, 0.0, 150.0, 300.0];
        let t = measure_static_transfer(&mut g, &cfg, 25.0);
        assert!(
            (t.sensitivity * 1e3 - 0.67).abs() < 0.1,
            "sens {}",
            t.sensitivity * 1e3
        );
        assert!(
            t.nonlinearity_pct_fs > 0.5,
            "nonlin {}",
            t.nonlinearity_pct_fs
        );
    }

    #[test]
    fn temperature_shifts_null_and_sensitivity() {
        let mut g = BaselineGyro::new(BaselineSpec::adxrs300(3));
        g.turn_on(1.0).expect("turn on");
        let cfg = CharacterizationConfig::fast();
        g.set_temperature(Celsius(85.0));
        let hot = measure_static_transfer(&mut g, &cfg, 85.0);
        g.set_temperature(Celsius(-40.0));
        let cold = measure_static_transfer(&mut g, &cfg, -40.0);
        assert!(hot.null > cold.null, "null drift missing");
        assert!(hot.sensitivity > cold.sensitivity, "sens drift missing");
    }

    #[test]
    fn full_characterization_runs() {
        let mut g = BaselineGyro::new(BaselineSpec::adxrs300(4));
        let mut cfg = CharacterizationConfig::fast();
        cfg.noise_samples = 1 << 13;
        let ds = characterize(&mut g, &cfg);
        let noise = ds.noise_density.expect("noise").typ;
        assert!((noise - 0.1).abs() < 0.05, "noise {noise}");
        assert!(ds.turn_on_time_ms.expect("ton") < 60.0);
    }

    #[test]
    fn range_clamps_at_full_scale() {
        let mut g = BaselineGyro::new(BaselineSpec::adxrs300(5));
        g.turn_on(1.0).expect("turn on");
        g.set_rate(DegPerSec(500.0));
        let hi = ascp_sim::stats::mean(&g.sample_output(0.2, 500));
        g.set_rate(DegPerSec(300.0));
        let fs = ascp_sim::stats::mean(&g.sample_output(0.2, 500));
        assert!((hi - fs).abs() < 0.02, "no clamp: {hi} vs {fs}");
    }

    #[test]
    fn temperature_clamped_to_operating_range() {
        let mut g = BaselineGyro::new(BaselineSpec::gyrostar(6));
        g.set_temperature(Celsius(-40.0));
        assert_eq!(g.temperature, -5.0);
    }
}
