//! Datasheet characterization harness.
//!
//! The paper evaluates the platform with a datasheet-style table (Table 1)
//! against two commercial parts (Tables 2–3). This module is the bench:
//! rate-table sweeps (sensitivity, null, nonlinearity), climate-chamber
//! sweeps (over-temperature rows), spectrum analysis (rate noise density),
//! tone sweeps (−3 dB bandwidth) and power-on timing (turn-on time) — all
//! against the [`RateSensor`] abstraction so the same harness measures the
//! full platform and the behavioural comparators.

use ascp_dsp::fft::{band_density, welch_psd, Window};
use ascp_sim::stats;
use ascp_sim::units::{Celsius, DegPerSec, Seconds};
use std::fmt;

/// A yaw-rate sensor with an analog output, as a characterization bench
/// sees it.
pub trait RateSensor {
    /// Human-readable device name (table captions).
    fn name(&self) -> &str;

    /// Applies a constant rate stimulus (the rate table).
    fn set_rate(&mut self, rate: DegPerSec);

    /// Sets chamber temperature.
    fn set_temperature(&mut self, t: Celsius);

    /// Power-on from cold; returns the time to valid output, or `None` if
    /// `timeout` seconds pass first.
    fn turn_on(&mut self, timeout: f64) -> Option<Seconds>;

    /// Collects `n` output samples in volts after `settle` seconds.
    fn sample_output(&mut self, settle: f64, n: usize) -> Vec<f64>;

    /// Output sample rate of [`RateSensor::sample_output`] (Hz).
    fn output_sample_rate(&self) -> f64;

    /// Collects `n` samples while the rate is sinusoidally modulated at
    /// `freq` Hz with amplitude `amp` (the bandwidth measurement).
    fn sample_output_modulated(
        &mut self,
        freq: f64,
        amp: DegPerSec,
        settle: f64,
        n: usize,
    ) -> Vec<f64>;
}

/// A min/typ/max specification row.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MinTypMax {
    /// Minimum observed/specified.
    pub min: f64,
    /// Typical.
    pub typ: f64,
    /// Maximum.
    pub max: f64,
}

impl MinTypMax {
    /// A row where all three values are the same measurement.
    #[must_use]
    pub fn single(v: f64) -> Self {
        Self {
            min: v,
            typ: v,
            max: v,
        }
    }

    /// Builds from a set of measurements (min/mean/max).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one measurement");
        Self {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            typ: stats::mean(values),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl fmt::Display for MinTypMax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} / {:.3} / {:.3}", self.min, self.typ, self.max)
    }
}

/// A complete datasheet in the layout of the paper's Tables 1–3.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Datasheet {
    /// Device name.
    pub device: String,
    /// Dynamic range (±°/s).
    pub dynamic_range: f64,
    /// Sensitivity at 25 °C (mV/°/s).
    pub sensitivity_initial: Option<MinTypMax>,
    /// Sensitivity across the temperature range (mV/°/s).
    pub sensitivity_over_temp: Option<MinTypMax>,
    /// Nonlinearity (% of full scale).
    pub nonlinearity_pct_fs: Option<MinTypMax>,
    /// Null voltage at 25 °C (V).
    pub null_initial: Option<MinTypMax>,
    /// Null across temperature (V).
    pub null_over_temp: Option<MinTypMax>,
    /// Turn-on time (ms).
    pub turn_on_time_ms: Option<f64>,
    /// Rate noise density (°/s/√Hz).
    pub noise_density: Option<MinTypMax>,
    /// −3 dB bandwidth (Hz).
    pub bandwidth_hz: Option<f64>,
    /// Operating temperature range (°C).
    pub temp_range: (f64, f64),
}

impl fmt::Display for Datasheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn row(
            f: &mut fmt::Formatter<'_>,
            label: &str,
            v: &Option<MinTypMax>,
            unit: &str,
        ) -> fmt::Result {
            match v {
                Some(m) => writeln!(
                    f,
                    "  {label:<22} {:>9.3} {:>9.3} {:>9.3}  {unit}",
                    m.min, m.typ, m.max
                ),
                None => writeln!(f, "  {label:<22} {:>9} {:>9} {:>9}  {unit}", "-", "-", "-"),
            }
        }
        writeln!(f, "{} Parameter", self.device)?;
        writeln!(
            f,
            "  {:<22} {:>9} {:>9} {:>9}  Units",
            "", "Min.", "Typ.", "Max."
        )?;
        writeln!(f, "  Sensitivity")?;
        writeln!(
            f,
            "  {:<22} {:>9} {:>9} {:>9}  °/s",
            "Dynamic Range",
            format!("+/-{:.0}", self.dynamic_range),
            "",
            ""
        )?;
        row(f, "Initial", &self.sensitivity_initial, "mV/°/s")?;
        row(f, "Over Temperature", &self.sensitivity_over_temp, "mV/°/s")?;
        row(f, "Non Linearity", &self.nonlinearity_pct_fs, "% of FS")?;
        writeln!(f, "  Null")?;
        row(f, "Initial", &self.null_initial, "V")?;
        row(f, "Over Temperature", &self.null_over_temp, "V")?;
        match self.turn_on_time_ms {
            Some(t) => writeln!(
                f,
                "  {:<22} {:>9} {:>9.2} {:>9}  ms",
                "Turn On Time", "", t, ""
            )?,
            None => writeln!(
                f,
                "  {:<22} {:>9} {:>9} {:>9}  ms",
                "Turn On Time", "", "-", ""
            )?,
        }
        writeln!(f, "  Noise")?;
        row(f, "Rate Noise Dens.", &self.noise_density, "°/s/√Hz")?;
        writeln!(f, "  Freq. Response")?;
        match self.bandwidth_hz {
            Some(b) => writeln!(
                f,
                "  {:<22} {:>9} {:>9.2} {:>9}  Hz",
                "3 dB Bandwidth", "", b, ""
            )?,
            None => writeln!(
                f,
                "  {:<22} {:>9} {:>9} {:>9}  Hz",
                "3 dB Bandwidth", "", "-", ""
            )?,
        }
        writeln!(f, "  Temp. Ranges")?;
        writeln!(
            f,
            "  {:<22} {:>9.0} {:>9} {:>9.0}  °C",
            "Operating Temp.", self.temp_range.0, "", self.temp_range.1
        )
    }
}

/// Characterization plan: which stimuli, how long, at which temperatures.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationConfig {
    /// Full-scale rate for the dynamic-range/nonlinearity rows (°/s).
    pub full_scale: f64,
    /// Rate sweep points (°/s) for the static transfer measurement.
    pub rate_points: Vec<f64>,
    /// Temperatures for the over-temperature rows (°C); 25 °C gives the
    /// "initial" rows.
    pub temperatures: Vec<f64>,
    /// Settling time before sampling at each stimulus point (s).
    pub settle: f64,
    /// Samples per static point.
    pub samples_per_point: usize,
    /// Zero-rate capture length for the noise PSD (samples).
    pub noise_samples: usize,
    /// Welch segment length (power of two).
    pub noise_segment: usize,
    /// Noise analysis band (Hz).
    pub noise_band: (f64, f64),
    /// Tone frequencies for the bandwidth sweep (Hz).
    pub bandwidth_tones: Vec<f64>,
    /// Tone amplitude (°/s).
    pub bandwidth_amp: f64,
    /// Samples per tone.
    pub tone_samples: usize,
    /// Turn-on timeout (s).
    pub turn_on_timeout: f64,
}

impl Default for CharacterizationConfig {
    /// A full characterization sized for the paper's Table 1 at reasonable
    /// simulation cost.
    fn default() -> Self {
        Self {
            full_scale: 300.0,
            rate_points: vec![
                -300.0, -200.0, -100.0, -50.0, 0.0, 50.0, 100.0, 200.0, 300.0,
            ],
            temperatures: vec![-40.0, 25.0, 85.0],
            settle: 0.3,
            // 0.5 s of averaging per point: the static rows must not be
            // noise-limited (σ_mean ≈ 0.06 °/s at the Table-1 noise floor).
            samples_per_point: 5000,
            noise_samples: 1 << 15,
            noise_segment: 1 << 12,
            noise_band: (2.0, 20.0),
            bandwidth_tones: vec![5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0],
            bandwidth_amp: 50.0,
            tone_samples: 6000,
            turn_on_timeout: 2.0,
        }
    }
}

impl CharacterizationConfig {
    /// A drastically reduced plan for unit tests.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            rate_points: vec![-200.0, 0.0, 200.0],
            temperatures: vec![25.0],
            settle: 0.1,
            samples_per_point: 200,
            noise_samples: 1 << 12,
            noise_segment: 1 << 10,
            bandwidth_tones: vec![20.0],
            tone_samples: 2000,
            turn_on_timeout: 2.0,
            ..Self::default()
        }
    }
}

/// One static transfer measurement at a fixed temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticTransfer {
    /// Temperature (°C).
    pub temperature: f64,
    /// Sensitivity (V per °/s).
    pub sensitivity: f64,
    /// Null/zero-rate output (V).
    pub null: f64,
    /// Nonlinearity (% of full scale).
    pub nonlinearity_pct_fs: f64,
}

/// Measures the static transfer (sensitivity / null / nonlinearity) at the
/// sensor's current temperature.
pub fn measure_static_transfer(
    sensor: &mut dyn RateSensor,
    cfg: &CharacterizationConfig,
    temperature: f64,
) -> StaticTransfer {
    let mut outs = Vec::with_capacity(cfg.rate_points.len());
    for &r in &cfg.rate_points {
        sensor.set_rate(DegPerSec(r));
        let samples = sensor.sample_output(cfg.settle, cfg.samples_per_point);
        outs.push(stats::mean(&samples));
    }
    sensor.set_rate(DegPerSec(0.0));
    let fit = stats::linear_fit(&cfg.rate_points, &outs);
    StaticTransfer {
        temperature,
        sensitivity: fit.slope,
        null: fit.intercept,
        nonlinearity_pct_fs: fit.max_residual / (fit.slope.abs() * cfg.full_scale) * 100.0,
    }
}

/// Measures the rate noise density (°/s/√Hz) at zero rate, converting the
/// output PSD by the supplied sensitivity.
pub fn measure_noise_density(
    sensor: &mut dyn RateSensor,
    cfg: &CharacterizationConfig,
    sensitivity_v_per_dps: f64,
) -> f64 {
    sensor.set_rate(DegPerSec(0.0));
    let samples = sensor.sample_output(cfg.settle, cfg.noise_samples);
    let fs = sensor.output_sample_rate();
    let (freqs, psd) = welch_psd(&samples, fs, cfg.noise_segment, Window::Hann);
    band_density(&freqs, &psd, cfg.noise_band.0, cfg.noise_band.1) / sensitivity_v_per_dps.abs()
}

/// Measures the −3 dB bandwidth by a tone sweep; returns `None` if the
/// response never falls below −3 dB within the tone list (reported as the
/// highest tested frequency by the caller if needed).
pub fn measure_bandwidth(
    sensor: &mut dyn RateSensor,
    cfg: &CharacterizationConfig,
    sensitivity_v_per_dps: f64,
) -> Option<f64> {
    let mut last_in_band = None;
    for &f in &cfg.bandwidth_tones {
        let samples = sensor.sample_output_modulated(
            f,
            DegPerSec(cfg.bandwidth_amp),
            cfg.settle,
            cfg.tone_samples,
        );
        let mean = stats::mean(&samples);
        let ac: Vec<f64> = samples.iter().map(|v| v - mean).collect();
        let rms = stats::rms(&ac);
        let amp_dps = rms * std::f64::consts::SQRT_2 / sensitivity_v_per_dps.abs();
        let gain = amp_dps / cfg.bandwidth_amp;
        if gain >= std::f64::consts::FRAC_1_SQRT_2 {
            last_in_band = Some(f);
        } else {
            // First tone below −3 dB: interpolate between the last in-band
            // tone and this one.
            return Some(last_in_band.map_or(f, |lo| (lo + f) / 2.0));
        }
    }
    sensor.set_rate(DegPerSec(0.0));
    last_in_band
}

/// Runs the full characterization and assembles the datasheet.
pub fn characterize(sensor: &mut dyn RateSensor, cfg: &CharacterizationConfig) -> Datasheet {
    // Turn-on from cold (at 25 °C).
    sensor.set_temperature(Celsius(25.0));
    let turn_on = sensor.turn_on(cfg.turn_on_timeout);

    // Static transfer across temperature.
    let mut transfers = Vec::new();
    for &t in &cfg.temperatures {
        sensor.set_temperature(Celsius(t));
        // Give the loops time to re-track after the temperature step.
        let _ = sensor.sample_output(cfg.settle, 16);
        transfers.push(measure_static_transfer(sensor, cfg, t));
    }
    sensor.set_temperature(Celsius(25.0));
    let _ = sensor.sample_output(cfg.settle, 16);

    let initial = transfers
        .iter()
        .find(|t| (t.temperature - 25.0).abs() < 1.0)
        .copied()
        .unwrap_or(transfers[0]);

    let sens_all: Vec<f64> = transfers.iter().map(|t| t.sensitivity * 1.0e3).collect();
    let null_all: Vec<f64> = transfers.iter().map(|t| t.null).collect();
    let nonlin_all: Vec<f64> = transfers.iter().map(|t| t.nonlinearity_pct_fs).collect();

    // Noise and bandwidth at 25 °C using the initial sensitivity.
    let noise = measure_noise_density(sensor, cfg, initial.sensitivity);
    let bandwidth = measure_bandwidth(sensor, cfg, initial.sensitivity);

    Datasheet {
        device: sensor.name().to_owned(),
        dynamic_range: cfg.full_scale,
        sensitivity_initial: Some(MinTypMax::single(initial.sensitivity * 1.0e3)),
        sensitivity_over_temp: Some(MinTypMax::from_values(&sens_all)),
        nonlinearity_pct_fs: Some(MinTypMax::from_values(&nonlin_all)),
        null_initial: Some(MinTypMax::single(initial.null)),
        null_over_temp: Some(MinTypMax::from_values(&null_all)),
        turn_on_time_ms: turn_on.map(Seconds::to_millis),
        noise_density: Some(MinTypMax::single(noise)),
        bandwidth_hz: bandwidth,
        temp_range: (
            cfg.temperatures
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min),
            cfg.temperatures
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An ideal synthetic sensor for harness self-tests: out = 2.5 V +
    /// 5 mV/°/s with a known one-pole bandwidth and white noise.
    struct IdealSensor {
        rate: f64,
        state: f64,
        noise: ascp_sim::noise::WhiteNoise,
        bw: f64,
        fs: f64,
        t: f64,
    }

    impl IdealSensor {
        fn new(bw: f64) -> Self {
            Self {
                rate: 0.0,
                state: 0.0,
                noise: ascp_sim::noise::WhiteNoise::new(0.2e-3, 42),
                bw,
                fs: 10_000.0,
                t: 0.0,
            }
        }

        fn step_out(&mut self, rate: f64) -> f64 {
            let alpha = 1.0 - (-2.0 * std::f64::consts::PI * self.bw / self.fs).exp();
            self.state += alpha * (rate - self.state);
            2.5 + 0.005 * self.state + self.noise.sample()
        }
    }

    impl RateSensor for IdealSensor {
        fn name(&self) -> &str {
            "ideal"
        }
        fn set_rate(&mut self, rate: DegPerSec) {
            self.rate = rate.0;
        }
        fn set_temperature(&mut self, _t: Celsius) {}
        fn turn_on(&mut self, _timeout: f64) -> Option<Seconds> {
            Some(Seconds(0.020))
        }
        fn sample_output(&mut self, settle: f64, n: usize) -> Vec<f64> {
            for _ in 0..(settle * self.fs) as usize {
                self.step_out(self.rate);
            }
            (0..n).map(|_| self.step_out(self.rate)).collect()
        }
        fn output_sample_rate(&self) -> f64 {
            self.fs
        }
        fn sample_output_modulated(
            &mut self,
            freq: f64,
            amp: DegPerSec,
            settle: f64,
            n: usize,
        ) -> Vec<f64> {
            let w = 2.0 * std::f64::consts::PI * freq;
            let mut out = Vec::with_capacity(n);
            for k in 0..((settle * self.fs) as usize + n) {
                self.t += 1.0 / self.fs;
                let r = amp.0 * (w * self.t).sin();
                let v = self.step_out(r);
                if k >= (settle * self.fs) as usize {
                    out.push(v);
                }
                let _ = k;
            }
            out
        }
    }

    #[test]
    fn static_transfer_recovers_known_sensitivity() {
        let mut s = IdealSensor::new(1000.0);
        let cfg = CharacterizationConfig::fast();
        let t = measure_static_transfer(&mut s, &cfg, 25.0);
        assert!(
            (t.sensitivity - 0.005).abs() < 1e-4,
            "sens {}",
            t.sensitivity
        );
        assert!((t.null - 2.5).abs() < 1e-3, "null {}", t.null);
        assert!(
            t.nonlinearity_pct_fs < 0.1,
            "nonlin {}",
            t.nonlinearity_pct_fs
        );
    }

    #[test]
    fn noise_density_recovers_known_floor() {
        let mut s = IdealSensor::new(1000.0);
        let mut cfg = CharacterizationConfig::fast();
        cfg.noise_samples = 1 << 14;
        // 0.2 mV RMS white at 10 kHz → density 0.2e-3/√5000 V/√Hz →
        // /0.005 → 0.566e-3 °/s/√Hz... measured through the sensor's pole.
        let d = measure_noise_density(&mut s, &cfg, 0.005);
        let expect = 0.2e-3 / (5000.0f64).sqrt() / 0.005;
        assert!(
            (d - expect).abs() / expect < 0.25,
            "density {d} vs {expect}"
        );
    }

    #[test]
    fn bandwidth_finds_the_pole() {
        let mut s = IdealSensor::new(40.0);
        let mut cfg = CharacterizationConfig::fast();
        cfg.bandwidth_tones = vec![10.0, 20.0, 30.0, 40.0, 60.0, 90.0];
        cfg.tone_samples = 8000;
        let bw = measure_bandwidth(&mut s, &cfg, 0.005).expect("bandwidth");
        assert!((bw - 40.0).abs() < 15.0, "bandwidth {bw}");
    }

    #[test]
    fn full_characterization_produces_table() {
        let mut s = IdealSensor::new(100.0);
        let cfg = CharacterizationConfig::fast();
        let ds = characterize(&mut s, &cfg);
        assert_eq!(ds.device, "ideal");
        let sens = ds.sensitivity_initial.expect("sens");
        assert!((sens.typ - 5.0).abs() < 0.1, "sens {}", sens.typ);
        assert_eq!(ds.turn_on_time_ms, Some(20.0));
        let text = ds.to_string();
        assert!(text.contains("Sensitivity"));
        assert!(text.contains("Turn On Time"));
        assert!(text.contains("mV/°/s"));
    }

    #[test]
    fn min_typ_max_from_values() {
        let m = MinTypMax::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.typ, 2.0);
        assert_eq!(m.max, 3.0);
        assert_eq!(m.to_string(), "1.000 / 2.000 / 3.000");
    }

    #[test]
    fn datasheet_display_handles_missing_rows() {
        let ds = Datasheet {
            device: "blank".into(),
            dynamic_range: 300.0,
            temp_range: (-5.0, 75.0),
            ..Datasheet::default()
        };
        let text = ds.to_string();
        assert!(text.contains('-'));
        assert!(text.contains("blank"));
    }
}
