//! Platform register fabric.
//!
//! The paper's monitoring model: "a routine constantly checks the system
//! status by accessing the several readable registers spread along the
//! processing chain (for example makes sure that the PLL is locked)" (§4.2).
//! Those registers live here. Two masters see them:
//!
//! - the **8051** through the bridge's 16-bit bus (address window
//!   [`ascp_mcu8051::periph::map::DSP_BASE`]);
//! - the **JTAG chain** through a register-access TAP (full read-back, and
//!   the path used by the PC GUI during prototyping).
//!
//! Shared single-threaded ownership is `Rc<RefCell<_>>` — the simulation
//! kernel is one thread, like the RTL it stands in for.

use ascp_afe::regs::AfeRegisterFile;
use ascp_jtag::device::RegisterBus;
use ascp_mcu8051::periph::Bus16Device;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use std::cell::RefCell;
use std::rc::Rc;

/// DSP/platform status+control register addresses (16-bit registers on the
/// bridged bus, device-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DspReg {
    /// Bit 0 = PLL locked, bit 1 = AGC settled, bit 2 = output valid,
    /// bit 3 = closed-loop active.
    Status = 0,
    /// NCO frequency in Hz (low 16 bits).
    PllFreqLo = 1,
    /// NCO frequency, high bits.
    PllFreqHi = 2,
    /// AGC envelope, Q15 magnitude (unsigned).
    AgcEnvelope = 3,
    /// Compensated rate output, signed Q15 (FS = ±500 °/s).
    RateOut = 4,
    /// Quadrature channel, signed Q15.
    QuadOut = 5,
    /// Phase-detector average ×2¹⁵, signed.
    PhaseError = 6,
    /// Drive amplitude command ×2¹⁵.
    DriveAmp = 7,
    /// Die temperature, 0.1 °C units offset +50 °C.
    Temperature = 8,
    /// Control: bit 0 = chain enable, bit 1 = closed loop,
    /// bit 2 = compensation bypass.
    Control = 9,
    /// Heartbeat counter incremented every DSP output sample.
    Heartbeat = 10,
}

impl DspReg {
    /// Register address on the 16-bit bus (device-local).
    #[must_use]
    pub fn addr(self) -> u8 {
        self as u8
    }
}

/// Number of DSP registers.
pub const DSP_REG_COUNT: usize = 11;

/// The DSP register file contents (updated by the chain, read by CPU/JTAG).
#[derive(Debug, Clone, Default)]
pub struct DspRegs {
    values: [u16; DSP_REG_COUNT],
    /// Writes from the CPU/JTAG side that the chain must apply (control).
    control_dirty: bool,
    /// Successful bus-side writes (CPU/JTAG control traffic; telemetry).
    bus_writes: u64,
}

impl DspRegs {
    /// Creates zeroed registers with the chain enabled, open loop.
    #[must_use]
    pub fn new() -> Self {
        let mut r = Self::default();
        r.values[DspReg::Control.addr() as usize] = 0b001;
        r
    }

    /// Reads a register.
    #[must_use]
    pub fn read(&self, reg: DspReg) -> u16 {
        self.values[reg.addr() as usize]
    }

    /// Hardware-side write (chain updating status).
    pub fn set(&mut self, reg: DspReg, value: u16) {
        self.values[reg.addr() as usize] = value;
    }

    /// Bus-side write; only `Control` is writable.
    pub fn bus_write(&mut self, addr: u8, value: u16) -> bool {
        if addr == DspReg::Control.addr() {
            self.values[addr as usize] = value;
            self.control_dirty = true;
            self.bus_writes += 1;
            true
        } else {
            false
        }
    }

    /// Bus-side read by raw address.
    #[must_use]
    pub fn bus_read(&self, addr: u8) -> Option<u16> {
        self.values.get(addr as usize).copied()
    }

    /// Takes the control-dirty flag (chain applies new control bits).
    pub fn take_control_dirty(&mut self) -> bool {
        std::mem::take(&mut self.control_dirty)
    }

    /// Successful bus-side (CPU/JTAG) writes since construction (telemetry).
    #[must_use]
    pub fn bus_writes(&self) -> u64 {
        self.bus_writes
    }

    /// Serializes the register values, the control-dirty latch and the
    /// bus-write counter.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u16_slice(&self.values);
        w.put_bool(self.control_dirty);
        w.put_u64(self.bus_writes);
    }

    /// Restores state saved by [`DspRegs::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] on a register-count mismatch.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let values = r.take_u16_vec()?;
        if values.len() != DSP_REG_COUNT {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "DSP register bank of {} registers in snapshot, expected {DSP_REG_COUNT}",
                    values.len()
                ),
            });
        }
        self.values.copy_from_slice(&values);
        self.control_dirty = r.take_bool()?;
        self.bus_writes = r.take_u64()?;
        Ok(())
    }
}

/// Shared handle to the DSP registers.
pub type SharedDspRegs = Rc<RefCell<DspRegs>>;

/// Creates a fresh shared register file.
#[must_use]
pub fn shared_dsp_regs() -> SharedDspRegs {
    Rc::new(RefCell::new(DspRegs::new()))
}

/// Bridge-bus adapter: lets the 8051's [`ascp_mcu8051::periph::SystemBus`]
/// reach the shared DSP registers.
#[derive(Debug, Clone)]
pub struct DspRegsBus16(pub SharedDspRegs);

impl Bus16Device for DspRegsBus16 {
    fn read16(&mut self, reg: u8) -> u16 {
        self.0.borrow().bus_read(reg).unwrap_or(0xffff)
    }

    fn write16(&mut self, reg: u8, value: u16) {
        self.0.borrow_mut().bus_write(reg, value);
    }
}

/// JTAG adapter over the shared DSP registers.
#[derive(Debug, Clone)]
pub struct DspRegsJtag(pub SharedDspRegs);

impl RegisterBus for DspRegsJtag {
    fn read(&mut self, addr: u8) -> Option<u16> {
        self.0.borrow().bus_read(addr)
    }

    fn write(&mut self, addr: u8, value: u16) -> bool {
        self.0.borrow_mut().bus_write(addr, value)
    }
}

/// Shared handle to the AFE register bank.
pub type SharedAfeRegs = Rc<RefCell<AfeRegisterFile>>;

/// Creates a fresh shared AFE register bank.
#[must_use]
pub fn shared_afe_regs() -> SharedAfeRegs {
    Rc::new(RefCell::new(AfeRegisterFile::new()))
}

/// JTAG adapter over the shared AFE register bank (the paper's digitally
/// controlled analog cells).
#[derive(Debug, Clone)]
pub struct AfeRegsJtag(pub SharedAfeRegs);

impl RegisterBus for AfeRegsJtag {
    fn read(&mut self, addr: u8) -> Option<u16> {
        self.0.borrow().read_addr(addr).ok()
    }

    fn write(&mut self, addr: u8, value: u16) -> bool {
        self.0.borrow_mut().write_addr(addr, value).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascp_afe::regs::AfeReg;

    #[test]
    fn status_registers_are_read_only_from_bus() {
        let regs = shared_dsp_regs();
        let mut bus = DspRegsBus16(regs.clone());
        assert!(!regs.borrow_mut().bus_write(DspReg::RateOut.addr(), 42));
        bus.write16(DspReg::RateOut.addr(), 42);
        assert_eq!(bus.read16(DspReg::RateOut.addr()), 0);
    }

    #[test]
    fn control_write_marks_dirty() {
        let regs = shared_dsp_regs();
        let mut bus = DspRegsBus16(regs.clone());
        bus.write16(DspReg::Control.addr(), 0b011);
        assert!(regs.borrow_mut().take_control_dirty());
        assert!(!regs.borrow_mut().take_control_dirty());
        assert_eq!(regs.borrow().read(DspReg::Control), 0b011);
    }

    #[test]
    fn chain_updates_visible_on_both_masters() {
        let regs = shared_dsp_regs();
        regs.borrow_mut().set(DspReg::RateOut, 0x1234);
        let mut cpu_view = DspRegsBus16(regs.clone());
        let mut jtag_view = DspRegsJtag(regs);
        assert_eq!(cpu_view.read16(DspReg::RateOut.addr()), 0x1234);
        assert_eq!(jtag_view.read(DspReg::RateOut.addr()), Some(0x1234));
    }

    #[test]
    fn unmapped_addresses() {
        let regs = shared_dsp_regs();
        let mut cpu_view = DspRegsBus16(regs.clone());
        assert_eq!(cpu_view.read16(99), 0xffff);
        let mut jtag_view = DspRegsJtag(regs);
        assert_eq!(jtag_view.read(99), None);
    }

    #[test]
    fn afe_jtag_adapter_respects_read_only() {
        let afe = shared_afe_regs();
        let mut j = AfeRegsJtag(afe.clone());
        assert!(j.write(AfeReg::PgaPrimaryGain.addr(), 5));
        assert_eq!(j.read(AfeReg::PgaPrimaryGain.addr()), Some(5));
        assert!(!j.write(AfeReg::Status.addr(), 0));
        assert!(!j.write(AfeReg::AdcBits.addr(), 99));
    }

    #[test]
    fn default_control_enables_chain() {
        let r = DspRegs::new();
        assert_eq!(r.read(DspReg::Control) & 1, 1);
    }
}
