//! Fixed-point gyro conditioning chain (the hardwired DSP block).
//!
//! This is the paper's "DSP \[which\] contains a chain of IPs for signal
//! elaboration" (§4.2), customized for the gyro: PLL primary drive, AGC,
//! synchronous demodulation of the secondary pickoff, temperature/offset
//! compensation, output scaling toward the rate DAC, and (closed loop) the
//! force-rebalance controllers re-modulating the nulling force onto the
//! carrier. Every block is bit-accurate fixed point from `ascp-dsp` — the
//! Rust stand-in for the RTL derived from the MATLAB model.

use crate::registers::{DspReg, SharedDspRegs};
use ascp_dsp::agc::{Agc, AgcConfig};
use ascp_dsp::comp::Compensator;
use ascp_dsp::demod::{Demodulator, IqSample, Modulator};
use ascp_dsp::fixed::{Q15, Q30};
use ascp_dsp::iir::{Biquad, BiquadCoeffs};
use ascp_dsp::pll::{PiController, Pll, PllConfig};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// A positive gain of arbitrary magnitude factored into a Q30 mantissa in
/// `[0.5, 1)` and a power-of-two shift — how RTL implements "multiply by
/// 7.24": mantissa multiplier plus barrel shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledGain {
    mantissa: Q30,
    shift: i32,
}

impl ScaledGain {
    /// Factors `gain` (> 0) into mantissa and shift.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not finite and positive.
    #[must_use]
    pub fn new(gain: f64) -> Self {
        assert!(
            gain.is_finite() && gain > 0.0,
            "scaled gain must be finite and positive, got {gain}"
        );
        let shift = gain.log2().ceil() as i32;
        let mantissa = Q30::from_f64(gain / 2f64.powi(shift));
        Self { mantissa, shift }
    }

    /// Unity gain.
    #[must_use]
    pub fn unity() -> Self {
        Self::new(1.0)
    }

    /// The represented gain value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.mantissa.to_f64() * 2f64.powi(self.shift)
    }

    /// Applies the gain to a sample (saturating).
    #[must_use]
    pub fn apply(&self, x: Q15) -> Q15 {
        let m = x.mul_q(self.mantissa);
        match self.shift.cmp(&0) {
            std::cmp::Ordering::Greater => m.shl(self.shift as u32),
            std::cmp::Ordering::Less => m.shr((-self.shift) as u32),
            std::cmp::Ordering::Equal => m,
        }
    }
}

/// Operating mode of the sense path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SenseMode {
    /// Read the Coriolis amplitude directly (simple, less linear).
    #[default]
    OpenLoop,
    /// Null the secondary motion with rebalance forces; read the force
    /// ("more linear and accurate measures", §4.1).
    ClosedLoop,
}

/// Chain configuration.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// PLL (primary drive) settings.
    pub pll: PllConfig,
    /// AGC settings (setpoint is in ADC full-scale units).
    pub agc: AgcConfig,
    /// Demodulator channel-filter cutoff as a fraction of the DSP rate.
    pub demod_cutoff: f64,
    /// Demodulator FIR length.
    pub demod_taps: usize,
    /// Demodulator output decimation.
    pub demod_decimation: u32,
    /// Sense-path mode.
    pub mode: SenseMode,
    /// Open-loop gain from demodulated Q15 to rate-output Q15
    /// (FS = ±500 °/s); from the design-time dimensioning step.
    pub rate_gain: f64,
    /// Closed-loop gain from rebalance command Q15 to rate-output Q15.
    pub rebalance_rate_gain: f64,
    /// Rebalance PI proportional gain.
    pub rebalance_kp: f64,
    /// Rebalance PI integral gain (per second).
    pub rebalance_ki: f64,
    /// Rebalance command authority (DAC units). Sized for full scale plus
    /// margin (±0.15 ≈ ±540 °/s): bounded authority keeps the loop out of
    /// the sense pickoff's inversion region during transients.
    pub rebalance_limit: f64,
    /// Rate-output lowpass corner (Hz) at the decimated rate — sets the
    /// datasheet 3 dB bandwidth (paper Table 1: 25..75 Hz).
    pub output_corner_hz: f64,
    /// Rebalance-axis phase compensation (radians). The force-feedback
    /// path lags the demodulation axes by the DSP pipeline plus the DAC
    /// zero-order hold (~1.5 samples ≈ 32° at 15 kHz); the commands are
    /// rotated by this angle before re-modulation so the nulling forces
    /// land on the physical Coriolis/quadrature axes. Trimmed at design
    /// time (a register in hardware).
    pub rebalance_phase_rad: f64,
    /// Temperature/offset compensation.
    pub compensator: Compensator,
}

impl Default for ChainConfig {
    fn default() -> Self {
        let mut pll = PllConfig::default();
        pll.pd_average = 50; // three carrier periods: no 2ω ripple
        let mut agc = AgcConfig::default();
        agc.setpoint = 0.8; // 0.5 displacement × (4 V/unit) / 2.5 V FS
        agc.average = 50;
        // The drive mode is a slow envelope lag (τ = 2Q/ω ≈ 0.42 s at
        // Q = 20 000) with ~8× DC gain. The PI zero cancels the lag
        // (ki/kp = 1/τ ≈ 2.4), leaving an integrator crossover near
        // 12 rad/s — fast, no limit cycle against the drive ≥ 0 clamp.
        agc.kp = 0.6;
        agc.ki = 1.5;
        Self {
            pll,
            agc,
            demod_cutoff: 400.0 / 250_000.0,
            demod_taps: 101,
            demod_decimation: 25,
            mode: SenseMode::OpenLoop,
            rate_gain: 1.0,
            rebalance_rate_gain: 1.0,
            // The baseband force→pickoff plant has a lightly damped
            // complex pole pair at the mode-split beat (200 Hz, τ ≈ 2Q_s/ω);
            // the loop crossover ki·g ≈ 15 rad/s stays a decade and a half
            // below it.
            rebalance_kp: 0.002,
            rebalance_ki: 2.0,
            rebalance_limit: 0.15,
            output_corner_hz: 75.0,
            rebalance_phase_rad: 0.0,
            compensator: Compensator::identity(),
        }
    }
}

/// Per-DSP-tick outputs toward the AFE DACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainDrive {
    /// Primary drive DAC sample.
    pub primary: Q15,
    /// Secondary (rebalance) drive DAC sample.
    pub secondary: Q15,
    /// Rate-output DAC sample (updated at the decimated rate, held between).
    pub rate_out: Q15,
}

/// The conditioning chain.
#[derive(Debug, Clone)]
pub struct ConditioningChain {
    config: ChainConfig,
    pll: Pll,
    agc: Agc,
    demod: Demodulator,
    modulator: Modulator,
    rebalance_i: PiController,
    rebalance_q: PiController,
    rate_gain: ScaledGain,
    rebalance_rate_gain: ScaledGain,
    /// Output-bandwidth filter at the decimated rate (outside the
    /// rebalance loop, so it shapes only the datasheet output).
    output_lp: Biquad,
    /// Latest rebalance commands (closed loop).
    cmd: IqSample,
    /// Latest demodulated pair (rate on the cos channel).
    baseband: IqSample,
    /// Latest compensated rate output (Q15, FS ±500 °/s).
    rate_out: Q15,
    quad_out: Q15,
    heartbeat: u16,
    enabled: bool,
    output_valid: bool,
    temperature: f64,
    /// Decimated output samples whose compensated rate hit a Q15 rail
    /// (over-range rotation or mis-set gains; telemetry).
    saturation_events: u64,
}

impl ConditioningChain {
    /// Builds the chain.
    ///
    /// # Panics
    ///
    /// Panics on invalid PLL/AGC configuration or non-positive gains.
    #[must_use]
    pub fn new(config: ChainConfig) -> Self {
        let pll = Pll::new(config.pll);
        let agc = Agc::new(config.agc);
        let demod = Demodulator::new(
            config.demod_cutoff,
            config.demod_taps,
            config.demod_decimation,
        );
        let out_dt = config.demod_decimation as f64 / config.pll.sample_rate;
        let out_rate = 1.0 / out_dt;
        let output_lp = Biquad::new(BiquadCoeffs::lowpass(
            config.output_corner_hz / out_rate,
            std::f64::consts::FRAC_1_SQRT_2,
        ));
        Self {
            output_lp,
            pll,
            agc,
            demod,
            modulator: Modulator::new(),
            rebalance_i: PiController::new(
                config.rebalance_kp,
                config.rebalance_ki,
                out_dt,
                -config.rebalance_limit,
                config.rebalance_limit,
            ),
            rebalance_q: PiController::new(
                config.rebalance_kp,
                config.rebalance_ki,
                out_dt,
                -config.rebalance_limit,
                config.rebalance_limit,
            ),
            rate_gain: ScaledGain::new(config.rate_gain),
            rebalance_rate_gain: ScaledGain::new(config.rebalance_rate_gain),
            cmd: IqSample::default(),
            baseband: IqSample::default(),
            rate_out: Q15::ZERO,
            quad_out: Q15::ZERO,
            heartbeat: 0,
            enabled: true,
            output_valid: false,
            temperature: 25.0,
            saturation_events: 0,
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Sense-path mode currently active.
    #[must_use]
    pub fn mode(&self) -> SenseMode {
        self.config.mode
    }

    /// Switches open/closed loop at run time (a platform knob).
    pub fn set_mode(&mut self, mode: SenseMode) {
        self.config.mode = mode;
        if mode == SenseMode::OpenLoop {
            self.cmd = IqSample::default();
            self.rebalance_i.reset();
            self.rebalance_q.reset();
        }
        self.output_lp.reset();
    }

    /// Current rebalance-axis phase compensation (radians).
    #[must_use]
    pub fn rebalance_phase(&self) -> f64 {
        self.config.rebalance_phase_rad
    }

    /// Sets the rebalance-axis phase compensation (the "on-line trimming"
    /// register of paper §3).
    pub fn set_rebalance_phase(&mut self, rad: f64) {
        self.config.rebalance_phase_rad = rad;
    }

    /// Replaces the compensator (final-test calibration installing fitted
    /// coefficients), keeping it synchronized to the current temperature.
    pub fn config_compensator(&mut self, comp: Compensator) {
        self.config.compensator = comp;
        self.config.compensator.set_temperature(self.temperature);
    }

    /// Updates the die temperature used by the compensator (from the AFE
    /// temperature-sensor register, at its slow rate).
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature = celsius;
        self.config.compensator.set_temperature(celsius);
    }

    /// PLL lock flag.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.pll.is_locked()
    }

    /// AGC settled flag (within 5 % of setpoint).
    #[must_use]
    pub fn is_settled(&self) -> bool {
        self.agc.is_settled(0.05 * self.config.agc.setpoint)
    }

    /// Compensated rate output (Q15, FS = ±500 °/s).
    #[must_use]
    pub fn rate_out(&self) -> Q15 {
        self.rate_out
    }

    /// Rate output converted to °/s.
    #[must_use]
    pub fn rate_dps(&self) -> f64 {
        self.rate_out.to_f64() * 500.0
    }

    /// Quadrature channel (Q15).
    #[must_use]
    pub fn quad_out(&self) -> Q15 {
        self.quad_out
    }

    /// Current NCO frequency (Hz).
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.pll.frequency()
    }

    /// Phase-detector average.
    #[must_use]
    pub fn phase_error(&self) -> f64 {
        self.pll.phase_error()
    }

    /// AGC envelope (ADC FS units).
    #[must_use]
    pub fn envelope(&self) -> f64 {
        self.agc.envelope()
    }

    /// AGC drive command.
    #[must_use]
    pub fn drive(&self) -> f64 {
        self.agc.drive()
    }

    /// PLL lock/unlock state changes since reset (telemetry).
    #[must_use]
    pub fn lock_transitions(&self) -> u64 {
        self.pll.lock_transitions()
    }

    /// AGC settle milestone: seconds to first entry into the ±5 % band.
    #[must_use]
    pub fn settle_time_s(&self) -> Option<f64> {
        self.agc.settle_time_s()
    }

    /// Output samples whose compensated rate saturated at a Q15 rail.
    #[must_use]
    pub fn saturation_events(&self) -> u64 {
        self.saturation_events
    }

    /// Total fixed-point accumulator clamps inside the chain's filters
    /// (demodulator channel FIRs plus the output biquad) — the telemetry
    /// view of the `ascp-dsp` saturating-arithmetic audit.
    #[must_use]
    pub fn fixed_saturations(&self) -> u64 {
        self.demod.saturations() + self.output_lp.saturations()
    }

    /// Kicks the drive PLL off frequency (shock-induced phase slip): rails
    /// the loop integrator so the NCO runs at the edge of its pull range
    /// and lock is lost until the loop re-acquires. Fault-injection hook.
    pub fn kick_pll(&mut self) {
        self.pll.kick();
    }

    /// Processes one DSP-rate sample pair from the ADCs.
    pub fn process(&mut self, primary: Q15, secondary: Q15) -> ChainDrive {
        if !self.enabled {
            return ChainDrive::default();
        }
        let (s, c, primary_drive) = self.primary_stage(primary);
        let demod_out = self.demod.process(secondary, s, c);
        self.finish_stage(demod_out, s, c, primary_drive)
    }

    /// Whether the chain is processing (control-register enable bit).
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The demodulator (fleet lane extraction).
    pub(crate) fn demod(&self) -> &Demodulator {
        &self.demod
    }

    /// The demodulator, mutable (fleet lane write-back).
    pub(crate) fn demod_mut(&mut self) -> &mut Demodulator {
        &mut self.demod
    }

    /// First half of [`ConditioningChain::process`]: PLL references, AGC
    /// drive amplitude, and the primary drive sample. Split out so the
    /// fleet driver can run the demodulator as a batched lane kernel
    /// between the two stages; the scalar path composes the same pieces.
    #[inline]
    pub(crate) fn primary_stage(&mut self, primary: Q15) -> (Q15, Q15, Q15) {
        // Primary loop: PLL references + AGC drive amplitude.
        let (s, c) = self.pll.process(primary);
        let drive_amp = self.agc.process(primary, s, c);
        // Drive force in velocity phase (cos) — displacement then tracks sin.
        let primary_drive = Q15::from_f64(drive_amp).mul(c);
        (s, c, primary_drive)
    }

    /// Second half of [`ConditioningChain::process`]: consumes the
    /// demodulator emission (if this tick produced one) and finishes the
    /// output, rebalance, and re-modulation work.
    #[inline]
    pub(crate) fn finish_stage(
        &mut self,
        demod_out: Option<IqSample>,
        s: Q15,
        c: Q15,
        primary_drive: Q15,
    ) -> ChainDrive {
        // Sense path emission. dsp's Demodulator mixes i↔sin, q↔cos; for
        // the gyro the Coriolis (rate) term is velocity-phase (cos), so the
        // chain's rate channel is the demodulator's q output.
        let mut rate_sample = None;
        if let Some(out) = demod_out {
            self.baseband = IqSample {
                i: out.q, // rate
                q: out.i, // quadrature
            };
            rate_sample = Some(self.baseband);
        }

        let mut secondary_drive = Q15::ZERO;
        if let Some(bb) = rate_sample {
            self.heartbeat = self.heartbeat.wrapping_add(1);
            self.output_valid = true;
            let rate_before = self.rate_out;
            match self.config.mode {
                SenseMode::OpenLoop => {
                    // The Coriolis force is −2·k·Ω·v: a positive rate puts a
                    // *negative* cos component on the pickoff, so the output
                    // stage negates to give +5 mV/°/s like the datasheet.
                    let scaled = self.rate_gain.apply(bb.i.sat_neg());
                    let filtered = self.output_lp.process(scaled);
                    self.rate_out = self.config.compensator.apply(filtered);
                    self.quad_out = bb.q;
                }
                SenseMode::ClosedLoop => {
                    // Startup sequencing: the rebalance loop only engages
                    // once the PLL is locked — before that the demodulation
                    // axes rotate at the beat frequency and the integrators
                    // would wind up against a moving target.
                    if self.pll.is_locked() {
                        // Null both channels; the force is the measurement.
                        let ui = self.rebalance_i.update(-bb.i.to_f64());
                        let uq = self.rebalance_q.update(-bb.q.to_f64());
                        self.cmd = IqSample {
                            i: Q15::from_f64(ui),
                            q: Q15::from_f64(uq),
                        };
                    } else {
                        self.rebalance_i.reset();
                        self.rebalance_q.reset();
                        self.cmd = IqSample::default();
                    }
                    // Filter after scaling: at the ±500 °/s full-scale
                    // format the biquad's quantization is 7× smaller than
                    // on the raw command.
                    let scaled = self.rebalance_rate_gain.apply(self.cmd.i);
                    let filtered = self.output_lp.process(scaled);
                    self.rate_out = self.config.compensator.apply(filtered);
                    self.quad_out = self.cmd.q;
                }
            }
            let raw = self.rate_out.raw();
            if (raw == 32767 || raw == -32768) && raw != rate_before.raw() {
                self.saturation_events += 1;
            }
        }
        if self.config.mode == SenseMode::ClosedLoop {
            // Re-modulate the held commands onto the carrier every sample,
            // rotating the command vector by the phase-compensation angle so
            // the applied forces land on the physical axes despite the
            // pipeline + DAC-hold delay. Rate-nulling force goes on the cos
            // axis, quadrature-nulling on the sin axis.
            let (sin_th, cos_th) = self.config.rebalance_phase_rad.sin_cos();
            let ci = self.cmd.i.to_f64();
            let cq = self.cmd.q.to_f64();
            let rot = IqSample {
                i: Q15::from_f64(cq * cos_th + ci * sin_th), // sin axis
                q: Q15::from_f64(ci * cos_th - cq * sin_th), // cos axis
            };
            secondary_drive = self.modulator.process(rot, s, c);
        }

        ChainDrive {
            primary: primary_drive,
            secondary: secondary_drive,
            rate_out: self.rate_out,
        }
    }

    /// Publishes status into the shared register file and applies any
    /// control writes (call at the DSP output rate or slower).
    pub fn sync_registers(&mut self, regs: &SharedDspRegs) {
        let mut r = regs.borrow_mut();
        if r.take_control_dirty() {
            let ctrl = r.read(DspReg::Control);
            self.enabled = ctrl & 0b001 != 0;
            let closed = ctrl & 0b010 != 0;
            let want = if closed {
                SenseMode::ClosedLoop
            } else {
                SenseMode::OpenLoop
            };
            if want != self.config.mode {
                self.set_mode(want);
            }
        }
        let mut status = 0u16;
        if self.is_locked() {
            status |= 0b0001;
        }
        if self.is_settled() {
            status |= 0b0010;
        }
        if self.output_valid {
            status |= 0b0100;
        }
        if self.config.mode == SenseMode::ClosedLoop {
            status |= 0b1000;
        }
        r.set(DspReg::Status, status);
        let freq = self.pll.frequency().round() as u32;
        r.set(DspReg::PllFreqLo, freq as u16);
        r.set(DspReg::PllFreqHi, (freq >> 16) as u16);
        r.set(
            DspReg::AgcEnvelope,
            (self.agc.envelope().clamp(0.0, 1.999) * 32768.0) as u16,
        );
        r.set(
            DspReg::RateOut,
            self.rate_out.raw().clamp(-32768, 32767) as i16 as u16,
        );
        r.set(
            DspReg::QuadOut,
            self.quad_out.raw().clamp(-32768, 32767) as i16 as u16,
        );
        r.set(
            DspReg::PhaseError,
            ((self.pll.phase_error() * 32768.0).clamp(-32768.0, 32767.0)) as i16 as u16,
        );
        r.set(
            DspReg::DriveAmp,
            (self.agc.drive().clamp(0.0, 1.999) * 32768.0) as u16,
        );
        r.set(
            DspReg::Temperature,
            ((self.temperature + 50.0) * 10.0).clamp(0.0, 65535.0) as u16,
        );
        r.set(DspReg::Heartbeat, self.heartbeat);
    }

    /// Serializes all loop state plus the run-time-mutable configuration
    /// (sense mode, rebalance phase trim, compensator polynomials). The
    /// immutable configuration — filter orders, loop gains, sample rates —
    /// is not written: a restore target must be built from the same
    /// [`ChainConfig`].
    pub fn save_state(&self, w: &mut StateWriter) {
        w.leaf("cfg ", |w| {
            w.put_u8(match self.config.mode {
                SenseMode::OpenLoop => 0,
                SenseMode::ClosedLoop => 1,
            });
            w.put_f64(self.config.rebalance_phase_rad);
        });
        w.leaf("comp", |w| self.config.compensator.save_state(w));
        w.leaf("pll ", |w| self.pll.save_state(w));
        w.leaf("agc ", |w| self.agc.save_state(w));
        w.leaf("demd", |w| self.demod.save_state(w));
        w.leaf("rbli", |w| self.rebalance_i.save_state(w));
        w.leaf("rblq", |w| self.rebalance_q.save_state(w));
        w.leaf("olp ", |w| self.output_lp.save_state(w));
        w.leaf("loop", |w| {
            w.put_i32(self.cmd.i.raw());
            w.put_i32(self.cmd.q.raw());
            w.put_i32(self.baseband.i.raw());
            w.put_i32(self.baseband.q.raw());
            w.put_i32(self.rate_out.raw());
            w.put_i32(self.quad_out.raw());
            w.put_u16(self.heartbeat);
            w.put_bool(self.enabled);
            w.put_bool(self.output_valid);
            w.put_f64(self.temperature);
            w.put_u64(self.saturation_events);
        });
    }

    /// Restores state saved by [`ConditioningChain::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] on an unknown sense-mode tag or
    /// a non-finite phase trim; propagates errors from the sub-blocks.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let (mode, phase) = r.leaf("cfg ", |r| {
            let mode = match r.take_u8()? {
                0 => SenseMode::OpenLoop,
                1 => SenseMode::ClosedLoop,
                tag => {
                    return Err(SnapshotError::Corrupt {
                        context: format!("unknown sense-mode tag {tag}"),
                    })
                }
            };
            let phase = r.take_f64()?;
            if !phase.is_finite() {
                return Err(SnapshotError::Corrupt {
                    context: format!("rebalance phase {phase} not finite"),
                });
            }
            Ok((mode, phase))
        })?;
        self.config.mode = mode;
        self.config.rebalance_phase_rad = phase;
        let comp = &mut self.config.compensator;
        r.leaf("comp", |r| comp.load_state(r))?;
        let pll = &mut self.pll;
        r.leaf("pll ", |r| pll.load_state(r))?;
        let agc = &mut self.agc;
        r.leaf("agc ", |r| agc.load_state(r))?;
        let demod = &mut self.demod;
        r.leaf("demd", |r| demod.load_state(r))?;
        let rebalance_i = &mut self.rebalance_i;
        r.leaf("rbli", |r| rebalance_i.load_state(r))?;
        let rebalance_q = &mut self.rebalance_q;
        r.leaf("rblq", |r| rebalance_q.load_state(r))?;
        let output_lp = &mut self.output_lp;
        r.leaf("olp ", |r| output_lp.load_state(r))?;
        let (cmd, baseband, rate_out, quad_out, heartbeat, enabled, output_valid, temp, sats) =
            r.leaf("loop", |r| {
                Ok((
                    IqSample {
                        i: Q15::from_raw(r.take_i32()?),
                        q: Q15::from_raw(r.take_i32()?),
                    },
                    IqSample {
                        i: Q15::from_raw(r.take_i32()?),
                        q: Q15::from_raw(r.take_i32()?),
                    },
                    Q15::from_raw(r.take_i32()?),
                    Q15::from_raw(r.take_i32()?),
                    r.take_u16()?,
                    r.take_bool()?,
                    r.take_bool()?,
                    r.take_f64()?,
                    r.take_u64()?,
                ))
            })?;
        self.cmd = cmd;
        self.baseband = baseband;
        self.rate_out = rate_out;
        self.quad_out = quad_out;
        self.heartbeat = heartbeat;
        self.enabled = enabled;
        self.output_valid = output_valid;
        self.temperature = temp;
        self.saturation_events = sats;
        Ok(())
    }

    /// Resets all loop state (power-on).
    pub fn reset(&mut self) {
        self.pll.reset();
        self.agc.reset();
        self.demod.reset();
        self.output_lp.reset();
        self.rebalance_i.reset();
        self.rebalance_q.reset();
        self.cmd = IqSample::default();
        self.baseband = IqSample::default();
        self.rate_out = Q15::ZERO;
        self.quad_out = Q15::ZERO;
        self.heartbeat = 0;
        self.output_valid = false;
        self.saturation_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::shared_dsp_regs;

    #[test]
    fn scaled_gain_round_trips() {
        for g in [0.001, 0.37, 1.0, 7.24, 123.4] {
            let sg = ScaledGain::new(g);
            assert!((sg.value() - g).abs() / g < 1e-6, "gain {g}");
        }
    }

    #[test]
    fn scaled_gain_applies_correctly() {
        let sg = ScaledGain::new(7.24);
        let y = sg.apply(Q15::from_f64(0.05));
        assert!((y.to_f64() - 0.362).abs() < 1e-3, "got {}", y.to_f64());
        let down = ScaledGain::new(0.125);
        let y = down.apply(Q15::from_f64(0.8));
        assert!((y.to_f64() - 0.1).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_gain_rejects_zero() {
        let _ = ScaledGain::new(0.0);
    }

    /// Synthetic carrier test: the chain locks to a clean electrical
    /// carrier and reports a rate proportional to the AM depth.
    fn run_synthetic(rate_frac: f64, n: usize) -> ConditioningChain {
        let mut cfg = ChainConfig::default();
        cfg.rate_gain = 1.0;
        let mut chain = ConditioningChain::new(cfg);
        let fs = 250_000.0;
        let f = 15_000.0;
        let w = 2.0 * std::f64::consts::PI * f;
        for k in 0..n {
            let th = w * k as f64 / fs;
            // Primary pickoff: displacement-like sin at the AGC setpoint.
            let primary = Q15::from_f64(0.8 * th.sin());
            // Secondary: rate AM on the velocity-phase axis with the
            // physical Coriolis sign (−cos for a positive rate).
            let secondary = Q15::from_f64(-rate_frac * th.cos());
            chain.process(primary, secondary);
        }
        chain
    }

    #[test]
    fn chain_locks_on_synthetic_carrier() {
        let chain = run_synthetic(0.0, 120_000);
        assert!(chain.is_locked(), "no lock");
        assert!((chain.frequency() - 15_000.0).abs() < 5.0);
    }

    #[test]
    fn rate_lands_on_rate_channel() {
        let chain = run_synthetic(0.2, 120_000);
        assert!(
            (chain.rate_out().to_f64() - 0.2).abs() < 0.02,
            "rate {}",
            chain.rate_out().to_f64()
        );
        assert!(
            chain.quad_out().to_f64().abs() < 0.02,
            "quad {}",
            chain.quad_out().to_f64()
        );
    }

    #[test]
    fn registers_reflect_status() {
        let mut chain = run_synthetic(0.1, 120_000);
        let regs = shared_dsp_regs();
        chain.sync_registers(&regs);
        let r = regs.borrow();
        assert_eq!(r.read(DspReg::Status) & 0b101, 0b101, "locked+valid");
        let freq =
            u32::from(r.read(DspReg::PllFreqLo)) | (u32::from(r.read(DspReg::PllFreqHi)) << 16);
        assert!((freq as f64 - 15_000.0).abs() < 10.0, "freq reg {freq}");
        let rate = r.read(DspReg::RateOut) as i16;
        assert!((f64::from(rate) / 32768.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn control_register_switches_mode() {
        let mut chain = ConditioningChain::new(ChainConfig::default());
        let regs = shared_dsp_regs();
        regs.borrow_mut().bus_write(DspReg::Control.addr(), 0b011);
        chain.sync_registers(&regs);
        assert_eq!(chain.mode(), SenseMode::ClosedLoop);
        assert_eq!(regs.borrow().read(DspReg::Status) & 0b1000, 0b1000);
        regs.borrow_mut().bus_write(DspReg::Control.addr(), 0b001);
        chain.sync_registers(&regs);
        assert_eq!(chain.mode(), SenseMode::OpenLoop);
    }

    #[test]
    fn disable_via_control_stops_drive() {
        let mut chain = ConditioningChain::new(ChainConfig::default());
        let regs = shared_dsp_regs();
        regs.borrow_mut().bus_write(DspReg::Control.addr(), 0b000);
        chain.sync_registers(&regs);
        let out = chain.process(Q15::from_f64(0.5), Q15::ZERO);
        assert_eq!(out, ChainDrive::default());
    }

    #[test]
    fn compensator_removes_known_offset() {
        let mut cfg = ChainConfig::default();
        cfg.compensator = Compensator::new(
            // The +cos electrical offset lands on the (negated) rate
            // channel as −0.05.
            ascp_dsp::comp::TempPolynomial::constant(-0.05),
            ascp_dsp::comp::TempPolynomial::constant(1.0),
        );
        let mut chain = ConditioningChain::new(cfg);
        let fs = 250_000.0;
        let w = 2.0 * std::f64::consts::PI * 15_000.0;
        for k in 0..120_000 {
            let th = w * k as f64 / fs;
            let primary = Q15::from_f64(0.8 * th.sin());
            let secondary = Q15::from_f64(0.05 * th.cos()); // pure offset
            chain.process(primary, secondary);
        }
        assert!(
            chain.rate_out().to_f64().abs() < 0.01,
            "offset survived: {}",
            chain.rate_out().to_f64()
        );
    }

    #[test]
    fn reset_clears_outputs() {
        let mut chain = run_synthetic(0.2, 60_000);
        chain.reset();
        assert_eq!(chain.rate_out(), Q15::ZERO);
        assert!(!chain.is_locked());
    }

    #[test]
    fn rate_dps_scaling() {
        let mut chain = ConditioningChain::new(ChainConfig::default());
        chain.rate_out = Q15::from_f64(0.2);
        assert!((chain.rate_dps() - 100.0).abs() < 0.1);
    }
}
