//! Cross-sensor datasheet report — the paper's Table 1 across families.
//!
//! The paper characterizes one sensor (the gyro) in a datasheet-style
//! table. With the generic [`crate::frontend::SensorChannel`] the same
//! campaign binary sweeps *several* sensor families; this module renders
//! the merged results as a cross-sensor Markdown/CSV report: one column
//! per device, one row per parameter (full scale, sensitivity, linearity,
//! noise density, zero offset) plus the per-device wire-fault detection
//! coverage the dbus-adc status taxonomy introduced.
//!
//! The report is plain data in, strings out: the `sensor_datasheet` bench
//! bin builds [`SensorColumn`]s from campaign outcomes and commits the
//! rendered `DATASHEET.md` as a repository artifact.

use std::fmt::Write as _;

/// Detection result for one wire-fault class on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    /// Fault-class label (`wire_not_connected`, ...).
    pub class: String,
    /// Whether the channel supervisor latched the matching status.
    pub detected: bool,
    /// Detection latency in milliseconds (negative when undetected).
    pub latency_ms: f64,
}

/// One device column of the cross-sensor report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensorColumn {
    /// Device name (column header).
    pub device: String,
    /// Engineering unit of the conditioned output.
    pub unit: String,
    /// Human-readable full-scale range (e.g. `"20..300 kPa"`).
    pub full_scale: String,
    /// Front-end sensitivity, volts per engineering unit.
    pub sensitivity_v_per_eu: Option<f64>,
    /// Conditioned transfer slope (ideal 1.0).
    pub transfer_slope: Option<f64>,
    /// Worst transfer residual, % of full scale.
    pub linearity_pct_fs: Option<f64>,
    /// In-band output noise density, engineering units per √Hz.
    pub noise_density_eu_rthz: Option<f64>,
    /// Zero/offset error, engineering units.
    pub offset_eu: Option<f64>,
    /// Wire-fault detection results, catalog order.
    pub fault_coverage: Vec<FaultCoverage>,
}

/// The assembled cross-sensor report.
#[derive(Debug, Clone, Default)]
pub struct CrossSensorReport {
    /// Device columns, in sweep order.
    pub columns: Vec<SensorColumn>,
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => fmt_sig(x),
        None => "—".to_owned(),
    }
}

/// Four significant digits, plain notation where reasonable.
fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        return "0".to_owned();
    }
    let mag = x.abs();
    if (1.0e-3..1.0e5).contains(&mag) {
        let decimals = (3 - mag.log10().floor() as i32).clamp(0, 6) as usize;
        format!("{x:.decimals$}")
    } else {
        format!("{x:.3e}")
    }
}

impl CrossSensorReport {
    /// Appends a device column.
    pub fn push(&mut self, column: SensorColumn) {
        self.columns.push(column);
    }

    /// Every fault class appearing in any column, first-seen order.
    #[must_use]
    pub fn fault_classes(&self) -> Vec<String> {
        let mut classes: Vec<String> = Vec::new();
        for col in &self.columns {
            for fc in &col.fault_coverage {
                if !classes.contains(&fc.class) {
                    classes.push(fc.class.clone());
                }
            }
        }
        classes
    }

    /// Renders the Markdown report (one column per device, Table-1 style).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        md.push_str("# Cross-sensor datasheet\n\n");
        md.push_str(
            "One conditioning platform, many sensors: every column below was \
             characterized by the same campaign binary through the same AFE/DSP \
             IP portfolio (`cargo run --release -p ascp-bench --bin sensor_datasheet`).\n\n",
        );

        let mut header = String::from("| Parameter |");
        let mut rule = String::from("|---|");
        for col in &self.columns {
            let _ = write!(header, " {} |", col.device);
            rule.push_str("---|");
        }
        md.push_str(&header);
        md.push('\n');
        md.push_str(&rule);
        md.push('\n');

        let row = |md: &mut String, label: &str, cells: Vec<String>| {
            let mut line = format!("| {label} |");
            for c in cells {
                let _ = write!(line, " {c} |");
            }
            md.push_str(&line);
            md.push('\n');
        };

        row(
            &mut md,
            "Output unit",
            self.columns.iter().map(|c| c.unit.clone()).collect(),
        );
        row(
            &mut md,
            "Full scale",
            self.columns.iter().map(|c| c.full_scale.clone()).collect(),
        );
        row(
            &mut md,
            "Sensitivity (V per unit)",
            self.columns
                .iter()
                .map(|c| fmt_opt(c.sensitivity_v_per_eu))
                .collect(),
        );
        row(
            &mut md,
            "Transfer slope (ideal 1)",
            self.columns
                .iter()
                .map(|c| fmt_opt(c.transfer_slope))
                .collect(),
        );
        row(
            &mut md,
            "Linearity (% FS)",
            self.columns
                .iter()
                .map(|c| fmt_opt(c.linearity_pct_fs))
                .collect(),
        );
        row(
            &mut md,
            "Noise density (unit/√Hz)",
            self.columns
                .iter()
                .map(|c| fmt_opt(c.noise_density_eu_rthz))
                .collect(),
        );
        row(
            &mut md,
            "Zero/offset error (unit)",
            self.columns.iter().map(|c| fmt_opt(c.offset_eu)).collect(),
        );

        for class in self.fault_classes() {
            let cells = self
                .columns
                .iter()
                .map(|c| {
                    c.fault_coverage
                        .iter()
                        .find(|fc| fc.class == class)
                        .map_or_else(
                            || "n/a".to_owned(),
                            |fc| {
                                if fc.detected {
                                    format!("detected ({} ms)", fmt_sig(fc.latency_ms))
                                } else {
                                    "undetected".to_owned()
                                }
                            },
                        )
                })
                .collect();
            row(&mut md, &format!("Fault: {class}"), cells);
        }

        let cells = self
            .columns
            .iter()
            .map(|c| {
                let hit = c.fault_coverage.iter().filter(|fc| fc.detected).count();
                format!("{hit}/{}", c.fault_coverage.len())
            })
            .collect();
        row(&mut md, "Fault classes detected", cells);
        md
    }

    /// Renders the long-format CSV (`device,parameter,value`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut csv = String::from("device,parameter,value\n");
        for col in &self.columns {
            let mut num = |name: &str, v: Option<f64>| {
                if let Some(x) = v {
                    let _ = writeln!(csv, "{},{name},{x}", col.device);
                }
            };
            num("sensitivity_v_per_eu", col.sensitivity_v_per_eu);
            num("transfer_slope", col.transfer_slope);
            num("linearity_pct_fs", col.linearity_pct_fs);
            num("noise_density_eu_rthz", col.noise_density_eu_rthz);
            num("offset_eu", col.offset_eu);
            for fc in &col.fault_coverage {
                let _ = writeln!(
                    csv,
                    "{},fault_detected.{},{}",
                    col.device,
                    fc.class,
                    u8::from(fc.detected)
                );
                let _ = writeln!(
                    csv,
                    "{},fault_latency_ms.{},{}",
                    col.device, fc.class, fc.latency_ms
                );
            }
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrossSensorReport {
        let mut rep = CrossSensorReport::default();
        rep.push(SensorColumn {
            device: "map".into(),
            unit: "kPa".into(),
            full_scale: "20..300 kPa".into(),
            sensitivity_v_per_eu: Some(0.0107),
            transfer_slope: Some(1.001),
            linearity_pct_fs: Some(0.12),
            noise_density_eu_rthz: Some(0.03),
            offset_eu: Some(-0.4),
            fault_coverage: vec![
                FaultCoverage {
                    class: "wire_not_connected".into(),
                    detected: true,
                    latency_ms: 4.0,
                },
                FaultCoverage {
                    class: "wire_short_to_ground".into(),
                    detected: false,
                    latency_ms: -1.0,
                },
            ],
        });
        rep
    }

    #[test]
    fn markdown_has_columns_and_fault_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("| Parameter | map |"));
        assert!(md.contains("Fault: wire_not_connected"));
        assert!(md.contains("detected (4.000 ms)"));
        assert!(md.contains("undetected"));
        assert!(md.contains("| Fault classes detected | 1/2 |"));
    }

    #[test]
    fn csv_is_long_format() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("device,parameter,value\n"));
        assert!(csv.contains("map,fault_detected.wire_not_connected,1"));
        assert!(csv.contains("map,fault_detected.wire_short_to_ground,0"));
        assert!(csv.contains("map,sensitivity_v_per_eu,0.0107"));
    }

    #[test]
    fn missing_values_render_as_dash() {
        let mut rep = CrossSensorReport::default();
        rep.push(SensorColumn {
            device: "bare".into(),
            unit: "x".into(),
            full_scale: "0..1".into(),
            ..SensorColumn::default()
        });
        let md = rep.to_markdown();
        assert!(md.contains("| Sensitivity (V per unit) | — |"));
    }
}
