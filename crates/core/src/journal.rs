//! Crash-recoverable campaign journal: an append-only record of completed
//! [`ScenarioOutcome`]s.
//!
//! The supervision layer makes one campaign *process* robust; the journal
//! makes the campaign robust across processes. While a journaled campaign
//! runs ([`crate::campaign::CampaignRunner::run_with_journal`]), every
//! completed scenario is appended here; after a crash or `SIGKILL`,
//! [`crate::campaign::CampaignRunner::resume`] reloads the journal,
//! re-runs only the scenarios it is missing, and produces a merged report
//! **byte-identical** to an uninterrupted run at any thread count.
//!
//! # File format
//!
//! Checkpoint-style framing (see [`crate::checkpoint`]), then records:
//!
//! ```text
//! header := magic[8 = "ASCPJRNL"] version[u32 LE] campaign_digest[u64 LE]
//! record := len[u32 LE] payload[len bytes] checksum[u64 LE = FNV-1a-64(payload)]
//! payload := one "SCNO" leaf section (StateWriter encoding) holding the
//!            outcome: index, name, seed, status, metrics, series,
//!            fault classes, transitions, attempt errors, had-capture flag
//! ```
//!
//! The campaign digest covers every scenario spec (name, config digest,
//! fault plan, duration, seed, steps, and position), so a journal can
//! never be resumed against a different campaign.
//!
//! Reading is truncation-tolerant: a final record torn by a crash (short
//! length, short payload, or checksum mismatch) is discarded along with
//! anything after it, and [`JournalWriter::append_to`] truncates the file
//! back to its last valid record before appending, so a resumed journal
//! never carries a torn record in its middle. Duplicate records for one
//! scenario index resolve last-wins.
//!
//! **NOT journaled:** flight-recorder [`CaptureBundle`]s (heavyweight,
//! reproducible by re-running the scenario; the `recorder_triggered`
//! metric *is* journaled so CSV/telemetry artifacts are unaffected), span
//! traces (wall-clock bound), warm-start hit counts, and wall time — all
//! either nondeterministic or derivable.
//!
//! [`CaptureBundle`]: ascp_sim::telemetry::CaptureBundle

use crate::campaign::{ScenarioError, ScenarioOutcome, ScenarioSpec, ScenarioStatus};
use crate::checkpoint;
use ascp_sim::fault::FaultKind;
use ascp_sim::snapshot::{fnv1a64, SnapshotError, StateReader, StateWriter};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// Journal file magic.
pub const MAGIC: [u8; 8] = *b"ASCPJRNL";

/// Format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Header length: magic + version + campaign digest.
pub const HEADER_LEN: usize = 8 + 4 + 8;

/// Per-record overhead: length prefix + checksum suffix.
const RECORD_OVERHEAD: usize = 4 + 8;

/// Why a journal could not be created, read, or appended.
#[derive(Debug)]
pub enum JournalError {
    /// The file does not start with [`MAGIC`] — not a campaign journal.
    BadMagic,
    /// The journal was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The journal belongs to a different campaign (scenario list or
    /// configs differ).
    CampaignMismatch {
        /// Digest of the campaign being resumed.
        expected: u64,
        /// Digest recorded in the journal header.
        found: u64,
    },
    /// A checksum-valid record failed to decode — a layout bug, not
    /// file corruption.
    Record(SnapshotError),
    /// The underlying file operation failed.
    Io(std::io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a campaign journal (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "journal format version {found} unsupported (this build reads {supported})"
            ),
            Self::CampaignMismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign \
                 (expected digest {expected:#018x}, found {found:#018x})"
            ),
            Self::Record(e) => write!(f, "journal record failed to decode: {e}"),
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Record(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<SnapshotError> for JournalError {
    fn from(e: SnapshotError) -> Self {
        Self::Record(e)
    }
}

/// Digest of a whole campaign's scenario list: what binds a journal to
/// the exact campaign that wrote it.
///
/// Covers each scenario's position, name, configuration (through
/// [`checkpoint::config_digest`]), extra fault plan, duration floor, seed
/// override and step list — everything that determines the scenario's
/// deterministic outcome.
#[must_use]
pub fn campaign_digest(scenarios: &[ScenarioSpec]) -> u64 {
    let mut canon = String::new();
    for (i, s) in scenarios.iter().enumerate() {
        canon.push_str(&format!(
            "{i}|{}|{:#018x}|{:?}|{}|{:?}|{:?}\n",
            s.name,
            checkpoint::config_digest(&s.config),
            s.faults.specs().collect::<Vec<_>>(),
            s.duration_s,
            s.seed,
            s.steps
        ));
    }
    fnv1a64(canon.as_bytes())
}

fn header_bytes(digest: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..].copy_from_slice(&digest.to_le_bytes());
    h
}

fn check_header(bytes: &[u8], expected_digest: u64) -> Result<(), JournalError> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(JournalError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let found = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
    if found != expected_digest {
        return Err(JournalError::CampaignMismatch {
            expected: expected_digest,
            found,
        });
    }
    Ok(())
}

/// Walks the record stream, returning the decoded outcomes (journal
/// order, duplicates included) and the byte length of the valid prefix —
/// header plus every intact record. A torn tail (short length, short
/// payload/checksum, or checksum mismatch) ends the walk silently; a
/// checksum-valid record that fails to decode is a hard error.
fn scan(bytes: &[u8], expected_digest: u64) -> Result<(Vec<ScenarioOutcome>, usize), JournalError> {
    check_header(bytes, expected_digest)?;
    let mut outcomes = Vec::new();
    let mut offset = HEADER_LEN;
    while let Some(len_bytes) = bytes.get(offset..offset + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let payload_at = offset + 4;
        let checksum_at = payload_at + len;
        let next = checksum_at + 8;
        let (Some(payload), Some(checksum_bytes)) = (
            bytes.get(payload_at..checksum_at),
            bytes.get(checksum_at..next),
        ) else {
            break; // truncated mid-record
        };
        let checksum = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
        if fnv1a64(payload) != checksum {
            break; // torn or corrupt tail
        }
        outcomes.push(decode_outcome(payload)?);
        offset = next;
    }
    Ok((outcomes, offset))
}

/// Reads every intact record of the journal at `path`, resolving
/// duplicate scenario indices last-wins.
///
/// # Errors
///
/// [`JournalError`] on I/O failure, a non-journal file, a format-version
/// or campaign-digest mismatch, or a checksum-valid record that fails to
/// decode. A torn final record is **not** an error — it is discarded.
pub fn read(
    path: impl AsRef<Path>,
    expected_digest: u64,
) -> Result<Vec<ScenarioOutcome>, JournalError> {
    let bytes = std::fs::read(path)?;
    let (outcomes, _) = scan(&bytes, expected_digest)?;
    // Last-wins dedup, preserving first-appearance order (the campaign
    // re-sorts by index anyway).
    let mut by_index: HashMap<usize, usize> = HashMap::new();
    let mut deduped: Vec<ScenarioOutcome> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match by_index.get(&outcome.index) {
            Some(&at) => deduped[at] = outcome,
            None => {
                by_index.insert(outcome.index, deduped.len());
                deduped.push(outcome);
            }
        }
    }
    Ok(deduped)
}

/// Append-only journal writer shared by the campaign's worker threads.
///
/// Each append is one contiguous `write_all` of the framed record behind
/// a mutex, so records from concurrent workers never interleave and a
/// `SIGKILL` can tear at most the final record — exactly what the reader
/// tolerates.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<File>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes its header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be created or written.
    pub fn create(path: impl AsRef<Path>, digest: u64) -> Result<Self, JournalError> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes(digest))?;
        file.flush()?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Opens the journal at `path` for appending, validating its header
    /// against `digest` and truncating a torn final record first (so the
    /// resumed journal never carries a torn record in its middle).
    ///
    /// # Errors
    ///
    /// [`JournalError`] on I/O failure or a header/record mismatch, as
    /// for [`read`].
    pub fn append_to(path: impl AsRef<Path>, digest: u64) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let (_, valid_len) = scan(&bytes, digest)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Appends one completed scenario outcome.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the record cannot be written.
    pub fn append(&self, outcome: &ScenarioOutcome) -> Result<(), JournalError> {
        let payload = encode_outcome(outcome);
        let mut record = Vec::with_capacity(payload.len() + RECORD_OVERHEAD);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        file.write_all(&record)?;
        file.flush()?;
        Ok(())
    }
}

fn encode_outcome(o: &ScenarioOutcome) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.leaf("SCNO", |w| {
        w.put_u64(o.index as u64);
        w.put_u8_slice(o.name.as_bytes());
        w.put_u64(o.seed);
        w.put_u8(match o.status {
            ScenarioStatus::Done => 0,
            ScenarioStatus::Poisoned => 1,
        });
        w.put_u32(o.metrics.len() as u32);
        for (name, value) in &o.metrics {
            w.put_u8_slice(name.as_bytes());
            w.put_f64(*value);
        }
        w.put_u32(o.series.len() as u32);
        for (name, values) in &o.series {
            w.put_u8_slice(name.as_bytes());
            w.put_f64_slice(values);
        }
        w.put_u32(o.fault_classes.len() as u32);
        for label in &o.fault_classes {
            w.put_u8_slice(label.as_bytes());
        }
        w.put_u32(o.transitions.len() as u32);
        for (from, to) in &o.transitions {
            w.put_u8_slice(from.as_bytes());
            w.put_u8_slice(to.as_bytes());
        }
        w.put_u32(o.attempt_errors.len() as u32);
        for error in &o.attempt_errors {
            match error {
                ScenarioError::Panicked { message } => {
                    w.put_u8(1);
                    w.put_u8_slice(message.as_bytes());
                    w.put_f64(0.0);
                }
                ScenarioError::TimedOut { deadline_s } => {
                    w.put_u8(2);
                    w.put_u8_slice(b"");
                    w.put_f64(*deadline_s);
                }
                ScenarioError::Missing => {
                    w.put_u8(3);
                    w.put_u8_slice(b"");
                    w.put_f64(0.0);
                }
            }
        }
        w.put_bool(o.capture.is_some());
    });
    w.into_bytes()
}

fn take_string(r: &mut StateReader<'_>) -> Result<String, SnapshotError> {
    String::from_utf8(r.take_u8_vec()?).map_err(|_| SnapshotError::Corrupt {
        context: "journal string is not UTF-8".into(),
    })
}

/// Re-interns a fault-class label against the static catalog so decoded
/// outcomes compare equal to freshly-run ones; unknown labels (a newer
/// catalog) leak one small allocation each.
fn intern_fault_label(label: &str) -> &'static str {
    FaultKind::ALL_LABELS
        .iter()
        .find(|&&l| l == label)
        .copied()
        .unwrap_or_else(|| Box::leak(label.to_owned().into_boxed_str()))
}

/// Re-interns a supervisor-state label (see
/// [`crate::supervisor::SupervisorState::label`]).
fn intern_state_label(label: &str) -> &'static str {
    const STATES: [&str; 5] = ["init", "normal", "degraded", "safe_state", "recovery"];
    STATES
        .iter()
        .find(|&&l| l == label)
        .copied()
        .unwrap_or_else(|| Box::leak(label.to_owned().into_boxed_str()))
}

fn decode_outcome(payload: &[u8]) -> Result<ScenarioOutcome, SnapshotError> {
    let mut r = StateReader::new(payload);
    r.leaf("SCNO", |r| {
        let index = r.take_u64()? as usize;
        let name = take_string(r)?;
        let seed = r.take_u64()?;
        let status = match r.take_u8()? {
            0 => ScenarioStatus::Done,
            1 => ScenarioStatus::Poisoned,
            code => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown scenario status {code}"),
                })
            }
        };
        let n_metrics = r.take_u32()? as usize;
        let mut metrics = Vec::with_capacity(n_metrics);
        for _ in 0..n_metrics {
            let name = take_string(r)?;
            let value = r.take_f64()?;
            metrics.push((name, value));
        }
        let n_series = r.take_u32()? as usize;
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            let name = take_string(r)?;
            let values = r.take_f64_vec()?;
            series.push((name, values));
        }
        let n_classes = r.take_u32()? as usize;
        let mut fault_classes = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            fault_classes.push(intern_fault_label(&take_string(r)?));
        }
        let n_transitions = r.take_u32()? as usize;
        let mut transitions = Vec::with_capacity(n_transitions);
        for _ in 0..n_transitions {
            let from = intern_state_label(&take_string(r)?);
            let to = intern_state_label(&take_string(r)?);
            transitions.push((from, to));
        }
        let n_errors = r.take_u32()? as usize;
        let mut attempt_errors = Vec::with_capacity(n_errors);
        for _ in 0..n_errors {
            let tag = r.take_u8()?;
            let message = take_string(r)?;
            let deadline_s = r.take_f64()?;
            attempt_errors.push(match tag {
                1 => ScenarioError::Panicked { message },
                2 => ScenarioError::TimedOut { deadline_s },
                3 => ScenarioError::Missing,
                code => {
                    return Err(SnapshotError::Corrupt {
                        context: format!("unknown scenario error tag {code}"),
                    })
                }
            });
        }
        // Captures are not journaled; the flag records that one existed.
        let _had_capture = r.take_bool()?;
        Ok(ScenarioOutcome {
            name,
            index,
            seed,
            metrics,
            series,
            fault_classes,
            transitions,
            capture: None,
            attempt_errors,
            status,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize, name: &str) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.to_owned(),
            index,
            seed: 0xFEED + index as u64,
            metrics: vec![("m".into(), 1.25), ("recorder_triggered".into(), 1.0)],
            series: vec![("zr".into(), vec![0.5, -0.5, 0.25])],
            fault_classes: vec!["pll_unlock"],
            transitions: vec![("normal", "degraded"), ("degraded", "recovery")],
            capture: None,
            attempt_errors: vec![
                ScenarioError::Panicked {
                    message: "chaos".into(),
                },
                ScenarioError::TimedOut { deadline_s: 2.5 },
            ],
            status: ScenarioStatus::Done,
        }
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        let original = outcome(3, "round_trip");
        let decoded = decode_outcome(&encode_outcome(&original)).expect("decodes");
        assert_eq!(original, decoded);
        // Interning must hand back the catalog's static strings.
        assert!(std::ptr::eq(
            decoded.fault_classes[0],
            intern_fault_label("pll_unlock")
        ));
    }

    #[test]
    fn write_then_read_preserves_order_and_content() {
        let dir = std::env::temp_dir().join("ascp_journal_basic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("w.journal");
        let writer = JournalWriter::create(&path, 42).expect("create");
        writer.append(&outcome(0, "a")).expect("append");
        writer.append(&outcome(2, "c")).expect("append");
        let read_back = read(&path, 42).expect("read");
        assert_eq!(read_back.len(), 2);
        assert_eq!(read_back[0], outcome(0, "a"));
        assert_eq!(read_back[1], outcome(2, "c"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatches_are_typed() {
        let dir = std::env::temp_dir().join("ascp_journal_hdr");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("h.journal");
        let writer = JournalWriter::create(&path, 1).expect("create");
        drop(writer);
        assert!(matches!(
            read(&path, 2),
            Err(JournalError::CampaignMismatch {
                expected: 2,
                found: 1
            })
        ));
        std::fs::write(&path, b"NOTAJRNLxxxxxxxxxxxx").expect("write");
        assert!(matches!(read(&path, 1), Err(JournalError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }
}
