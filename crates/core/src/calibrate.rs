//! Final-test calibration: temperature compensation fitting.
//!
//! The paper's chain includes "temperature/offset compensation" (§4.1).
//! Real parts get their correction coefficients at final test: the device
//! is swept through a climate chamber, null and scale factor are measured
//! at each step, polynomials are fitted and burned into ROM/EEPROM. This
//! module is that final-test station for the simulated platform.

use crate::characterize::RateSensor;
use crate::platform::Platform;
use ascp_dsp::comp::{fit_compensation, Compensator};
use ascp_sim::stats;
use ascp_sim::units::{Celsius, DegPerSec};

/// Calibration plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Chamber temperatures (°C).
    pub temperatures: Vec<f64>,
    /// Probe rate for scale-factor measurement (°/s).
    pub probe_rate: f64,
    /// Settling time at each point (s).
    pub settle: f64,
    /// Samples averaged per measurement.
    pub samples: usize,
    /// Polynomial degree for offset and gain corrections.
    pub degree: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            temperatures: vec![-40.0, -10.0, 25.0, 55.0, 85.0],
            probe_rate: 200.0,
            settle: 0.3,
            samples: 300,
            degree: 2,
        }
    }
}

impl CalibrationConfig {
    /// Reduced plan for tests.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            temperatures: vec![-40.0, 25.0, 85.0],
            settle: 0.35,
            samples: 200,
            degree: 1,
            ..Self::default()
        }
    }
}

/// One calibration point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalPoint {
    /// Chamber temperature (°C).
    pub temperature: f64,
    /// Raw (pre-compensation) null in output Q15 units.
    pub null_q15: f64,
    /// Raw scale relative to nominal (1.0 = exactly 5 mV/°/s).
    pub gain_rel: f64,
}

/// Result of a calibration run: the fitted compensator plus the measured
/// points (for reports).
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Fitted compensator to install into the chain.
    pub compensator: Compensator,
    /// Raw measurements.
    pub points: Vec<CalPoint>,
}

/// Runs a climate-chamber calibration on the platform and returns the
/// fitted compensation. The caller installs it with
/// [`install`](fn@install) (or manually via the chain).
pub fn calibrate(platform: &mut Platform, cfg: &CalibrationConfig) -> Calibration {
    // Measure with compensation bypassed to identity.
    platform
        .chain_mut()
        .config_compensator(Compensator::identity());

    let mut points = Vec::with_capacity(cfg.temperatures.len());
    for &t in &cfg.temperatures {
        platform.set_temperature(Celsius(t));
        platform.run(cfg.settle);
        // Null.
        platform.set_rate(DegPerSec(0.0));
        let zero = stats::mean(&platform.sample_output(cfg.settle, cfg.samples));
        // Scale factor from a two-point probe.
        platform.set_rate(DegPerSec(cfg.probe_rate));
        let plus = stats::mean(&platform.sample_output(cfg.settle, cfg.samples));
        platform.set_rate(DegPerSec(-cfg.probe_rate));
        let minus = stats::mean(&platform.sample_output(cfg.settle, cfg.samples));
        platform.set_rate(DegPerSec(0.0));
        let sens_v_per_dps = (plus - minus) / (2.0 * cfg.probe_rate);
        // Convert to the chain's Q15 domain: output volts = 2.5 + q·2.5,
        // q = rate/500 nominally, so nominal sensitivity is 5 mV/°/s.
        let null_q15 = (zero - 2.5) / 2.5;
        let gain_rel = sens_v_per_dps / 0.005;
        points.push(CalPoint {
            temperature: t,
            null_q15,
            gain_rel,
        });
    }

    // Fit: offset polynomial in Q15 units; gain polynomial is the
    // *correction* (1/measured relative gain).
    let meas: Vec<(f64, f64, f64)> = points
        .iter()
        .map(|p| {
            let sign = p.gain_rel.signum();
            (
                p.temperature,
                p.null_q15,
                // Correction multiplier: nominal/measured, clamped into
                // the Q30 coefficient range.
                (1.0 / (p.gain_rel * sign).max(0.51)) * sign,
            )
        })
        .collect();
    let (offset, gain) = fit_compensation(&meas, cfg.degree, 25.0, 100.0);
    Calibration {
        compensator: Compensator::new(offset, gain),
        points,
    }
}

/// Installs a calibration into the platform and re-syncs the current
/// temperature.
pub fn install(platform: &mut Platform, cal: &Calibration) {
    platform
        .chain_mut()
        .config_compensator(cal.compensator.clone());
    let t = platform.temperature();
    platform.set_temperature(t);
}

/// Trims the rebalance-axis phase so a rate step lands purely on the
/// rate-nulling command (closed loop only) — the paper's "on-line trimming"
/// of a programmable parameter. Returns the trimmed angle in radians.
///
/// Criterion: at the aligned angle, a rate step produces *no response on
/// the quadrature command*. The leak is steep (∝ sin of the misalignment)
/// where the rate response is flat, so the trim scans a ±24° window around
/// the delay-model starting angle for the minimum |leak|, then refines once
/// on a 3° grid. All probes stay inside the loop's stable region.
pub fn trim_rebalance_phase(platform: &mut Platform, probe_rate: f64, iterations: u32) -> f64 {
    fn quad_mean(platform: &mut Platform) -> f64 {
        let mut acc = 0.0;
        let n = 400usize;
        for _ in 0..n {
            platform.step();
            acc += platform.chain().quad_out().to_f64();
        }
        acc / n as f64
    }

    fn leak(platform: &mut Platform, theta: f64, probe_rate: f64) -> f64 {
        platform.chain_mut().set_rebalance_phase(theta);
        platform.set_rate(DegPerSec(0.0));
        platform.run(0.45);
        let q0 = quad_mean(platform);
        platform.set_rate(DegPerSec(probe_rate));
        platform.run(0.45);
        let q1 = quad_mean(platform);
        platform.set_rate(DegPerSec(0.0));
        (q1 - q0).abs()
    }

    let mut center = platform.chain().rebalance_phase();
    let mut half_span = 24.0f64.to_radians();
    for _ in 0..iterations.max(1) {
        let mut best = (f64::INFINITY, center);
        let steps = 8;
        for k in 0..=steps {
            let theta = center - half_span + 2.0 * half_span * k as f64 / steps as f64;
            let l = leak(platform, theta, probe_rate);
            if l < best.0 {
                best = (l, theta);
            }
        }
        center = best.1;
        half_span /= 4.0;
    }
    platform.chain_mut().set_rebalance_phase(center);
    platform.run(0.4);
    center
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;

    #[test]
    fn calibration_reduces_null_drift() {
        // Exaggerated quadrature drift so the effect dominates noise.
        let cfg = PlatformConfig::builder()
            .quiet()
            .noise_density(0.002)
            .quadrature_tc(0.4)
            .build()
            .expect("valid");
        let mut p = Platform::new(cfg);
        p.wait_for_ready(2.0).expect("ready");

        // Uncalibrated null drift across temperature.
        let mut raw_spread = Vec::new();
        for &t in &[-40.0, 25.0, 85.0] {
            p.set_temperature(Celsius(t));
            p.run(0.5);
            raw_spread.push(stats::mean(&p.sample_output(0.3, 300)));
        }
        let raw_drift = raw_spread.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - raw_spread.iter().copied().fold(f64::INFINITY, f64::min);

        p.set_temperature(Celsius(25.0));
        p.run(0.3);
        let cal = calibrate(&mut p, &CalibrationConfig::fast());
        install(&mut p, &cal);

        let mut cal_spread = Vec::new();
        for &t in &[-40.0, 25.0, 85.0] {
            p.set_temperature(Celsius(t));
            p.run(0.5);
            cal_spread.push(stats::mean(&p.sample_output(0.3, 300)));
        }
        let cal_drift = cal_spread.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - cal_spread.iter().copied().fold(f64::INFINITY, f64::min);

        assert!(
            cal_drift < raw_drift * 0.6,
            "calibration ineffective: raw {raw_drift:.4} V vs calibrated {cal_drift:.4} V"
        );
    }

    #[test]
    fn calibration_points_cover_requested_temps() {
        let cfg = PlatformConfig::builder()
            .quiet()
            .noise_density(0.002)
            .build()
            .expect("valid");
        let mut p = Platform::new(cfg);
        p.wait_for_ready(2.0).expect("ready");
        let cal = calibrate(&mut p, &CalibrationConfig::fast());
        let temps: Vec<f64> = cal.points.iter().map(|pt| pt.temperature).collect();
        assert_eq!(temps, vec![-40.0, 25.0, 85.0]);
        for pt in &cal.points {
            assert!(pt.gain_rel > 0.3 && pt.gain_rel < 3.0, "gain {:?}", pt);
        }
    }
}
