//! # ascp-core — the sensor-conditioning platform
//!
//! Reproduction of *Platform Based Design for Automotive Sensor
//! Conditioning* (Fanucci et al., DATE 2005): a generic mixed-signal
//! platform — minimal programmable analog front end, hardwired DSP chain,
//! 8051 monitoring CPU, JTAG configuration — customized here for the
//! paper's case study, a vibrating-ring yaw-rate gyroscope.
//!
//! Module map (one per design-flow stage):
//!
//! - [`system`] — float system model (the MATLAB stage; Fig. 5 source);
//! - [`chain`] — the fixed-point conditioning chain (the RTL stage);
//! - [`registers`] — platform register map (CPU bridge + JTAG views);
//! - [`platform`] — the full mixed-signal platform co-simulation
//!   (MEMS + AFE + DSP + CPU + JTAG; Fig. 6 and Table 1 source);
//! - [`supervisor`] — safety supervisor FSM (plausibility checks,
//!   graceful degradation, safe state);
//! - [`firmware`] — the monitoring/communication 8051 firmware;
//! - [`verify`] — cross-level verification (system model vs platform);
//! - [`characterize`] — datasheet measurement harness (Tables 1–3 rows);
//! - [`baseline`] — behavioural models of the commercial comparators
//!   (ADXRS300, Gyrostar);
//! - [`report`] — digital-complexity accounting (the 200 kgate claim).
//! - [`campaign`] — scenario campaigns on the parallel worker pool
//!   (declarative experiment sweeps; the bench bins are scenario lists),
//!   executed under a fault-tolerant supervision layer (panic isolation,
//!   deadline watchdog, deterministic retry, chaos injection).
//! - [`journal`] — crash-recoverable campaign journal (append-only
//!   outcome records; `CampaignRunner::resume` merges byte-identically).
//! - [`frontend`] — the generic sensor-conditioning channel: any
//!   [`ascp_mems::frontend::SensorFrontEnd`] conditioned from the same IP
//!   portfolio, with supervisor wire-fault checks, campaign measurements
//!   and checkpointing.
//! - [`datasheet`] — the cross-sensor datasheet report generator (the
//!   paper's Table 1 extended across sensor families).
pub mod baseline;
pub mod calibrate;
pub mod campaign;
pub mod chain;
pub mod characterize;
pub mod checkpoint;
pub mod coverage;
pub mod datasheet;
pub mod firmware;
pub mod frontend;
pub mod journal;
pub mod platform;
pub mod registers;
pub mod report;
pub mod supervisor;
pub mod system;
pub mod verify;

/// One-line import for the common platform workflow.
///
/// ```
/// use ascp_core::prelude::*;
///
/// let cfg = PlatformConfig::builder().quiet().build().expect("valid");
/// let mut p = Platform::new(cfg);
/// p.run(0.001);
/// ```
pub mod prelude {
    pub use crate::campaign::{
        CampaignOptions, CampaignOptionsBuilder, CampaignReport, CampaignRunner, ChaosPlan,
        Dispersion, ScenarioError, ScenarioOutcome, ScenarioSpec, ScenarioStatus, Step,
    };
    pub use crate::chain::SenseMode;
    pub use crate::datasheet::CrossSensorReport;
    pub use crate::frontend::{
        run_channel_scenarios, ChannelConfig, ChannelMeasurement, ChannelScenario, ChannelStatus,
        SensorChannel,
    };
    pub use crate::journal::JournalError;
    pub use crate::platform::{
        ConfigError, Platform, PlatformConfig, PlatformConfigBuilder, PlatformFleet,
    };
    pub use crate::supervisor::{SupervisorConfig, SupervisorState};
    pub use ascp_sim::fault::{AdcChannel, FaultKind, FaultPlan, FaultSpec};
}
